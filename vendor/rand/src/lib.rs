//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the *API subset it actually uses* — seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`seq::SliceRandom::shuffle`], and
//! [`distributions::WeightedIndex`] — backed by SplitMix64. Streams differ
//! from upstream `rand`, but every consumer in this workspace only relies
//! on determinism-per-seed, not on a particular stream.

// API-compat shim, not product code: mirror upstream signatures verbatim.
#![allow(clippy::all)]

/// Low-level source of randomness: a 64-bit generator step.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of upstream's trait).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Scramble once so consecutive seeds do not yield overlapping
            // streams.
            let mut s = state ^ 0x5DEE_CE66_D1CE_4E5B;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }
}

/// Range expressions that can be sampled to a value of type `T`. The
/// output type drives inference, as in upstream `rand` (so
/// `rng.gen_range(1..=4)` adapts to the expected integer type).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen`] can produce (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a (half-open or inclusive) integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// A value of the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice/sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing on slices (upstream's trait of the same name).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }
    }
}

/// Distributions (the subset the graph generators use).
pub mod distributions {
    use super::RngCore;
    use std::borrow::Borrow;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from [`WeightedIndex::new`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to the given `f64` weights.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler.
        ///
        /// # Errors
        ///
        /// Returns [`WeightedError`] if the weights are empty, negative,
        /// non-finite, or all zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = <f64 as super::Standard>::sample_standard(rng);
            let target: f64 = self.total * x;
            // Bucket = first index with cumulative weight strictly above the
            // target; duplicates in `cumulative` are zero-weight buckets and
            // are skipped by the strict comparison.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&target).expect("finite weights"))
            {
                Ok(hit) => {
                    let here = self.cumulative[hit];
                    self.cumulative[hit..]
                        .iter()
                        .position(|&c| c > here)
                        .map(|off| hit + off)
                        .unwrap_or(self.cumulative.len() - 1)
                }
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

/// Common imports, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::WeightedIndex;
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = WeightedIndex::new(&[1.0, 0.0, 100.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new().iter()).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

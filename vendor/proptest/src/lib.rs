//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its property tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`prelude::Just`], `any::<T>()`, [`collection::vec`], and the
//! [`proptest!`]/[`prop_assert*`](prop_assert) macros. Differences from
//! upstream: no shrinking (failures report the generated inputs but are not
//! minimized), and no persistence (`.proptest-regressions` files are
//! ignored). Generation is deterministic per test name, so failures
//! reproduce across runs.

// API-compat shim, not product code: mirror upstream signatures verbatim.
#![allow(clippy::all)]

use std::fmt;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in label.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Error type carried by failed `prop_assert*` checks.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset of upstream's struct).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; our solver-backed properties are
        // heavier per case, so the vendored default is lower.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of an associated type (upstream's core trait,
/// without shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Common imports, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    /// Namespace alias (upstream re-exports the crate as `prop`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Declares property tests (upstream's macro, without shrinking).
///
/// Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     fn my_property(x in 0usize..10, ys in collection::vec(any::<bool>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    // Generation is deterministic per test name, so the case
                    // index alone reproduces the inputs.
                    panic!("property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = (0usize..100, any::<bool>());
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let s = prop::collection::vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = prop::collection::vec(any::<bool>(), 7);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_smoke(n in 1usize..50, flip in any::<bool>(), xs in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(n >= 1 && n < 50);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(n, 0);
            prop_assert!(xs.len() < 4, "len was {}", xs.len());
        }
    }

    proptest! {
        fn flat_map_and_just(pair in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(any::<u64>(), n)))) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }
}

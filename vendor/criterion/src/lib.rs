//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of statistical
//! sampling it runs each routine `sample_size` times and prints the mean
//! and min wall-clock time — enough to eyeball regressions offline.

// API-compat shim, not product code: mirror upstream signatures verbatim.
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting a computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] sizes its batches (ignored here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Runs a closure repeatedly and records timings.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.times.push(start.elapsed());
            drop(black_box(out));
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.times.push(start.elapsed());
            drop(black_box(out));
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many samples each benchmark in this group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b, input);
        self.report(&id.label, &b.times);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b);
        self.report(&id.label, &b.times);
        self
    }

    fn report(&self, label: &str, times: &[Duration]) {
        if times.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = times.iter().min().expect("non-empty");
        println!(
            "{}/{label}: mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            self.name,
            mean,
            min,
            times.len()
        );
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default sample count for groups created afterwards.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), sample_size: self.default_sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { samples: self.default_sample_size, times: Vec::new() };
        f(&mut b);
        let group = BenchmarkGroup { name: String::new(), sample_size: self.default_sample_size };
        group.report(name, &b.times);
        self
    }
}

/// Declares a benchmark group the way upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_routines() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        group.finish();
        assert_eq!(runs, 2);
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("batched");
        group.sample_size(4);
        let mut setups = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1, 2, 3]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}

//! Agreement suite for the heuristic layer: the local-search bounds and
//! the independent backtracking-DSATUR solver must tell the same story as
//! the exact CNF/PB pipeline, on every search path.
//!
//! These are trust tests, not performance tests. The hybrid race commits
//! its incumbent into the exact solver as root-level units
//! (`ColoringSession::commit_upper_bound`), so a heuristic that ever
//! reported an unachievable bound would silently corrupt "exact" answers
//! — the cheapest defense is a suite that cross-checks four independent
//! implementations (CDCL ladder, one-shot optimization, decision search,
//! backtracking DSATUR) against each other on instances with known χ.

use proptest::prelude::*;
use sbgc_core::{
    bounds, chromatic_number_by_decision, chromatic_number_incremental_outcome,
    chromatic_number_outcome, race_heuristics, ChromaticBounds, Coloring, SearchStrategy,
    SolveOptions,
};
use sbgc_graph::gen::{gnp, mycielski, queens};
use sbgc_graph::{algo, Graph};
use sbgc_heur::{backtracking_dsatur, partialcol, rlf, tabucol, BdsaturResult};

/// The quick agreement instances: small enough for debug-mode CDCL, with
/// χ established independently.
fn quick_suite() -> Vec<(&'static str, Graph, usize)> {
    vec![
        ("K4", Graph::complete(4), 4),
        ("C5", Graph::cycle(5), 3),
        ("C6", Graph::cycle(6), 2),
        ("myciel3", mycielski(3), 4),
        ("myciel4", mycielski(4), 5),
        ("queen4_4", queens(4, 4), 5),
        ("queen5_5", queens(5, 5), 5),
        ("gnp24", gnp(24, 0.5, 3), 7),
    ]
}

#[test]
fn backtracking_dsatur_agrees_with_every_exact_path() {
    for (name, g, chi) in quick_suite() {
        // The independent exact cross-check first: no CNF, no CDCL.
        let bd = backtracking_dsatur(&g, 10_000_000);
        match bd {
            BdsaturResult::Exact { chromatic_number, ref witness } => {
                assert_eq!(chromatic_number, chi, "{name}: backtracking DSATUR");
                assert!(witness.is_proper(&g), "{name}");
                assert_eq!(witness.num_colors(), chi, "{name}");
            }
            ref other => panic!("{name}: expected exact, got {other:?}"),
        }

        // Hybrid ladder (heuristics racing, the default).
        let hybrid = chromatic_number_outcome(&g, &SolveOptions::new(20)).expect("valid input");
        assert_eq!(hybrid.exact(), Some(chi), "{name}: hybrid ladder");

        // Pure exact ladder (the paper's procedure, heuristics off).
        let exact = chromatic_number_outcome(&g, &SolveOptions::new(20).without_heuristics())
            .expect("valid input");
        assert_eq!(exact.exact(), Some(chi), "{name}: exact-only ladder");

        // Incremental entry point.
        let incremental =
            chromatic_number_incremental_outcome(&g, &SolveOptions::new(20)).expect("valid input");
        assert_eq!(incremental.exact(), Some(chi), "{name}: incremental");

        // Decision search (per-K re-encode; ignores the heuristics flag).
        let decision =
            chromatic_number_by_decision(&g, &SolveOptions::new(20), SearchStrategy::Binary);
        assert_eq!(decision.exact(), Some(chi), "{name}: decision search");
    }
}

#[test]
fn heuristic_race_replays_deterministically() {
    // Same input, same seeds, same iteration budgets: the race must
    // reproduce its bracket bit-for-bit. Mycielski graphs keep the
    // clique/χ gap open, so no cancellation ever fires and every worker
    // runs its full deterministic schedule.
    let g = mycielski(4);
    let b = bounds(&g);
    let opts = SolveOptions::new(20);
    let first = race_heuristics(&g, &opts, &b);
    for _ in 0..2 {
        let again = race_heuristics(&g, &opts, &b);
        assert_eq!(again.lower, first.lower);
        assert_eq!(again.upper, first.upper);
        assert_eq!(again.witness.num_colors(), first.witness.num_colors());
        assert_eq!(again.clique, first.clique);
        assert_eq!(again.failed_workers, 0);
        assert_eq!(again.rejected_witnesses, 0);
    }
}

#[test]
fn heuristic_incumbent_caps_the_bracket_below_dsatur_when_it_can() {
    // gnp(24, 0.5, 3) is the repo's canonical DSATUR-overshoot instance
    // (χ = 7, DSATUR 8): the race must recover at least one rung.
    let g = gnp(24, 0.5, 3);
    let b = bounds(&g);
    assert!(b.upper > 7, "test premise: DSATUR overshoots χ = 7, got {}", b.upper);
    let out = race_heuristics(&g, &SolveOptions::new(20), &b);
    assert!(out.upper <= b.upper);
    assert_eq!(out.upper, 7, "TabuCol/PartialCol reach χ on this instance");
    assert!(out.witness.is_proper(&g));
    assert_eq!(out.witness.num_colors(), 7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three constructive heuristics produce proper colorings on
    /// random graphs, and TabuCol reaches any bound DSATUR witnesses.
    #[test]
    fn heuristic_colorings_are_proper_on_random_graphs(
        (n, edges) in (2usize..24).prop_flat_map(|n| {
            let edge = (0..n, 0..n);
            (Just(n), proptest::collection::vec(edge, 0..3 * n))
        })
    ) {
        let g = Graph::from_edges(n, edges);

        let d = algo::dsatur(&g);
        prop_assert!(d.is_proper(&g));

        let order: Vec<usize> = (0..n).collect();
        let greedy = algo::greedy_coloring(&g, &order);
        prop_assert!(greedy.is_proper(&g));

        let r = rlf(&g);
        prop_assert!(r.is_proper(&g));
        prop_assert!(r.num_colors() <= g.max_degree() + 1);

        // k = DSATUR's count is always achievable; tabu search must find
        // it (and is seeded, so a failure here replays exactly).
        let k = d.num_colors();
        let t = tabucol(&g, k, 0xDEC0DE, 50_000, || false);
        let t = t.expect("an achievable k must be reached");
        prop_assert!(t.is_proper(&g));
        prop_assert!(t.num_colors() <= k);

        let p = partialcol(&g, k, 0xDEC0DE, 50_000, || false);
        let p = p.expect("an achievable k must be reached");
        prop_assert!(p.is_proper(&g));
        prop_assert!(p.num_colors() <= k);
    }

    /// The heuristic race never loosens the greedy bracket and always
    /// returns a re-validated witness, whatever the graph.
    #[test]
    fn race_bracket_stays_sound_on_random_graphs(
        (n, edges) in (2usize..16).prop_flat_map(|n| {
            let edge = (0..n, 0..n);
            (Just(n), proptest::collection::vec(edge, 0..2 * n))
        })
    ) {
        let g = Graph::from_edges(n, edges);
        let b = bounds(&g);
        let out = race_heuristics(&g, &SolveOptions::new(20), &b);
        prop_assert!(out.lower >= b.lower);
        prop_assert!(out.upper <= b.upper);
        prop_assert!(out.lower <= out.upper);
        prop_assert!(out.witness.is_proper(&g));
        prop_assert_eq!(out.witness.num_colors(), out.upper);
        prop_assert_eq!(out.rejected_witnesses, 0);
        prop_assert_eq!(out.failed_workers, 0);
    }
}

#[test]
fn race_accepts_an_artificially_loose_bracket() {
    // Regression guard for the descent loop: when the seed bracket is far
    // from tight the workers must walk it all the way down, one validated
    // offer per rung.
    let g = queens(5, 5);
    let loose = ChromaticBounds {
        lower: 1,
        upper: g.num_vertices(),
        witness: Coloring::new((0..g.num_vertices()).collect()),
    };
    assert!(loose.witness.is_proper(&g));
    let out = race_heuristics(&g, &SolveOptions::new(20), &loose);
    assert_eq!(out.upper, 5, "the descent must reach χ(queen5_5) = 5");
    assert_eq!(out.lower, 5, "clique search must find a 5-clique (a row)");
    assert!(out.witness.is_proper(&g));
}

//! The persistent incremental session, end to end.
//!
//! One `ColoringSession` answers the whole chromatic-number ladder
//! against long-lived solver state. These tests pin the properties that
//! make that refactor safe: the incremental portfolio, the sequential
//! incremental engine, and the one-shot optimization run must agree on χ
//! for every quick-suite graph; assumption cores must stay meaningful
//! across ladder steps; a persistent worker dying *between* queries must
//! degrade the session, not corrupt it; and ladder-routed results must
//! still certify.

use sbgc_core::{
    chromatic_number_certified, chromatic_number_incremental_outcome, chromatic_number_outcome,
    ColoringEncoding, ColoringSession, Graph, SessionAnswer, SolveOptions,
};
use sbgc_formula::Lit;
use sbgc_graph::gen::{gnp, mycielski, queens};
use sbgc_obs::{FaultPlan, Recorder, RunReport};
use sbgc_pb::{
    portfolio_configs, Budget, PortfolioSession, SharingConfig, SolveOutcome, SolverKind,
};

fn quick_graphs() -> Vec<(&'static str, Graph, usize)> {
    // (name, graph, χ)
    vec![
        ("queen4_4", queens(4, 4), 5),
        ("queen5_5", queens(5, 5), 5),
        ("myciel3", mycielski(3), 4),
        ("myciel4", mycielski(4), 5),
        ("C5", Graph::cycle(5), 3),
        ("C6", Graph::cycle(6), 2),
        ("K5", Graph::complete(5), 5),
        ("gnp24", gnp(24, 0.5, 3), 7),
    ]
}

#[test]
fn incremental_portfolio_sequential_and_oneshot_agree() {
    for (name, graph, chi) in quick_graphs() {
        // One-shot optimization: force the non-session path via the CPLEX
        // baseline (the only remaining consumer of that code).
        let oneshot =
            chromatic_number_outcome(&graph, &SolveOptions::new(20).with_solver(SolverKind::Cplex))
                .expect("valid inputs");
        assert_eq!(oneshot.exact(), Some(chi), "{name}: one-shot optimization");

        // Sequential incremental ladder.
        let seq = chromatic_number_incremental_outcome(&graph, &SolveOptions::new(20))
            .expect("valid inputs");
        assert_eq!(seq.exact(), Some(chi), "{name}: sequential incremental");
        assert!(seq.witness().is_proper(&graph), "{name}: sequential witness");

        // Persistent-portfolio incremental ladder.
        let par = chromatic_number_incremental_outcome(
            &graph,
            &SolveOptions::new(20).with_solver(SolverKind::Portfolio),
        )
        .expect("valid inputs");
        assert_eq!(par.exact(), Some(chi), "{name}: incremental portfolio");
        assert!(par.witness().is_proper(&graph), "{name}: portfolio witness");
    }
}

#[test]
fn assumption_cores_stay_subsets_across_ladder_steps() {
    // Drive a session below χ step by step: every NotColorable answer's
    // core must be a subset of that query's own suffix assumptions, even
    // though the engine reuses clauses learned under earlier (different)
    // assumption sets.
    let graph = gnp(24, 0.5, 3); // χ = 7, DSATUR 8 → session k = 7
    let options = SolveOptions::new(20);
    let mut session = ColoringSession::new(&graph, &options).expect("supported configuration");
    let k = session.k();
    assert_eq!(k, 7, "k = min(options.k, DSATUR bound − 1)");
    let budget = Budget::unlimited();
    // The session's own encoding is private; an identical encoding yields
    // the same variable numbering, so we can reconstruct each query's
    // suffix literals for the subset check.
    let enc = ColoringEncoding::new(&graph, k);
    let check_core = |core: &[Lit], target: usize, ceiling: usize| {
        let suffix: Vec<Lit> = (target..ceiling).map(|j| enc.y(j).negative()).collect();
        for lit in core {
            assert!(
                suffix.contains(lit),
                "core literal {lit:?} outside the target-{target} suffix"
            );
        }
    };

    // Target 7 (χ): colorable.
    match session.query(7, &budget).answer {
        SessionAnswer::Colorable(c) => assert!(c.is_proper(&graph)),
        other => panic!("target 7 must be colorable, got {other:?}"),
    }
    // Targets 6, 5: each UNSAT, each core a subset of its own query's
    // suffix — even though the engine reuses clauses learned under the
    // earlier, different assumption sets.
    for target in [6usize, 5] {
        match session.query(target, &budget).answer {
            SessionAnswer::NotColorable { core } => check_core(&core, target, k),
            other => panic!("target {target} must be uncolorable, got {other:?}"),
        }
    }
    // Committing the witnessed upper bound retires ¬y6 into a permanent
    // unit: the ceiling drops, and a repeated query's core stays a subset
    // of the *shrunken* live suffix.
    session.commit_upper_bound(7);
    assert_eq!(session.ceiling(), 6);
    match session.query(5, &budget).answer {
        SessionAnswer::NotColorable { core } => check_core(&core, 5, session.ceiling()),
        other => panic!("target 5 must stay uncolorable after the commit, got {other:?}"),
    }
}

#[test]
fn worker_panic_between_ladder_queries_degrades_not_corrupts() {
    // Chaos: encode a coloring instance, run a persistent 3-worker
    // portfolio session, and kill worker 1 at the second ladder query.
    // The survivors must finish the remaining queries with correct
    // answers, and telemetry must attribute the death to its query.
    let graph = mycielski(4); // χ = 5
    let k = 5;
    let mut enc = ColoringEncoding::new(&graph, k);
    enc.formula_mut().clear_objective();
    let recorder = Recorder::new();
    let plan = FaultPlan::new(0).with_worker_panic(1, 1); // dies at query id 1
    let mut session = PortfolioSession::with_instrumentation(
        enc.formula(),
        &portfolio_configs(3),
        &recorder,
        Some(&plan),
        Some(SharingConfig::default()),
    )
    .expect("three workers");
    let budget = Budget::unlimited();

    // Ladder: 5-colorable, 4-uncolorable, 3-uncolorable.
    let expected = [(5usize, true), (4, false), (3, false)];
    for (i, (target, sat)) in expected.into_iter().enumerate() {
        let assumptions: Vec<Lit> = (target..k).map(|j| enc.y(j).negative()).collect();
        let out = session.query(&assumptions, &budget);
        match out.outcome {
            SolveOutcome::Sat(ref m) => {
                assert!(sat, "query {i} (target {target}) must be UNSAT");
                let c = enc.decode(m).expect("decodable model");
                assert!(c.is_proper(&graph), "query {i} witness");
            }
            SolveOutcome::Unsat => assert!(!sat, "query {i} (target {target}) must be SAT"),
            SolveOutcome::Unknown => panic!("query {i}: survivors must still answer"),
        }
    }
    assert_eq!(session.alive_workers(), 2, "exactly one worker died");
    assert_eq!(session.failed_workers(), 1);

    let mut report = RunReport::default();
    report.from_recorder(&recorder);
    let dead: Vec<_> = report.workers.iter().filter(|w| w.failed.is_some()).collect();
    assert_eq!(dead.len(), 1, "one death in telemetry");
    assert_eq!(dead[0].query, Some(1), "death attributed to ladder query 1");
}

#[test]
fn ladder_telemetry_lands_in_v5_report() {
    let graph = gnp(24, 0.5, 3); // χ = 7, DSATUR 8 → two ladder steps
    let recorder = Recorder::new();
    // Heuristics off: a TabuCol incumbent at 7 would cap the ladder to a
    // single UNSAT step and leave nothing to retain.
    let opts = SolveOptions::new(20).with_recorder(recorder.clone()).without_heuristics();
    let out = chromatic_number_outcome(&graph, &opts).expect("valid inputs");
    assert_eq!(out.exact(), Some(7));

    let mut report = RunReport::default();
    report.from_recorder(&recorder);
    assert!(report.ladder.len() >= 2, "per-step telemetry for a 2-step ladder");
    assert!(
        report.ladder[1..].iter().any(|s| s.retained_clauses > 0),
        "clauses retained across ladder steps must be visible in the report"
    );
    let run_json = report.to_json(4);
    assert!(run_json.contains("\"ladder\""));
    assert!(run_json.contains("\"retained_clauses\""));
    let file = sbgc_obs::ReportFile {
        generator: "incremental_session test".into(),
        runs: vec![report],
        ..Default::default()
    };
    assert!(
        file.to_json().contains("\"schema_version\": 8"),
        "ladder telemetry (v5) must survive the v8 schema bump"
    );
}

#[test]
fn ladder_routed_results_still_certify() {
    // The ladder's UNSAT answers are assumption-relative, so the
    // certificate must come from an SBP-free re-derivation — exactly what
    // certify_result does. Route through the portfolio session and check
    // the certificate end to end.
    let graph = mycielski(3); // χ = 4
    let opts = SolveOptions::new(20).with_solver(SolverKind::Portfolio);
    let (result, cert) = chromatic_number_certified(&graph, &opts);
    assert_eq!(result.exact(), Some(4));
    let cert = cert.expect("exact result must certify");
    assert_eq!(cert.chromatic_number, 4);
    assert!(cert.is_certified(), "DRAT refutation of 3-colorability must check");
}

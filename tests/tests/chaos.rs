//! Chaos suite: deterministic fault injection across the whole pipeline.
//!
//! Every fault here is scheduled by a seeded [`FaultPlan`] — no wall-clock
//! or RNG state at trigger time — so a failing case replays identically.
//! The suite exercises the robustness contracts end to end:
//!
//! * a portfolio worker that panics mid-race must not take the race down:
//!   survivors decide, telemetry marks the corpse, no lock is poisoned;
//! * a failing proof-archive stream must degrade the certificate honestly
//!   (`Unchecked`, never a fabricated `Checked` or a spurious `Rejected`);
//! * an exhausted budget must yield a proven bracket plus the *reason*
//!   the search stopped, for every budget dimension including memory.

use sbgc_core::{
    certify_unsat_formula_streamed, chromatic_number_outcome, cnf_decision_formula,
    ChromaticResult, ColoringEncoding, ProofStatus, SolveOptions,
};
use sbgc_formula::PbFormula;
use sbgc_graph::gen::{mycielski, queens};
use sbgc_graph::Graph;
use sbgc_obs::{FaultPlan, Recorder};
use sbgc_pb::{
    optimize_portfolio_instrumented, portfolio_configs, solve_portfolio_instrumented, Budget,
    ExhaustReason, OptOutcome, SharingConfig, SolveOutcome,
};
use sbgc_proof::FileProofLogger;

fn coloring_formula(graph: &Graph, k: usize) -> PbFormula {
    ColoringEncoding::new(graph, k).formula().clone()
}

fn unsat_cnf(graph: &Graph, k: usize) -> PbFormula {
    let (num_vars, clauses) = cnf_decision_formula(graph, k);
    let mut f = PbFormula::with_vars(num_vars);
    for c in &clauses {
        f.add_clause(c.iter().copied());
    }
    f
}

#[test]
fn mid_race_panic_yields_correct_answer_from_survivors() {
    // Kill one of three workers the moment it starts; the other two must
    // still prove χ(queen5_5) = 5 and the race must report the casualty.
    let formula = coloring_formula(&queens(5, 5), 7);
    let plan = FaultPlan::new(3).with_worker_panic(1, 0);
    let rec = Recorder::new();
    let out = optimize_portfolio_instrumented(
        &formula,
        &portfolio_configs(3),
        &Budget::unlimited(),
        &rec,
        Some(&plan),
        Some(SharingConfig::default()),
    )
    .expect("non-empty portfolio");

    match out.outcome {
        OptOutcome::Optimal { value, .. } => assert_eq!(value, 5),
        ref other => panic!("survivors must still decide, got {other:?}"),
    }
    assert_eq!(out.failed_workers, 1);
    let (winner, _) = out.winner.expect("a survivor won");
    assert_ne!(winner, 1, "the dead worker cannot win");

    // Telemetry: all three workers reported, exactly one marked failed.
    let workers = rec.workers();
    assert_eq!(workers.len(), 3);
    let dead: Vec<_> = workers.iter().filter(|w| w.failed.is_some()).collect();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].index, 1);
    assert!(dead[0].failed.as_deref().unwrap().contains("injected fault"));
    assert!(!dead[0].won);
}

#[test]
fn injected_faults_replay_deterministically() {
    // The same plan against the same instance must kill the same worker
    // and leave the same answer — chaos tests that fail must replay.
    let formula = coloring_formula(&mycielski(3), 6);
    let run = || {
        let plan = FaultPlan::new(11).with_seeded_worker_panic(4, 0);
        let rec = Recorder::new();
        let out = optimize_portfolio_instrumented(
            &formula,
            &portfolio_configs(4),
            &Budget::unlimited(),
            &rec,
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        let dead: Vec<usize> =
            rec.workers().iter().filter(|w| w.failed.is_some()).map(|w| w.index).collect();
        (out.outcome.value(), out.failed_workers, dead)
    };
    let (value_a, failed_a, dead_a) = run();
    let (value_b, failed_b, dead_b) = run();
    assert_eq!(value_a, Some(4), "χ(myciel3) = 4");
    assert_eq!((value_a, failed_a, &dead_a), (value_b, failed_b, &dead_b));
    assert_eq!(dead_a.len(), 1);
}

#[test]
fn panicked_race_leaves_shared_state_usable() {
    // A recorder that lived through a worker panic must keep working: a
    // poisoned telemetry lock would hang or crash the next race.
    let formula = coloring_formula(&Graph::complete(4), 5);
    let rec = Recorder::new();
    let plan = FaultPlan::new(0).with_worker_panic(0, 0);
    let first = solve_portfolio_instrumented(
        &formula,
        &portfolio_configs(2),
        &Budget::unlimited(),
        &rec,
        Some(&plan),
        Some(SharingConfig::default()),
    )
    .expect("non-empty portfolio");
    assert!(matches!(first.outcome, SolveOutcome::Sat(_)));
    assert_eq!(first.failed_workers, 1);

    // Same recorder, no faults: the second race must behave normally.
    let second = solve_portfolio_instrumented(
        &formula,
        &portfolio_configs(2),
        &Budget::unlimited(),
        &rec,
        None,
        Some(SharingConfig::default()),
    )
    .expect("non-empty portfolio");
    assert!(matches!(second.outcome, SolveOutcome::Sat(_)));
    assert_eq!(second.failed_workers, 0);
    assert_eq!(rec.workers().len(), 4, "both races recorded telemetry");
}

#[test]
fn mid_export_panic_leaves_the_clause_pool_usable() {
    // Kill a worker a few conflicts in — after it has had the chance to
    // export learned clauses into the shared pool. The pool must not be
    // poisoned for the survivors, who keep importing and still prove
    // χ(myciel3) = 4; the dead worker's published clauses stay valid
    // (they are formula-entailed regardless of who learned them).
    let formula = coloring_formula(&mycielski(3), 6);
    let rec = Recorder::new();
    let plan = FaultPlan::new(5).with_worker_panic(2, 8);
    let out = optimize_portfolio_instrumented(
        &formula,
        &portfolio_configs(4),
        &Budget::unlimited(),
        &rec,
        Some(&plan),
        Some(SharingConfig::default()),
    )
    .expect("non-empty portfolio");
    match out.outcome {
        OptOutcome::Optimal { value, .. } => assert_eq!(value, 4, "χ(myciel3) = 4"),
        ref other => panic!("survivors must still decide, got {other:?}"),
    }
    assert_eq!(out.failed_workers, 1);
    let (winner_index, _) = out.winner.expect("a survivor won");
    assert_ne!(winner_index, 2, "the dead worker cannot win");
    // The sharing counters flowed through telemetry despite the casualty.
    // The recorder may hold *more* than the summed stats: the dead worker
    // flushed partial counts mid-solve but never reached the final sum.
    assert!(rec.counter(sbgc_obs::Counter::Exported) >= out.stats.exported);
    assert!(rec.counter(sbgc_obs::Counter::Imported) >= out.stats.imported);
}

#[test]
fn killing_the_only_worker_degrades_to_unknown() {
    let formula = coloring_formula(&queens(5, 5), 7);
    let plan = FaultPlan::new(0).with_worker_panic(0, 0);
    let out = optimize_portfolio_instrumented(
        &formula,
        &portfolio_configs(1),
        &Budget::unlimited(),
        &Recorder::disabled(),
        Some(&plan),
        Some(SharingConfig::default()),
    )
    .expect("non-empty portfolio");
    assert!(!out.outcome.is_optimal(), "no survivor can have proven optimality");
    assert!(out.winner.is_none());
    assert_eq!(out.failed_workers, 1);
}

#[test]
fn failed_proof_stream_degrades_certificate_honestly() {
    // K4 is not 3-colorable, so the refutation certifies — unless the
    // archive stream fails, in which case the status must drop to
    // Unchecked with the stream error, never stay Checked.
    let f = unsat_cnf(&Graph::complete(4), 3);
    let plan = FaultPlan::new(9).with_proof_write_failure(1);
    let logger = FileProofLogger::new(std::io::sink()).with_fault_plan(&plan);
    let (status, proof) = certify_unsat_formula_streamed(&f, &Budget::unlimited(), logger);
    match status {
        ProofStatus::Unchecked { reason } => {
            assert!(reason.contains("proof stream failed"), "{reason}");
        }
        other => panic!("a failing archive must degrade the status, got {other}"),
    }
    assert!(proof.is_some(), "the in-memory proof survives the archive failure");

    // A later write failing (not the first) degrades just the same — the
    // archive is incomplete either way.
    let plan = FaultPlan::new(9).with_proof_write_failure(5);
    let logger = FileProofLogger::new(std::io::sink()).with_fault_plan(&plan);
    let (status, _) = certify_unsat_formula_streamed(&f, &Budget::unlimited(), logger);
    assert!(matches!(status, ProofStatus::Unchecked { .. }), "{status}");
}

#[test]
fn healthy_proof_stream_still_certifies() {
    // Control for the degradation test: without injected faults the
    // streamed path must certify exactly like the in-memory path.
    let f = unsat_cnf(&Graph::complete(4), 3);
    let logger = FileProofLogger::new(std::io::sink());
    let (status, proof) = certify_unsat_formula_streamed(&f, &Budget::unlimited(), logger);
    assert!(matches!(status, ProofStatus::Checked { .. }), "{status}");
    assert!(proof.is_some());
}

#[test]
fn conflict_exhausted_search_reports_proven_bracket() {
    // Mycielski-4: clique 2, χ = 5, DSATUR overshoots, so a real search is
    // needed and a 1-conflict budget cannot finish it.
    let g = mycielski(4);
    let opts = SolveOptions::new(20).with_budget(Budget::unlimited().with_max_conflicts(1));
    let out = chromatic_number_outcome(&g, &opts).expect("valid inputs");
    match out.result {
        ChromaticResult::Bounded { lower, upper, ref witness } => {
            assert!(lower <= 5 && 5 <= upper, "bracket [{lower}, {upper}] must contain χ");
            assert!(witness.is_proper(&g), "the upper bound stays witnessed");
            assert_eq!(out.exhaust, Some(ExhaustReason::Conflicts));
        }
        ChromaticResult::Exact { chromatic_number, .. } => {
            // A 1-conflict budget conceivably still decides; then there is
            // no exhaustion to report.
            assert_eq!(chromatic_number, 5);
            assert_eq!(out.exhaust, None);
        }
    }
}

#[test]
fn memory_exhausted_search_reports_memory_reason() {
    // A one-byte arena cap trips the memory check at the first stride-64
    // budget check; queen6_6 at K = 7 needs far more than 64 conflicts.
    let g = queens(6, 6);
    let opts = SolveOptions::new(7).with_budget(Budget::unlimited().with_max_memory(1));
    let out = chromatic_number_outcome(&g, &opts).expect("valid inputs");
    match out.result {
        ChromaticResult::Bounded { lower, upper, ref witness } => {
            assert!(lower <= 7 && 7 <= upper, "bracket [{lower}, {upper}] must contain χ");
            assert!(witness.is_proper(&g));
            assert_eq!(out.exhaust, Some(ExhaustReason::Memory));
        }
        ChromaticResult::Exact { .. } => {
            panic!("a one-byte memory budget cannot complete the queen6_6 search")
        }
    }
}

#[test]
fn improper_heuristic_witness_is_rejected_at_the_trust_boundary() {
    // A fault-injected TabuCol worker emits an improper coloring (one
    // monochromatic edge). The trust boundary must reject it before it
    // can touch the shared incumbent, count the rejection, and retire the
    // worker — while the surviving workers keep the bracket sound.
    use sbgc_core::{race_heuristics_instrumented, ChromaticBounds, Coloring};

    let g = Graph::cycle(9); // χ = 3
    let loose = ChromaticBounds { lower: 1, upper: 9, witness: Coloring::new((0..9).collect()) };
    let rec = Recorder::new();
    let opts = SolveOptions::new(20).with_recorder(rec.clone());
    let plan = FaultPlan::new(21).with_improper_witness(0);
    let out = race_heuristics_instrumented(&g, &opts, &loose, Some(&plan));

    assert!(out.rejected_witnesses >= 1, "the corrupted offer must be rejected");
    assert!(out.failed_workers >= 1, "an untrustworthy worker is retired");
    assert!(out.witness.is_proper(&g), "survivors keep a validated witness");
    assert_eq!(out.witness.num_colors(), out.upper);
    assert!(out.lower <= out.upper);
    assert_eq!(out.upper, 3, "PartialCol alone still walks C9 down to χ = 3");

    // Telemetry tells the same story: the TabuCol record is marked
    // failed, and the per-run heuristics object carries both tallies.
    let workers = rec.workers();
    let tabu = workers.iter().find(|w| w.kind == "tabucol").expect("telemetry for worker 0");
    assert!(tabu.failed.is_some(), "the rejection is fatal for the offending worker");
    let h = rec.heuristics().expect("heuristics telemetry recorded");
    assert!(h.rejected_witnesses >= 1);
    assert!(h.failed_workers >= 1);

    // And the sound result is untouched by re-running without the fault.
    let healthy = race_heuristics_instrumented(&g, &opts, &loose, None);
    assert_eq!(healthy.rejected_witnesses, 0);
    assert_eq!(healthy.failed_workers, 0);
    assert_eq!(healthy.upper, 3);
}

#[test]
fn heuristic_faults_replay_deterministically() {
    // Chaos results are only diagnosable if a failing schedule replays
    // identically: same fault plan, same bracket, same tallies.
    use sbgc_core::{race_heuristics_instrumented, ChromaticBounds, Coloring};

    let g = mycielski(4); // triangle-free: the clique/χ gap never closes
    let n = g.num_vertices();
    let loose = ChromaticBounds { lower: 2, upper: n, witness: Coloring::new((0..n).collect()) };
    let opts = SolveOptions::new(20);
    // Worker 1 (PartialCol) panics on entry; worker 0 (TabuCol) has its
    // first offer corrupted into an improper coloring.
    let plan = FaultPlan::new(5).with_worker_panic(1, 0).with_improper_witness(0);
    let first = race_heuristics_instrumented(&g, &opts, &loose, Some(&plan));
    let second = race_heuristics_instrumented(&g, &opts, &loose, Some(&plan));
    assert_eq!(first.lower, second.lower);
    assert_eq!(first.upper, second.upper);
    assert_eq!(first.rejected_witnesses, second.rejected_witnesses);
    assert_eq!(first.failed_workers, second.failed_workers);
    assert_eq!(first.failed_workers, 2, "both faulted workers are retired");
    assert_eq!(first.rejected_witnesses, 1);
    assert!(first.witness.is_proper(&g), "the seed witness outlives the casualties");
}

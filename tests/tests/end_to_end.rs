//! End-to-end integration tests spanning the whole workspace: suite
//! instance → encoding → SBPs → Shatter → solver → decoded, verified
//! coloring.

use sbgc_core::{
    chromatic_number, solve_coloring, ColoringOutcome, SbpMode, SolveOptions, SolverKind,
};
use sbgc_graph::{algo, gen, suite};
use sbgc_pb::Budget;
use std::time::Duration;

/// Exact chromatic numbers of the exactly-reconstructed suite instances.
const KNOWN_CHI: [(&str, usize); 5] =
    [("myciel3", 4), ("myciel4", 5), ("queen5_5", 5), ("queen6_6", 7), ("queen7_7", 7)];

#[test]
fn exact_instances_have_paper_chromatic_numbers() {
    for (name, expected) in KNOWN_CHI {
        let inst = suite::build(name);
        let opts = SolveOptions::new(20)
            .with_sbp_mode(SbpMode::NuSc)
            .with_instance_dependent_sbps()
            .with_budget(Budget::unlimited().with_timeout(Duration::from_secs(60)));
        let result = chromatic_number(&inst.graph, &opts);
        assert_eq!(result.exact(), Some(expected), "{name}");
        assert!(result.witness().is_proper(&inst.graph), "{name}");
        assert_eq!(inst.meta.paper_chromatic, Some(expected), "{name} metadata");
    }
}

#[test]
fn full_grid_agrees_on_one_instance() {
    // Every (mode × solver × symmetry) combination must report the same
    // optimum on myciel3.
    let g = gen::mycielski(3);
    for mode in SbpMode::ALL {
        for solver in SolverKind::MAIN {
            for instance_dependent in [false, true] {
                let mut opts = SolveOptions::new(5)
                    .with_sbp_mode(mode)
                    .with_solver(solver)
                    .with_budget(Budget::unlimited().with_timeout(Duration::from_secs(30)));
                if instance_dependent {
                    opts = opts.with_instance_dependent_sbps();
                }
                let report = solve_coloring(&g, &opts);
                assert_eq!(
                    report.outcome.colors(),
                    Some(4),
                    "{mode} {solver} id={instance_dependent}"
                );
                assert!(
                    report.outcome.coloring().expect("coloring").is_proper(&g),
                    "{mode} {solver} id={instance_dependent}"
                );
            }
        }
    }
}

#[test]
fn unsat_at_k_below_clique() {
    // queen5_5 contains K5 (a row); at K = 4 every solver proves UNSAT.
    let g = gen::queens(5, 5);
    for solver in SolverKind::MAIN {
        let report = solve_coloring(&g, &SolveOptions::new(4).with_solver(solver));
        assert!(
            matches!(report.outcome, ColoringOutcome::InfeasibleAtK),
            "{solver}: {:?}",
            report.outcome
        );
    }
}

#[test]
fn dsatur_bound_is_respected_by_exact_solver() {
    // The exact optimum can never exceed the DSATUR bound.
    for name in ["myciel4", "queen5_5", "jean"] {
        let inst = suite::build(name);
        let ub = algo::dsatur(&inst.graph).num_colors();
        let opts = SolveOptions::new(ub)
            .with_sbp_mode(SbpMode::NuSc)
            .with_budget(Budget::unlimited().with_timeout(Duration::from_secs(30)));
        let report = solve_coloring(&inst.graph, &opts);
        if let Some(c) = report.outcome.colors() {
            assert!(c <= ub, "{name}: {c} > DSATUR {ub}");
        }
    }
}

#[test]
fn suite_roundtrips_through_dimacs() {
    for name in ["myciel4", "queen5_5", "games120"] {
        let inst = suite::build(name);
        let text = sbgc_graph::dimacs::write_col(&inst.graph, Some(name));
        let parsed = sbgc_graph::dimacs::parse_col(&text).expect("roundtrip");
        assert_eq!(parsed, inst.graph, "{name}");
    }
}

#[test]
fn formula_roundtrips_through_opb() {
    use sbgc_core::ColoringEncoding;
    let g = gen::mycielski(3);
    let enc = ColoringEncoding::new(&g, 4);
    let text = enc.formula().to_opb();
    let parsed = sbgc_formula::parse_opb(&text).expect("parse");
    assert_eq!(parsed.num_vars(), enc.formula().num_vars());
    // The parsed formula must have the same optimum.
    let a = sbgc_pb::optimize(enc.formula(), SolverKind::PbsII, &Budget::unlimited());
    let b = sbgc_pb::optimize(&parsed, SolverKind::PbsII, &Budget::unlimited());
    assert_eq!(a.value(), b.value());
    assert_eq!(a.value(), Some(4));
}

#[test]
fn shatter_finds_the_color_symmetry_group() {
    // Without SBPs, the K-coloring encoding of any graph has at least the
    // S_K color permutations: |Aut| >= K!.
    use sbgc_core::ColoringEncoding;
    use sbgc_shatter::{detect_symmetries, AutomorphismOptions};
    let g = gen::mycielski(3);
    let k = 5;
    let enc = ColoringEncoding::new(&g, k);
    let (perms, report) = detect_symmetries(enc.formula(), &AutomorphismOptions::default());
    let k_factorial: u128 = (1..=k as u128).product();
    assert!(
        report.order.expect("small group") >= k_factorial,
        "order {:?} < K! = {k_factorial}",
        report.order
    );
    assert!(!perms.is_empty());
}

#[test]
fn li_kills_all_symmetries() {
    // After LI, the encoding has no symmetries at all (paper Table 2).
    use sbgc_core::{add_instance_independent_sbps, ColoringEncoding};
    use sbgc_shatter::{detect_symmetries, AutomorphismOptions};
    let g = gen::mycielski(3);
    let mut enc = ColoringEncoding::new(&g, 4);
    let _ = add_instance_independent_sbps(&mut enc, &g, SbpMode::Li);
    let (perms, report) = detect_symmetries(enc.formula(), &AutomorphismOptions::default());
    assert!(perms.is_empty(), "LI must break everything, got {perms:?}");
    assert_eq!(report.order, Some(1));
}

#[test]
fn nu_shrinks_the_symmetry_group() {
    use sbgc_core::{add_instance_independent_sbps, ColoringEncoding};
    use sbgc_shatter::{detect_symmetries, AutomorphismOptions};
    let g = gen::mycielski(3);
    let baseline = {
        let enc = ColoringEncoding::new(&g, 4);
        detect_symmetries(enc.formula(), &AutomorphismOptions::default()).1
    };
    let with_nu = {
        let mut enc = ColoringEncoding::new(&g, 4);
        let _ = add_instance_independent_sbps(&mut enc, &g, SbpMode::Nu);
        detect_symmetries(enc.formula(), &AutomorphismOptions::default()).1
    };
    assert!(
        with_nu.order_log10 < baseline.order_log10,
        "NU must shrink the group: {} vs {}",
        with_nu.order_log10,
        baseline.order_log10
    );
}

//! The paper's qualitative claims as regression tests, on instances small
//! enough to run in CI. Each test pins one trend from the evaluation
//! section (see EXPERIMENTS.md for the full-scale measurements).

use sbgc_core::{
    add_instance_independent_sbps, ColoringEncoding, PreparedColoring, SbpMode, SolveOptions,
    SolverKind,
};
use sbgc_graph::gen::{mycielski, queens};
use sbgc_pb::{Budget, PbEngine};
use sbgc_shatter::{detect_symmetries, AutomorphismOptions};

/// Conflicts needed by the PBS II analogue on a prepared instance.
fn conflicts(prepared: &PreparedColoring) -> u64 {
    let config = SolverKind::PbsII.engine_config().expect("cdcl");
    let mut engine = PbEngine::from_formula(prepared.formula(), config);
    // Optimization loop by hand so we count all conflicts.
    let mut f = prepared.formula().clone();
    let objective = f.clear_objective().expect("coloring encodings carry objectives");
    let mut engine_total = 0;
    loop {
        match engine.solve_with_budget(&Budget::unlimited()) {
            sbgc_pb::SolveOutcome::Sat(m) => {
                let value = objective.value(&m).expect("total model");
                engine_total = engine.stats().conflicts;
                if value == 0 {
                    return engine_total;
                }
                let bound = sbgc_formula::PbConstraint::at_most(
                    objective.terms().iter().map(|&(c, l)| (c as i64, l)),
                    value as i64 - 1,
                );
                engine.add_pb(bound);
            }
            sbgc_pb::SolveOutcome::Unsat => return engine.stats().conflicts.max(engine_total),
            sbgc_pb::SolveOutcome::Unknown => unreachable!("unlimited budget"),
        }
    }
}

fn prepare(graph: &sbgc_graph::Graph, k: usize, mode: SbpMode, id: bool) -> PreparedColoring {
    let mut opts = SolveOptions::new(k).with_sbp_mode(mode);
    if id {
        opts = opts.with_instance_dependent_sbps();
    }
    PreparedColoring::new(graph, &opts)
}

/// Trend 1 (Tables 3–5): instance-dependent SBPs cut search effort
/// drastically on symmetric instances.
#[test]
fn instance_dependent_sbps_cut_conflicts() {
    let g = queens(5, 5);
    let without = conflicts(&prepare(&g, 8, SbpMode::None, false));
    let with = conflicts(&prepare(&g, 8, SbpMode::None, true));
    assert!(with * 3 < without, "i.d. SBPs should cut conflicts at least 3x: {with} vs {without}");
}

/// Trend 2 (Table 3): NU alone already helps over no SBPs.
#[test]
fn nu_cuts_conflicts_over_no_sbps() {
    let g = queens(5, 5);
    let none = conflicts(&prepare(&g, 10, SbpMode::None, false));
    let nu = conflicts(&prepare(&g, 10, SbpMode::Nu, false));
    assert!(nu < none, "NU should help: {nu} vs {none}");
}

/// Trend 3 (Table 2): instance-independent SBPs shrink the symmetry group
/// in the strict order  none > SC > NU = CA > LI (identity).
#[test]
fn symmetry_group_shrinks_in_paper_order() {
    let g = mycielski(4);
    let order_of = |mode: SbpMode| {
        let mut enc = ColoringEncoding::new(&g, 6);
        let _ = add_instance_independent_sbps(&mut enc, &g, mode);
        let (_, report) = detect_symmetries(enc.formula(), &AutomorphismOptions::default());
        report.order_log10
    };
    let none = order_of(SbpMode::None);
    let sc = order_of(SbpMode::Sc);
    let nu = order_of(SbpMode::Nu);
    let ca = order_of(SbpMode::Ca);
    let li = order_of(SbpMode::Li);
    assert!(none > sc, "SC must shrink the group: {none} vs {sc}");
    assert!(sc > nu, "NU must shrink more than SC: {sc} vs {nu}");
    assert!((nu - ca).abs() < 1e-6, "NU and CA leave the same group: {nu} vs {ca}");
    assert_eq!(li, 0.0, "LI must leave only the identity");
}

/// Trend 4 (Table 2): LI is the largest construction; SC the smallest.
#[test]
fn formula_growth_order() {
    let g = mycielski(4);
    let growth = |mode: SbpMode| {
        let mut enc = ColoringEncoding::new(&g, 6);
        let stats = add_instance_independent_sbps(&mut enc, &g, mode);
        (stats.aux_vars, stats.clauses + stats.pb_constraints)
    };
    let (nu_vars, nu_size) = growth(SbpMode::Nu);
    let (ca_vars, ca_size) = growth(SbpMode::Ca);
    let (li_vars, li_size) = growth(SbpMode::Li);
    let (sc_vars, sc_size) = growth(SbpMode::Sc);
    assert_eq!(nu_vars, 0);
    assert_eq!(ca_vars, 0);
    assert_eq!(sc_vars, 0);
    assert!(li_vars > 0, "LI introduces auxiliary variables");
    assert!(sc_size <= nu_size, "SC is the lightest");
    assert_eq!(nu_size, ca_size, "NU and CA both add K-1 constraints");
    assert!(li_size > 10 * nu_size, "LI dwarfs the simple constructions");
}

/// Trend 5 (Table 3, LI row): after LI nothing is left for the
/// instance-dependent flow to find.
#[test]
fn li_makes_instance_dependent_flow_a_noop() {
    let g = mycielski(3);
    let prepared = prepare(&g, 5, SbpMode::Li, true);
    let report = prepared.shatter_report().expect("shatter ran");
    assert_eq!(report.num_generators, 0, "no symmetries may survive LI");
    assert_eq!(report.sbp.clauses, 0, "no SBPs to add");
}

/// Trend 6 (Table 2): symmetry detection gets *faster* after NU, because
/// the group to discover is smaller.
#[test]
fn detection_effort_shrinks_with_nu() {
    let g = queens(5, 5);
    let gens_of = |mode: SbpMode| {
        let mut enc = ColoringEncoding::new(&g, 8);
        let _ = add_instance_independent_sbps(&mut enc, &g, mode);
        let (perms, _) = detect_symmetries(enc.formula(), &AutomorphismOptions::default());
        perms.len()
    };
    let none = gens_of(SbpMode::None);
    let nu = gens_of(SbpMode::Nu);
    assert!(nu < none, "fewer generators to find after NU: {nu} vs {none}");
}

/// Our extension finding: LI-pfx (tight encoding, same semantics) is
/// *stronger* than the paper's LI at the enumeration level.
#[test]
fn li_prefix_admits_no_more_than_li() {
    let g = sbgc_graph::Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
    let count = |mode: SbpMode| {
        let mut enc = ColoringEncoding::new(&g, 4);
        enc.formula_mut().clear_objective();
        let _ = add_instance_independent_sbps(&mut enc, &g, mode);
        let config = SolverKind::PbsII.engine_config().expect("cdcl");
        let mut engine = PbEngine::from_formula(enc.formula(), config);
        let mut seen = std::collections::BTreeSet::new();
        while let sbgc_pb::SolveOutcome::Sat(m) = engine.solve() {
            if let Some(c) = enc.decode(&m) {
                seen.insert(c.colors().to_vec());
            }
            engine.block_model(&m);
            assert!(seen.len() <= 1000, "runaway enumeration");
        }
        seen.len()
    };
    let li = count(SbpMode::Li);
    let li_prefix = count(SbpMode::LiPrefix);
    assert_eq!(li_prefix, 3, "LI-pfx leaves one assignment per partition");
    assert!(li_prefix <= li, "tight encoding breaks at least as much: {li_prefix} vs {li}");
}

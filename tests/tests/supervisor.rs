//! Supervisor chaos suite: kill-and-resume, corrupted checkpoints, and
//! watchdog-driven restarts, end to end.
//!
//! These are the acceptance tests of the resumable-solve layer (see
//! `docs/ROBUSTNESS.md`):
//!
//! * a solve killed mid-ladder resumes from its on-disk checkpoint,
//!   skips the already-committed rungs (visible in the `ladder[]` and
//!   `resume` telemetry of the v8 report schema), and reaches the same χ;
//! * a bit-flipped checkpoint is rejected with a typed error, never a
//!   panic or a silently wrong resume;
//! * a deliberately stalled portfolio is detected by the wall-clock
//!   watchdog, cancelled, and restarted with an escalated budget — and
//!   the retried race still completes;
//! * on random G(n,p) instances, killing the solve at a scheduled ladder
//!   rung and resuming agrees exactly with the uninterrupted solve
//!   (seeded and deterministic, so failures replay).

use sbgc_core::{
    solve_supervised, solve_supervised_instrumented, CheckpointError, SolveError, SolveOptions,
    SolverKind, SupervisorConfig,
};
use sbgc_graph::gen::{gnp, mycielski, queens};
use sbgc_obs::{FaultPlan, Recorder, RunReport};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sbgc-supervisor-it-{}-{name}.ckpt", std::process::id()))
}

#[test]
fn killed_queen6_6_solve_resumes_and_skips_committed_rungs() {
    // χ(queen6_6) = 7. Without heuristics the DSATUR bracket is open, so
    // rung 0 is a SAT query that commits a tighter upper bound (and its
    // checkpoint); the injected kill then fires at the start of rung 1.
    let graph = queens(6, 6);
    let path = scratch("queen66-kill");
    let options = SolveOptions::new(9).without_heuristics();
    let config = SupervisorConfig::new().with_checkpoint_path(&path);
    let fault = FaultPlan::new(17).with_mid_rung_kill(1);
    let killed = std::panic::catch_unwind(AssertUnwindSafe(|| {
        solve_supervised_instrumented(&graph, &options, &config, Some(&fault))
    }));
    let message = match killed {
        Err(payload) => *payload.downcast::<String>().expect("panic carries its message"),
        Ok(out) => panic!("the injected kill must unwind, got {out:?}"),
    };
    assert!(message.contains("injected fault"), "{message}");
    assert!(path.exists(), "rung 0's checkpoint must already be on disk");

    // Resume from the checkpoint: same χ, and the committed rung is never
    // re-proved — every remaining ladder query targets at most the
    // restored upper bound minus one.
    let rec = Recorder::new();
    let resume_options = SolveOptions::new(9).without_heuristics().with_recorder(rec.clone());
    let resume = SupervisorConfig::new().with_resume_from(&path);
    let out = solve_supervised(&graph, &resume_options, &resume).expect("checkpoint accepted");
    assert_eq!(out.outcome.exact(), Some(7), "resumed solve reaches χ(queen6_6)");
    assert!(out.resumed);
    assert!(out.outcome.witness().is_proper(&graph));

    let telemetry = rec.resume().expect("resume telemetry recorded");
    assert!(telemetry.rungs_skipped >= 1, "the committed rung is skipped: {telemetry:?}");
    assert!(telemetry.upper <= 8, "rung 0's checkpoint tightened the DSATUR bracket");
    assert!(telemetry.witness_colors.is_some());
    let steps = rec.ladder_steps();
    assert!(!steps.is_empty(), "the resumed ladder still proves the lower bound");
    assert!(
        steps.iter().all(|s| s.target < telemetry.upper),
        "no resumed query re-asks a committed rung: {steps:?}"
    );

    // The v8 report schema carries the whole story.
    let mut report = RunReport::default();
    report.from_recorder(&rec);
    let json = report.to_json(0);
    assert!(json.contains("\"resume\""), "{json}");
    assert!(json.contains("\"rungs_skipped\""), "{json}");
    assert!(json.contains("\"supervisor\""), "{json}");
    assert!(json.contains("\"ladder\""), "{json}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bit_flipped_checkpoint_is_rejected_with_a_typed_error() {
    // The corruption is injected at write time (one flipped bit in the
    // payload), modeling storage rot between the save and the resume.
    let graph = mycielski(4); // χ = 5
    let path = scratch("bit-flip");
    let options = SolveOptions::new(8);
    let fault = FaultPlan::new(3).with_checkpoint_corruption(41);
    let config = SupervisorConfig::new().with_checkpoint_path(&path);
    let out = solve_supervised_instrumented(&graph, &options, &config, Some(&fault))
        .expect("corruption only bites at load time");
    assert_eq!(out.outcome.exact(), Some(5));

    let resume = SupervisorConfig::new().with_resume_from(&path);
    let err = solve_supervised(&graph, &options, &resume)
        .expect_err("a corrupted checkpoint must never resume");
    match err {
        SolveError::Checkpoint(CheckpointError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected a checksum rejection, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn watchdog_restarts_a_stalled_race_and_still_completes() {
    // Every portfolio worker stalls from the very first query (burning
    // wall-clock with zero conflict progress). The watchdog must trip,
    // cancel the attempt, and the reseeded, escalated retry — where the
    // fault no longer applies — must still prove χ(myciel3) = 4.
    let graph = mycielski(3);
    let rec = Recorder::new();
    let options = SolveOptions::new(6)
        .with_solver(SolverKind::Portfolio)
        .with_recorder(rec.clone())
        .without_heuristics();
    let fault = FaultPlan::new(7).with_stalled_worker(0, 0);
    let config =
        SupervisorConfig::new().with_watchdog(Duration::from_millis(250)).with_max_retries(2);
    let out = solve_supervised_instrumented(&graph, &options, &config, Some(&fault))
        .expect("a stall is recoverable, not an error");
    assert_eq!(out.outcome.exact(), Some(4), "the race still completes");
    assert!(out.watchdog_trips >= 1, "the stall must be detected: {out:?}");
    assert!(out.attempts >= 2, "the stalled attempt must be retried: {out:?}");

    let sup = rec.supervisor().expect("supervisor telemetry recorded");
    assert_eq!(sup.attempts, out.attempts);
    assert_eq!(sup.watchdog_trips, out.watchdog_trips);
    assert!(sup.final_escalation >= 2, "retries run with escalated budgets: {sup:?}");
    assert_eq!(sup.watchdog_secs, Some(0.25));
}

#[test]
fn random_gnp_kill_and_resume_agrees_with_the_uninterrupted_solve() {
    // Seeded G(n,p) property sweep: for each instance, the uninterrupted
    // supervised solve fixes the ground truth; a solve killed at a seeded
    // ladder rung and resumed from its checkpoint must reach the same χ
    // with a proper witness. Everything is derived from the seed — a
    // failing case replays identically.
    for seed in [11u64, 23, 47] {
        let graph = gnp(18, 0.45, seed);
        if graph.num_vertices() == 0 {
            continue;
        }
        let options = SolveOptions::new(12).without_heuristics();
        let truth = solve_supervised(&graph, &options, &SupervisorConfig::new())
            .expect("uninterrupted solve")
            .outcome;
        let chi = truth.exact().expect("small G(n,p) instances decide");

        let path = scratch(&format!("gnp-{seed}"));
        let config = SupervisorConfig::new().with_checkpoint_path(&path);
        let kill_rung = seed % 3; // seeded, spread over early rungs
        let fault = FaultPlan::new(seed).with_mid_rung_kill(kill_rung);
        let killed = std::panic::catch_unwind(AssertUnwindSafe(|| {
            solve_supervised_instrumented(&graph, &options, &config, Some(&fault))
        }));
        let resumed = match killed {
            // The kill fired mid-ladder: resume from the checkpoint.
            Err(_) => {
                assert!(path.exists(), "seed {seed}: checkpoint written before the kill");
                let resume = SupervisorConfig::new().with_resume_from(&path);
                solve_supervised(&graph, &options, &resume).expect("resume accepted").outcome
            }
            // The ladder finished before the scheduled rung: the result
            // must already agree, and the final checkpoint still resumes.
            Ok(done) => {
                done.expect("supervised solve");
                let resume = SupervisorConfig::new().with_resume_from(&path);
                solve_supervised(&graph, &options, &resume).expect("resume accepted").outcome
            }
        };
        assert_eq!(resumed.exact(), Some(chi), "seed {seed}: resumed χ agrees");
        let witness = resumed.witness();
        assert!(witness.is_proper(&graph), "seed {seed}: resumed witness is proper");
        assert!(witness.num_colors() <= chi, "seed {seed}: witness within χ");
        std::fs::remove_file(&path).unwrap();
    }
}

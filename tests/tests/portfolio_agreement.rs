//! Portfolio-vs-sequential agreement on the tier-1 graph families.
//!
//! The parallel portfolio must be a pure *performance* feature: for every
//! small graph of the families the unit suites rely on (queens, Mycielski,
//! cycles, complete), racing 1–4 diversified workers has to produce the
//! same satisfiability answer and the same optimal color count as the
//! sequential engine, and losing/cancelled workers must shut down without
//! panicking.

use sbgc_core::{solve_coloring, ColoringEncoding, Graph, SolveOptions};
use sbgc_graph::gen::{mycielski, queens};
use sbgc_pb::{
    optimize, optimize_portfolio, portfolio_configs, solve_decision, solve_portfolio, Budget,
    CancelToken, SolveOutcome, SolverKind,
};

fn tier1_graphs() -> Vec<(&'static str, Graph, usize)> {
    // (name, graph, χ)
    vec![
        ("queen4_4", queens(4, 4), 5),
        ("queen5_5", queens(5, 5), 5),
        ("myciel3", mycielski(3), 4),
        ("C5", Graph::cycle(5), 3),
        ("C6", Graph::cycle(6), 2),
        ("K4", Graph::complete(4), 4),
        ("K5", Graph::complete(5), 5),
    ]
}

fn coloring_formula(graph: &Graph, k: usize) -> sbgc_formula::PbFormula {
    let enc = ColoringEncoding::new(graph, k);
    enc.formula().clone()
}

#[test]
fn optimization_agrees_for_one_to_four_workers() {
    for (name, graph, chi) in tier1_graphs() {
        let formula = coloring_formula(&graph, chi + 2);
        let sequential = optimize(&formula, SolverKind::PbsII, &Budget::unlimited());
        assert_eq!(sequential.value(), Some(chi as u64), "{name}: sequential");
        for workers in 1..=4 {
            let out =
                optimize_portfolio(&formula, &portfolio_configs(workers), &Budget::unlimited())
                    .expect("non-empty portfolio with objective");
            assert!(out.outcome.is_optimal(), "{name} with {workers} workers: not optimal");
            assert_eq!(
                out.outcome.value(),
                sequential.value(),
                "{name} with {workers} workers: color count"
            );
        }
    }
}

#[test]
fn decision_agrees_for_one_to_four_workers() {
    for (name, graph, chi) in tier1_graphs() {
        // Satisfiable at K = χ, unsatisfiable at K = χ − 1.
        for (k, expect_sat) in [(chi, true), (chi - 1, false)] {
            let mut formula = coloring_formula(&graph, k);
            formula.clear_objective();
            let sequential = solve_decision(&formula, SolverKind::PbsII, &Budget::unlimited());
            assert_eq!(sequential.is_sat(), expect_sat, "{name} K={k}: sequential");
            for workers in 1..=4 {
                let out =
                    solve_portfolio(&formula, &portfolio_configs(workers), &Budget::unlimited())
                        .expect("non-empty portfolio");
                match (expect_sat, &out.outcome) {
                    (true, SolveOutcome::Sat(model)) => {
                        assert!(formula.is_satisfied_by(model), "{name} K={k} w={workers}");
                    }
                    (false, SolveOutcome::Unsat) => {}
                    (_, other) => {
                        panic!("{name} K={k} w={workers}: expected sat={expect_sat}, got {other:?}")
                    }
                }
                assert!(out.winner.is_some(), "{name} K={k} w={workers}: no winner recorded");
            }
        }
    }
}

#[test]
fn parallel_flow_matches_sequential_colors() {
    for (name, graph, chi) in tier1_graphs() {
        let sequential = solve_coloring(&graph, &SolveOptions::new(chi + 2));
        let parallel = solve_coloring(&graph, &SolveOptions::new(chi + 2).with_parallelism(4));
        assert_eq!(sequential.outcome.colors(), Some(chi), "{name}: sequential");
        assert_eq!(parallel.outcome.colors(), Some(chi), "{name}: parallel");
        assert!(parallel.outcome.is_decided(), "{name}");
    }
}

#[test]
fn cancelled_workers_terminate_cleanly() {
    // A cancelled budget must stop a worker mid-search without panicking
    // and report Unknown, on a non-trivial instance.
    let formula = coloring_formula(&queens(6, 6), 7);
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel_token(token);
    let out =
        solve_portfolio(&formula, &portfolio_configs(4), &budget).expect("non-empty portfolio");
    assert!(matches!(out.outcome, SolveOutcome::Unknown));
    assert!(out.winner.is_none());

    // And a race that is won cancels the losers without poisoning stats:
    // total conflicts must be finite and the answer definitive.
    let out = solve_portfolio(&formula, &portfolio_configs(4), &Budget::unlimited())
        .expect("non-empty portfolio");
    assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
}

#[test]
fn portfolio_respects_conflict_budgets() {
    // Every worker shares the caller's conflict cap, so a zero budget
    // cannot produce a definitive optimization answer on a hard instance.
    let formula = coloring_formula(&queens(6, 6), 7);
    let out = optimize_portfolio(
        &formula,
        &portfolio_configs(4),
        &Budget::unlimited().with_max_conflicts(0),
    )
    .expect("non-empty portfolio with objective");
    assert!(!out.outcome.is_decided());
}

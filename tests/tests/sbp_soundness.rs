//! Soundness of the post-paper SBP constructions, end to end.
//!
//! Orbitope and ValPrec (like LI-pfx) are *complete* symmetry breaks:
//! they admit exactly one color assignment per partition into independent
//! sets. That makes them the most dangerous modes to get wrong — an
//! over-constrained encoding silently inflates χ instead of failing
//! loudly. These tests pin the properties that make the new modes safe to
//! race through the ladder: χ must match the SBP-free baseline on every
//! quick-suite graph, the incremental session (sequential and portfolio)
//! must agree with the one-shot path under the new modes, and exact
//! results produced under them must still pass the SBP-free DRAT
//! certification.

use sbgc_core::{
    chromatic_number_certified, chromatic_number_incremental_outcome, ColoringSession, Graph,
    SbpMode, SessionAnswer, SolveOptions,
};
use sbgc_graph::gen::{gnp, mycielski, queens};
use sbgc_pb::{Budget, SolverKind};

fn quick_graphs() -> Vec<(&'static str, Graph, usize)> {
    // (name, graph, χ) — same suite the incremental-session tests pin.
    vec![
        ("queen4_4", queens(4, 4), 5),
        ("queen5_5", queens(5, 5), 5),
        ("myciel3", mycielski(3), 4),
        ("myciel4", mycielski(4), 5),
        ("C5", Graph::cycle(5), 3),
        ("C6", Graph::cycle(6), 2),
        ("K5", Graph::complete(5), 5),
        ("gnp24", gnp(24, 0.5, 3), 7),
    ]
}

#[test]
fn orbitope_and_value_prec_preserve_chi_on_the_quick_suite() {
    // The decisive soundness property: a complete symmetry break removes
    // only symmetric duplicates, never a whole color-class partition, so
    // χ under Orbitope/ValPrec must equal χ under no SBPs at all.
    for (name, graph, chi) in quick_graphs() {
        let baseline =
            chromatic_number_incremental_outcome(&graph, &SolveOptions::new(20)).expect("valid");
        assert_eq!(baseline.exact(), Some(chi), "{name}: baseline");
        for mode in [SbpMode::Orbitope, SbpMode::ValuePrec] {
            let out = chromatic_number_incremental_outcome(
                &graph,
                &SolveOptions::new(20).with_sbp_mode(mode),
            )
            .expect("valid");
            assert_eq!(out.exact(), Some(chi), "{name} under {}", mode.display_name());
            assert!(
                out.witness().is_proper(&graph),
                "{name} under {}: witness must stay proper",
                mode.display_name()
            );
        }
    }
}

#[test]
fn every_extended_mode_agrees_on_chi() {
    // The full ten-mode grid on a small but non-trivial pair: every
    // instance-independent construction — incomplete or complete — must
    // leave at least one representative per color-class partition.
    for (name, graph, chi) in
        [("myciel3", mycielski(3), 4usize), ("gnp16", gnp(16, 0.5, 7), 5usize)]
    {
        for mode in SbpMode::EXTENDED {
            let out = chromatic_number_incremental_outcome(
                &graph,
                &SolveOptions::new(20).with_sbp_mode(mode),
            )
            .expect("valid");
            assert_eq!(out.exact(), Some(chi), "{name} under {}", mode.display_name());
        }
    }
}

#[test]
fn incremental_ladder_under_orbitope_matches_portfolio_and_oneshot() {
    // The new modes are registered assumption-sound, so the persistent
    // session must accept them and the suffix-assumption ladder must
    // agree with both the portfolio ladder and the one-shot optimization
    // fallback (CPLEX baseline — the only remaining non-session path).
    let graph = gnp(24, 0.5, 3); // χ = 7, DSATUR 8 → a real 2-step ladder
    for mode in [SbpMode::Orbitope, SbpMode::ValuePrec] {
        let opts = SolveOptions::new(20).with_sbp_mode(mode);
        assert!(
            ColoringSession::supports(&opts),
            "{} must route through the persistent session",
            mode.display_name()
        );
        let seq = chromatic_number_incremental_outcome(&graph, &opts).expect("valid");
        let par = chromatic_number_incremental_outcome(
            &graph,
            &opts.clone().with_solver(SolverKind::Portfolio),
        )
        .expect("valid");
        let oneshot = chromatic_number_incremental_outcome(
            &graph,
            &opts.clone().with_solver(SolverKind::Cplex),
        )
        .expect("valid");
        assert_eq!(seq.exact(), Some(7), "{}: sequential ladder", mode.display_name());
        assert_eq!(par.exact(), Some(7), "{}: portfolio ladder", mode.display_name());
        assert_eq!(oneshot.exact(), Some(7), "{}: one-shot fallback", mode.display_name());
    }
}

#[test]
fn session_queries_under_orbitope_answer_the_whole_ladder() {
    // Drive a session below χ step by step under the complete orbitope
    // break: colorable at χ, uncolorable below it, with a non-empty
    // assumption core for every UNSAT answer. (The session clamps k to
    // DSATUR−1, so we need a graph whose greedy bound overshoots χ.)
    let graph = gnp(24, 0.5, 3); // χ = 7, DSATUR 8 → session k = 7
    let opts = SolveOptions::new(20).with_sbp_mode(SbpMode::Orbitope);
    let mut session = ColoringSession::new(&graph, &opts).expect("supported configuration");
    assert_eq!(session.k(), 7, "k = min(options.k, DSATUR bound − 1)");
    let budget = Budget::unlimited();
    match session.query(7, &budget).answer {
        SessionAnswer::Colorable(c) => assert!(c.is_proper(&graph)),
        other => panic!("target 7 must be colorable under Orbitope, got {other:?}"),
    }
    for target in [6usize, 5] {
        match session.query(target, &budget).answer {
            SessionAnswer::NotColorable { core } => {
                assert!(!core.is_empty(), "assumption-relative UNSAT must surface a core");
            }
            other => panic!("target {target} must be uncolorable, got {other:?}"),
        }
    }
}

#[test]
fn exact_results_under_new_modes_still_certify() {
    // Certification re-derives χ on the SBP-free CNF decision encoding,
    // so a checked certificate is an independent audit that the new
    // constructions did not change the answer.
    for mode in [SbpMode::Orbitope, SbpMode::ValuePrec] {
        let opts = SolveOptions::new(20).with_sbp_mode(mode);
        let (result, cert) = chromatic_number_certified(&mycielski(3), &opts);
        assert_eq!(result.exact(), Some(4), "{}", mode.display_name());
        let cert = cert.expect("exact result must certify");
        assert_eq!(cert.chromatic_number, 4);
        assert!(
            cert.is_certified(),
            "{}: DRAT refutation of 3-colorability must check",
            mode.display_name()
        );
    }
}

//! Cross-crate certificate tests: chromatic-number results from the full
//! solving stack must come back with DRAT proofs that the independent
//! checker in `sbgc-proof` accepts — and corrupted proofs must be refused.

use sbgc_core::{
    certify_unsat_formula, chromatic_number_certified, cnf_decision_formula, ColoringEncoding,
    OptimalityCertificate, ProofStatus, SbpMode, SolveOptions,
};
use sbgc_graph::{gen, suite, Graph};
use sbgc_pb::Budget;
use sbgc_proof::{check_drat, CheckError, DratProof, ProofStep};
use std::time::Duration;

fn certified(graph: &Graph, k: usize) -> OptimalityCertificate {
    let opts = SolveOptions::new(k)
        .with_sbp_mode(SbpMode::NuSc)
        .with_budget(Budget::unlimited().with_timeout(Duration::from_secs(120)));
    let (result, cert) = chromatic_number_certified(graph, &opts);
    assert!(result.exact().is_some(), "chi search must finish");
    cert.expect("exact result yields a certificate")
}

#[test]
fn small_graph_suite_certifies() {
    // Every clausal-encoding instance of the small suite must produce an
    // accepted UNSAT proof at chi - 1 (the acceptance criterion of this
    // feature): mycielski, small queens, and seeded random graphs.
    for (name, expected_chi) in [("myciel3", 4), ("myciel4", 5), ("queen5_5", 5)] {
        let inst = suite::build(name);
        let cert = certified(&inst.graph, 20);
        assert_eq!(cert.chromatic_number, expected_chi, "{name}");
        assert!(matches!(cert.unsat, ProofStatus::Checked { .. }), "{name}: {}", cert.unsat);
        assert!(cert.is_certified(), "{name}");
    }
    for seed in [1u64, 2, 3] {
        let g = gen::gnp(14, 0.5, seed);
        let cert = certified(&g, 14);
        assert!(cert.is_certified(), "gnp seed {seed}: {}", cert.unsat);
    }
}

#[test]
fn certificate_proof_survives_dimacs_round_trip() {
    // The proof a certificate carries must stay checkable after being
    // serialized to DRAT text and parsed back — the format the --proof
    // flag writes to disk.
    let g = gen::mycielski(3);
    let cert = certified(&g, 6);
    let proof = cert.proof.expect("checked certificate carries its proof");
    let text = proof.to_dimacs();
    let parsed = DratProof::from_dimacs(&text).expect("round-trip parse");
    let (num_vars, clauses) = cnf_decision_formula(&g, cert.chromatic_number - 1);
    check_drat(num_vars, &clauses, &parsed).expect("round-tripped proof must check");
}

#[test]
fn corrupted_certificate_proofs_are_rejected() {
    let g = gen::mycielski(3);
    let cert = certified(&g, 6);
    let proof = cert.proof.expect("checked certificate carries its proof");
    let (num_vars, clauses) = cnf_decision_formula(&g, cert.chromatic_number - 1);
    check_drat(num_vars, &clauses, &proof).expect("the genuine proof checks");

    // Truncating away the refutation tail leaves the formula unrefuted.
    let mut truncated = DratProof::new();
    for step in proof.steps().iter().take(proof.len() / 2) {
        match step {
            ProofStep::Add(lits) => truncated.push_add(lits),
            ProofStep::Delete(lits) => truncated.push_delete(lits),
        }
    }
    match check_drat(num_vars, &clauses, &truncated) {
        Err(_) => {}
        Ok(_) => panic!("half a proof must not certify"),
    }

    // An injected deletion of an absent clause is refused at its step.
    let mut injected = DratProof::new();
    injected.push_delete(&clauses[0][..1]);
    for step in proof.steps() {
        match step {
            ProofStep::Add(lits) => injected.push_add(lits),
            ProofStep::Delete(lits) => injected.push_delete(lits),
        }
    }
    assert_eq!(
        check_drat(num_vars, &clauses, &injected),
        Err(CheckError::MissingDeletion { step: 0 })
    );

    // A proof replayed against the wrong formula (one clause dropped, the
    // residual is satisfiable) must not be accepted.
    let weakened: Vec<_> = clauses[1..].to_vec();
    assert!(check_drat(num_vars, &weakened, &proof).is_err());
}

#[test]
fn ca_encoding_reports_unchecked_not_fake_pass() {
    // The CA construction adds PB cardinality constraints, so a refutation
    // of that formula cannot be DRAT-checked; the honest status is
    // Unchecked with a PB reason.
    let g = Graph::complete(4);
    let mut enc = ColoringEncoding::new(&g, 3);
    sbgc_core::add_instance_independent_sbps(&mut enc, &g, SbpMode::Ca);
    assert!(!enc.formula().is_pure_cnf(), "CA must add PB constraints");
    let (status, proof) = certify_unsat_formula(enc.formula(), &Budget::unlimited());
    match status {
        ProofStatus::Unchecked { reason } => assert!(reason.contains("PB"), "{reason}"),
        other => panic!("expected Unchecked, got {other}"),
    }
    assert!(proof.is_none());
}

#[test]
fn trivial_and_bipartite_certificates() {
    // chi = 1 certifies by definition; chi = 2 exercises the smallest
    // genuine refutation (1-coloring a graph with an edge).
    let cert = certified(&Graph::empty(4), 4);
    assert_eq!(cert.chromatic_number, 1);
    assert!(matches!(cert.unsat, ProofStatus::Trivial { .. }));
    assert!(cert.is_certified());

    let cert = certified(&Graph::cycle(8), 4);
    assert_eq!(cert.chromatic_number, 2);
    assert!(matches!(cert.unsat, ProofStatus::Checked { .. }), "{}", cert.unsat);
    assert!(cert.is_certified());
}

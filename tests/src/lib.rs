//! Cross-crate integration tests for the sbgc workspace live in `tests/`.

//! Integration coverage for the recorder: LIFO span closing under
//! panic-unwind, race-free counters under concurrent workers, and the
//! zero-event guarantee of a disabled recorder.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::Duration;

use sbgc_obs::{Counter, Phase, Recorder, SearchCounters, WorkerTelemetry};

/// Spans opened inside a panicking scope still close, in LIFO order,
/// and leave no span dangling open.
#[test]
fn spans_close_lifo_under_panic_unwind() {
    let rec = Recorder::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _outer = rec.span(Phase::Solve);
        let _inner = rec.span(Phase::Verify);
        panic!("stage failed");
    }));
    assert!(result.is_err());

    let spans = rec.spans();
    assert_eq!(spans.len(), 2, "both guards must record during unwind");
    // LIFO: the inner (deeper) span closes before its parent.
    assert_eq!(spans[0].phase, Phase::Verify);
    assert_eq!(spans[0].depth, 1);
    assert_eq!(spans[1].phase, Phase::Solve);
    assert_eq!(spans[1].depth, 0);
    assert_eq!(rec.open_spans(), 0, "unwind must not leak open spans");
}

/// Deeply nested spans each report their open-time depth and unwind
/// back to zero open spans.
#[test]
fn nested_spans_unwind_to_zero_depth() {
    let rec = Recorder::new();
    {
        let _a = rec.span(Phase::Encode);
        {
            let _b = rec.span(Phase::Sbp);
            {
                let _c = rec.span(Phase::Detect);
                assert_eq!(rec.open_spans(), 3);
            }
        }
    }
    assert_eq!(rec.open_spans(), 0);
    let depths: Vec<usize> = rec.spans().iter().map(|s| s.depth).collect();
    assert_eq!(depths, vec![2, 1, 0], "closing order is LIFO");
}

/// Counters are race-free: N threads each adding M increments always
/// total exactly N*M, and concurrent worker records are all retained.
#[test]
fn counters_race_free_under_concurrent_workers() {
    const WORKERS: usize = 8;
    const ADDS: u64 = 10_000;

    let rec = Recorder::new();
    thread::scope(|scope| {
        for index in 0..WORKERS {
            let rec = rec.clone();
            scope.spawn(move || {
                for _ in 0..ADDS {
                    rec.add(Counter::Conflicts, 1);
                    rec.add(Counter::Propagations, 3);
                }
                rec.record_worker(WorkerTelemetry {
                    index,
                    kind: "cdcl".to_string(),
                    seed: index as u64,
                    config: format!("worker-{index}"),
                    search: SearchCounters { conflicts: ADDS, ..Default::default() },
                    won: index == 0,
                    cancel_latency: (index != 0).then(|| Duration::from_millis(1)),
                    run_time: Duration::from_millis(5),
                    failed: None,
                    query: None,
                });
            });
        }
    });

    assert_eq!(rec.counter(Counter::Conflicts), WORKERS as u64 * ADDS);
    assert_eq!(rec.counter(Counter::Propagations), WORKERS as u64 * ADDS * 3);

    let workers = rec.workers();
    assert_eq!(workers.len(), WORKERS, "every worker record is retained");
    let mut indices: Vec<usize> = workers.iter().map(|w| w.index).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..WORKERS).collect::<Vec<_>>());
    assert_eq!(workers.iter().filter(|w| w.won).count(), 1);
}

/// Concurrent spans from racing workers are all recorded.
#[test]
fn concurrent_spans_all_recorded() {
    const WORKERS: usize = 4;
    const SPANS: usize = 50;

    let rec = Recorder::new();
    thread::scope(|scope| {
        for _ in 0..WORKERS {
            let rec = rec.clone();
            scope.spawn(move || {
                for _ in 0..SPANS {
                    let _s = rec.span(Phase::Solve);
                }
            });
        }
    });
    assert_eq!(rec.phase_count(Phase::Solve), WORKERS * SPANS);
    assert_eq!(rec.open_spans(), 0);
}

/// A disabled recorder adds zero events: no spans, no counters, no
/// worker records, regardless of what is thrown at it.
#[test]
fn disabled_recorder_adds_zero_events() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());

    {
        let _outer = rec.span(Phase::Encode);
        let _inner = rec.span(Phase::Solve);
        rec.add(Counter::Decisions, 1_000_000);
        rec.add(Counter::Conflicts, 42);
    }
    rec.record_worker(WorkerTelemetry {
        index: 0,
        kind: "cdcl".to_string(),
        seed: 0,
        config: "ignored".to_string(),
        search: SearchCounters::default(),
        won: true,
        cancel_latency: None,
        run_time: Duration::from_secs(1),
        failed: None,
        query: None,
    });

    assert!(rec.spans().is_empty());
    assert!(rec.workers().is_empty());
    for &c in Counter::ALL.iter() {
        assert_eq!(rec.counter(c), 0);
    }
    assert_eq!(rec.search_counters(), SearchCounters::default());
    assert_eq!(rec.open_spans(), 0);
    assert_eq!(rec.phase_time(Phase::Encode), Duration::ZERO);
}

/// The `Default` recorder is the disabled one — embedding a `Recorder`
/// field in an options struct stays opt-in.
#[test]
fn default_recorder_is_disabled() {
    assert!(!Recorder::default().is_enabled());
}

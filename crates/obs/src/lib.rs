//! Structured solver observability for the `sbgc` workspace.
//!
//! The paper's headline claims are *comparative* — which symmetry-breaking
//! construction wins, and whether the win comes from search-space pruning
//! or is eaten by clause overhead. Answering that requires attributing
//! wall-clock to the pipeline's phases (encoding, SBP generation,
//! automorphism detection, CDCL search, verification) and counting search
//! events per solver worker. This crate provides the three pieces every
//! other crate shares:
//!
//! * [`Recorder`] — a lightweight, zero-dependency event recorder:
//!   RAII [phase spans](Recorder::span) with monotonic timing, typed
//!   atomic [counters](Counter), and per-worker [telemetry
//!   records](WorkerTelemetry). A disabled recorder (the default) records
//!   nothing and costs one branch per call site, so the solver hot paths
//!   only consult it at stride boundaries (like the existing stride-64
//!   budget check).
//! * [`RunReport`] — one serializable struct aggregating everything a
//!   single end-to-end coloring run produced: graph statistics, encoding
//!   sizes per SBP construction, automorphism-detection results, phase
//!   timings, summed search counters and per-worker portfolio telemetry.
//! * [`ReportFile`] — the envelope the bench binaries write with
//!   `--report out.json`; the JSON schema is documented field-by-field in
//!   `docs/OBSERVABILITY.md`.
//!
//! The crate also hosts [`FaultPlan`], the deterministic fault-injection
//! schedule driving the chaos test suite (see `docs/ROBUSTNESS.md`) — it
//! lives here because every layer that can fail already depends on
//! `sbgc-obs` for telemetry.
//!
//! # Example
//!
//! ```
//! use sbgc_obs::{Counter, Phase, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _span = rec.span(Phase::Encode);
//!     // ... encode the instance ...
//!     rec.add(Counter::Conflicts, 3);
//! } // span closes here, recording its duration
//!
//! assert_eq!(rec.counter(Counter::Conflicts), 3);
//! assert_eq!(rec.spans().len(), 1);
//! assert!(rec.phase_time(Phase::Encode) > std::time::Duration::ZERO);
//!
//! // The disabled recorder is free and records nothing.
//! let off = Recorder::disabled();
//! let _span = off.span(Phase::Solve);
//! off.add(Counter::Conflicts, 1_000_000);
//! assert_eq!(off.counter(Counter::Conflicts), 0);
//! assert!(off.spans().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod fault;
mod json;
mod recorder;
mod report;

pub use artifact::{write_atomic, write_atomic_instrumented};
pub use fault::FaultPlan;
pub use recorder::{
    Counter, HeuristicsTelemetry, LadderStepTelemetry, Phase, Recorder, ResumeTelemetry,
    SearchCounters, SpanGuard, SpanRecord, SupervisorTelemetry, WorkerTelemetry,
};
pub use report::{
    CertificateStats, DetectionStats, EncodingSize, InstanceInfo, PhaseTiming, ReportFile,
    RunOutcome, RunReport, SbpTelemetry, SCHEMA_VERSION,
};

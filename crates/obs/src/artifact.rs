//! Crash-safe artifact persistence: write-temp-then-rename.
//!
//! Every artifact the workspace leaves on disk — bench JSON, `--report`
//! envelopes, solve checkpoints — goes through [`write_atomic`]. The bytes
//! are written to a sibling temporary file (same directory, so the final
//! `rename` never crosses a filesystem boundary), flushed, and only then
//! renamed over the destination. A process killed at any instant therefore
//! leaves either the old artifact or the new one, never a truncated hybrid
//! — the invariant the checkpoint/resume path and every JSON consumer rely
//! on.
//!
//! [`write_atomic_instrumented`] is the chaos-test variant: a
//! [`FaultPlan`] with
//! [`artifact_write_failure`](FaultPlan::artifact_write_failure) makes the
//! write fail with an I/O error *before* the temp file is created, and a
//! scheduled [`checkpoint_corruption`](FaultPlan::checkpoint_corruption)
//! bit-flips one byte of the payload on its way to disk — deterministic
//! stand-ins for a full disk and for storage rot.

use crate::fault::FaultPlan;
use std::io::Write as _;
use std::path::Path;

/// Atomically replaces `path` with `bytes`: write to a sibling temp file,
/// flush, rename.
///
/// # Errors
///
/// Any I/O error from creating, writing, flushing or renaming the temp
/// file; on error the temp file is removed and `path` is untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    write_atomic_instrumented(path, bytes, None)
}

/// [`write_atomic`] plus deterministic fault injection for chaos tests.
/// Production callers pass `None` and pay one `is_none` branch.
///
/// # Errors
///
/// As [`write_atomic`], plus an injected `ErrorKind::Other` ("injected
/// fault: artifact write failure") when the plan schedules write failures.
pub fn write_atomic_instrumented(
    path: &Path,
    bytes: &[u8],
    fault: Option<&FaultPlan>,
) -> std::io::Result<()> {
    if fault.is_some_and(FaultPlan::artifact_write_failure) {
        return Err(std::io::Error::other("injected fault: artifact write failure"));
    }
    let corrupted;
    let payload = match fault.and_then(FaultPlan::checkpoint_corruption) {
        Some(offset) if !bytes.is_empty() => {
            let mut flipped = bytes.to_vec();
            let at = (offset % flipped.len() as u64) as usize;
            flipped[at] ^= 1;
            corrupted = flipped;
            &corrupted[..]
        }
        _ => bytes,
    };
    let mut tmp = path.to_path_buf().into_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(payload)?;
        // `flush` drains userspace buffers; `sync_all` makes the bytes
        // durable before the rename publishes them.
        file.flush()?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sbgc-artifact-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn atomic_write_replaces_previous_content() {
        let path = scratch("replace");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_write_failure_leaves_old_artifact_intact() {
        let path = scratch("faulty");
        write_atomic(&path, b"durable").unwrap();
        let plan = FaultPlan::new(1).with_artifact_write_failure();
        let err = write_atomic_instrumented(&path, b"lost", Some(&plan)).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(std::fs::read(&path).unwrap(), b"durable", "old artifact must survive");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let path = scratch("corrupt");
        let plan = FaultPlan::new(2).with_checkpoint_corruption(3);
        write_atomic_instrumented(&path, b"abcdef", Some(&plan)).unwrap();
        let written = std::fs::read(&path).unwrap();
        assert_eq!(written.len(), 6);
        let diff: Vec<usize> = written
            .iter()
            .zip(b"abcdef")
            .enumerate()
            .filter(|(_, (w, o))| w != o)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff, vec![3]);
        assert_eq!(written[3] ^ 1, b'd');
        std::fs::remove_file(&path).unwrap();
    }
}

//! The unified run report: one serializable struct per end-to-end
//! coloring run, plus the [`ReportFile`] envelope the bench binaries
//! write with `--report out.json`.
//!
//! The JSON schema emitted here is documented field-by-field in
//! `docs/OBSERVABILITY.md`; bump [`SCHEMA_VERSION`] when a field is
//! added, removed, or changes meaning.

use crate::json::{self, Obj};
use crate::recorder::{
    Counter, HeuristicsTelemetry, LadderStepTelemetry, Phase, Recorder, ResumeTelemetry,
    SearchCounters, SupervisorTelemetry, WorkerTelemetry,
};

/// Version of the JSON schema emitted by [`RunReport::to_json`] and
/// [`ReportFile::to_json`]. Incremented on any incompatible change.
///
/// v2 added the optional `certificate` object (optimality-certificate
/// status, proof size, and check time). v3 added `outcome.exhaust_reason`
/// (which budget dimension stopped an undecided run) and the per-worker
/// `failed` field (panic summary for workers that died mid-race). v4 added
/// the clause-sharing counters `lbd_sum`, `exported` and `imported` plus
/// the derived `mean_lbd` to every `search` object (run-level and
/// per-worker). v5 added the `ladder` array (one entry per incremental
/// chromatic ladder step with its `retained_clauses` counter) and the
/// per-worker `query` field (ladder-query index for persistent-session
/// workers, `null` for one-shot races). v6 added the `sbp` object — the
/// symmetry-breaking construction's label and its measured aux-var /
/// clause / PB-constraint counts as one self-contained record (the
/// counts were previously only recoverable from the `encoding` object).
/// v7 added the optional `heuristics` object (the primal-bound race's
/// bracket tightening, rung skips, and trust-boundary rejections) and the
/// per-worker `kind` field (`"cdcl"` vs a heuristic name), so heuristic
/// workers share the `workers` array with the exact portfolio. v8 added
/// the optional `supervisor` object (watchdog trips, retry attempts,
/// budget escalation, checkpoints written) and the optional `resume`
/// object (restored bracket, re-validated witness, imported clauses, and
/// the ladder rungs the resume skipped) for supervised solves.
pub const SCHEMA_VERSION: u32 = 8;

/// Identity and size of the graph instance a run solved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Instance name as the benchmark tables print it (e.g. `"miles250"`).
    pub name: String,
    /// Number of vertices in the graph.
    pub vertices: usize,
    /// Number of undirected edges in the graph.
    pub edges: usize,
}

/// Size of the encoded formula, split into the base coloring encoding
/// and the symmetry-breaking predicates layered on top.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingSize {
    /// Variables in the base coloring encoding (before any SBPs).
    pub base_vars: usize,
    /// Clauses in the base coloring encoding.
    pub base_clauses: usize,
    /// Pseudo-Boolean constraints in the base coloring encoding.
    pub base_pb: usize,
    /// Auxiliary variables introduced by symmetry-breaking predicates.
    pub sbp_aux_vars: usize,
    /// Clauses added by symmetry-breaking predicates.
    pub sbp_clauses: usize,
    /// Pseudo-Boolean constraints added by symmetry-breaking predicates.
    pub sbp_pb: usize,
    /// Total variables in the final formula handed to the solver.
    pub final_vars: usize,
    /// Total clauses in the final formula.
    pub final_clauses: usize,
    /// Total pseudo-Boolean constraints in the final formula.
    pub final_pb: usize,
}

impl EncodingSize {
    fn to_json(self, indent: usize) -> String {
        let mut o = Obj::new();
        o.usize("base_vars", self.base_vars)
            .usize("base_clauses", self.base_clauses)
            .usize("base_pb", self.base_pb)
            .usize("sbp_aux_vars", self.sbp_aux_vars)
            .usize("sbp_clauses", self.sbp_clauses)
            .usize("sbp_pb", self.sbp_pb)
            .usize("final_vars", self.final_vars)
            .usize("final_clauses", self.final_clauses)
            .usize("final_pb", self.final_pb);
        o.finish(indent)
    }
}

/// The instance-independent symmetry-breaking layer of one run, as a
/// self-contained record: which construction ran and how much it added
/// to the formula (new in schema v6).
///
/// Mirrors `sbgc-core`'s `SbpSizeStats` — this crate stays
/// dependency-free, so the counts are flattened here by the harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SbpTelemetry {
    /// The construction's display label (e.g. `"Orbitope"`), matching
    /// the run's top-level `sbp_mode` field.
    pub mode: String,
    /// Auxiliary variables the construction introduced.
    pub aux_vars: usize,
    /// CNF clauses the construction appended.
    pub clauses: usize,
    /// Pseudo-Boolean constraints the construction appended.
    pub pb_constraints: usize,
}

impl SbpTelemetry {
    fn to_json(&self, indent: usize) -> String {
        let mut o = Obj::new();
        o.str("mode", &self.mode)
            .usize("aux_vars", self.aux_vars)
            .usize("clauses", self.clauses)
            .usize("pb", self.pb_constraints);
        o.finish(indent)
    }
}

/// Results of instance-dependent automorphism detection (the Shatter
/// pipeline). Absent from a report when the run used only
/// instance-independent SBPs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DetectionStats {
    /// Wall-clock seconds spent in automorphism detection.
    pub seconds: f64,
    /// Number of generators the detector returned.
    pub generators: usize,
    /// `log10` of the estimated automorphism-group order.
    pub order_log10: f64,
    /// Generators discarded as spurious (failed validation).
    pub spurious_dropped: usize,
    /// Whether detection was exact (`true`) or a heuristic cutoff hit.
    pub exact: bool,
    /// Clauses contributed by the instance-dependent SBPs.
    pub sbp_clauses: usize,
    /// Auxiliary variables contributed by the instance-dependent SBPs.
    pub sbp_aux_vars: usize,
}

impl DetectionStats {
    fn to_json(&self, indent: usize) -> String {
        let mut o = Obj::new();
        o.float("seconds", self.seconds)
            .usize("generators", self.generators)
            .float("order_log10", self.order_log10)
            .usize("spurious_dropped", self.spurious_dropped)
            .bool("exact", self.exact)
            .usize("sbp_clauses", self.sbp_clauses)
            .usize("sbp_aux_vars", self.sbp_aux_vars);
        o.finish(indent)
    }
}

/// Outcome of optimality certification for a run, when `--certify` was
/// requested. This crate stays dependency-free, so the certificate is
/// flattened to plain counters here; the structured form lives in
/// `sbgc-core::certify`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CertificateStats {
    /// One of `"checked"`, `"trivial"`, `"unchecked"`, or `"rejected"`.
    pub status: String,
    /// Reason (for trivial/unchecked) or checker error (for rejected);
    /// empty for checked proofs.
    pub detail: String,
    /// The chromatic number the certificate is about.
    pub chromatic_number: usize,
    /// Whether the witness coloring verified (proper, exactly χ colors).
    pub witness_verified: bool,
    /// Proof steps replayed by the checker (0 unless checked).
    pub proof_steps: usize,
    /// Lemma additions in the proof.
    pub proof_adds: usize,
    /// Deletions in the proof.
    pub proof_deletes: usize,
    /// Total literals across proof steps (a proof-size proxy).
    pub proof_literals: usize,
    /// Wall-clock seconds producing the refutation (0 unless checked).
    pub solve_seconds: f64,
    /// Wall-clock seconds replaying it through the checker.
    pub check_seconds: f64,
}

impl CertificateStats {
    /// `true` when the run's optimality claim is machine-verified: the
    /// witness checked out and the status is `"checked"` or `"trivial"`.
    pub fn is_verified(&self) -> bool {
        self.witness_verified && (self.status == "checked" || self.status == "trivial")
    }

    fn to_json(&self, indent: usize) -> String {
        let mut o = Obj::new();
        o.str("status", &self.status)
            .str("detail", &self.detail)
            .usize("chromatic_number", self.chromatic_number)
            .bool("witness_verified", self.witness_verified)
            .usize("proof_steps", self.proof_steps)
            .usize("proof_adds", self.proof_adds)
            .usize("proof_deletes", self.proof_deletes)
            .usize("proof_literals", self.proof_literals)
            .float("solve_seconds", self.solve_seconds)
            .float("check_seconds", self.check_seconds);
        o.finish(indent)
    }
}

/// Aggregated wall-clock for one [`Phase`]: total seconds across all
/// spans of that phase and how many spans were recorded.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTiming {
    /// Total seconds summed over every span of the phase.
    pub seconds: f64,
    /// Number of spans recorded for the phase.
    pub count: usize,
}

/// What the solve concluded, in report-friendly form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// One of `"optimal"`, `"feasible"` (budget ran out holding a
    /// suboptimal coloring), `"infeasible_at_k"`, or `"timeout"`.
    pub kind: String,
    /// Number of colors established, when the run produced one (the
    /// verified coloring size, or χ for chromatic-number runs).
    pub colors: Option<usize>,
    /// Whether the run reached a definitive answer (not a timeout).
    pub decided: bool,
    /// For undecided runs: which budget dimension ran out, as reported by
    /// the solver (`"conflicts"`, `"time"`, `"memory"` or `"cancelled"`).
    /// `None` for decided runs.
    pub exhaust_reason: Option<String>,
}

impl RunOutcome {
    fn to_json(&self, indent: usize) -> String {
        let mut o = Obj::new();
        o.str("kind", &self.kind);
        match self.colors {
            Some(c) => o.usize("colors", c),
            None => o.raw("colors", "null"),
        };
        o.bool("decided", self.decided);
        match &self.exhaust_reason {
            Some(r) => o.str("exhaust_reason", r),
            None => o.raw("exhaust_reason", "null"),
        };
        o.finish(indent)
    }
}

/// Everything one end-to-end coloring run produced, aggregated into a
/// single serializable record.
///
/// Built by the bench harness from a solved instance plus the
/// [`Recorder`] that observed it; see [`RunReport::from_recorder`] for
/// the parts that come straight off the recorder.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// The graph instance that was solved.
    pub instance: InstanceInfo,
    /// Color count `k` the decision query used (0 for pure χ searches).
    pub k: usize,
    /// Human-readable SBP construction label (e.g. `"NU+SC"`).
    pub sbp_mode: String,
    /// Human-readable solver label (e.g. `"PBS II"`).
    pub solver: String,
    /// Worker count the run was configured with (1 = sequential).
    pub jobs: usize,
    /// Formula sizes before and after SBP generation.
    pub encoding: EncodingSize,
    /// The instance-independent SBP layer as a self-contained record
    /// (label + measured sizes).
    pub sbp: SbpTelemetry,
    /// Automorphism-detection results, when instance-dependent SBPs ran.
    pub detection: Option<DetectionStats>,
    /// Per-phase wall-clock aggregates, one entry per [`Phase`] in
    /// [`Phase::ALL`] order.
    pub phases: Vec<(Phase, PhaseTiming)>,
    /// Search counters summed over every solver worker in the run.
    pub search: SearchCounters,
    /// Per-worker portfolio telemetry; empty for sequential runs.
    pub workers: Vec<WorkerTelemetry>,
    /// Per-step incremental-ladder telemetry; empty for one-shot runs.
    pub ladder: Vec<LadderStepTelemetry>,
    /// Summary of the heuristic primal-bound race, when one ran (new in
    /// schema v7). The per-worker detail lives in `workers` (entries with
    /// a non-`"cdcl"` `kind`).
    pub heuristics: Option<HeuristicsTelemetry>,
    /// Summary of the supervised solve's watchdog/retry loop, when the
    /// run went through `sbgc-core::supervisor` (new in schema v8).
    pub supervisor: Option<SupervisorTelemetry>,
    /// Summary of the resume-from-checkpoint, when the run restored one
    /// (new in schema v8).
    pub resume: Option<ResumeTelemetry>,
    /// End-to-end wall-clock seconds for the run.
    pub total_seconds: f64,
    /// What the run concluded.
    pub outcome: RunOutcome,
    /// Optimality-certificate results, when certification ran.
    pub certificate: Option<CertificateStats>,
}

impl RunReport {
    /// Copies the recorder-owned parts — phase timings, summed search
    /// counters, and per-worker telemetry — into `self`.
    ///
    /// The caller fills the remaining fields (instance identity,
    /// encoding sizes, outcome) from its own context.
    pub fn from_recorder(&mut self, rec: &Recorder) {
        self.phases = Phase::ALL
            .iter()
            .map(|&p| {
                (
                    p,
                    PhaseTiming {
                        seconds: rec.phase_time(p).as_secs_f64(),
                        count: rec.phase_count(p),
                    },
                )
            })
            .collect();
        self.search = rec.search_counters();
        self.workers = rec.workers();
        self.ladder = rec.ladder_steps();
        self.heuristics = rec.heuristics();
        self.supervisor = rec.supervisor();
        self.resume = rec.resume();
    }

    /// Renders the report as a pretty-printed JSON object indented by
    /// `indent` spaces (see `docs/OBSERVABILITY.md` for the schema).
    pub fn to_json(&self, indent: usize) -> String {
        let inner = indent + 2;
        let mut o = Obj::new();
        o.raw("instance", {
            let mut i = Obj::new();
            i.str("name", &self.instance.name)
                .usize("vertices", self.instance.vertices)
                .usize("edges", self.instance.edges);
            i.finish(inner)
        });
        o.usize("k", self.k)
            .str("sbp_mode", &self.sbp_mode)
            .str("solver", &self.solver)
            .usize("jobs", self.jobs)
            .raw("encoding", self.encoding.to_json(inner))
            .raw("sbp", self.sbp.to_json(inner));
        match &self.detection {
            Some(d) => o.raw("detection", d.to_json(inner)),
            None => o.raw("detection", "null"),
        };
        o.raw("phases", {
            let mut p = Obj::new();
            for (phase, timing) in &self.phases {
                let mut t = Obj::new();
                t.float("seconds", timing.seconds).usize("count", timing.count);
                p.raw(phase.name(), t.finish(inner + 2));
            }
            p.finish(inner)
        });
        o.raw("search", search_counters_json(&self.search, inner));
        o.raw(
            "workers",
            json::array(
                &self.workers.iter().map(|w| worker_json(w, inner + 2)).collect::<Vec<_>>(),
                inner,
            ),
        );
        o.raw(
            "ladder",
            json::array(
                &self.ladder.iter().map(|s| ladder_step_json(s, inner + 2)).collect::<Vec<_>>(),
                inner,
            ),
        );
        match &self.heuristics {
            Some(h) => o.raw("heuristics", heuristics_json(h, inner)),
            None => o.raw("heuristics", "null"),
        };
        match &self.supervisor {
            Some(s) => o.raw("supervisor", supervisor_json(s, inner)),
            None => o.raw("supervisor", "null"),
        };
        match &self.resume {
            Some(r) => o.raw("resume", resume_json(r, inner)),
            None => o.raw("resume", "null"),
        };
        o.float("total_seconds", self.total_seconds).raw("outcome", self.outcome.to_json(inner));
        match &self.certificate {
            Some(c) => o.raw("certificate", c.to_json(inner)),
            None => o.raw("certificate", "null"),
        };
        o.finish(indent)
    }
}

fn search_counters_json(s: &SearchCounters, indent: usize) -> String {
    let mut o = Obj::new();
    for &c in Counter::ALL.iter() {
        o.uint(c.name(), s.get(c));
    }
    match s.mean_learned_len() {
        Some(len) => o.float("mean_learned_len", len),
        None => o.raw("mean_learned_len", "null"),
    };
    match s.mean_lbd() {
        Some(lbd) => o.float("mean_lbd", lbd),
        None => o.raw("mean_lbd", "null"),
    };
    o.finish(indent)
}

fn heuristics_json(h: &HeuristicsTelemetry, indent: usize) -> String {
    let mut o = Obj::new();
    o.usize("dsatur_upper", h.dsatur_upper)
        .usize("greedy_clique_lower", h.greedy_clique_lower)
        .usize("upper", h.upper)
        .usize("lower", h.lower)
        .usize("rungs_skipped", h.rungs_skipped)
        .usize("workers", h.workers)
        .uint("rejected_witnesses", h.rejected_witnesses)
        .uint("failed_workers", h.failed_workers)
        .float("seconds", h.seconds);
    o.finish(indent)
}

fn supervisor_json(s: &SupervisorTelemetry, indent: usize) -> String {
    let mut o = Obj::new();
    o.uint("attempts", s.attempts).uint("watchdog_trips", s.watchdog_trips);
    match s.watchdog_secs {
        Some(secs) => o.float("watchdog_secs", secs),
        None => o.raw("watchdog_secs", "null"),
    };
    o.uint("final_escalation", s.final_escalation)
        .uint("checkpoints_written", s.checkpoints_written);
    match &s.checkpoint_path {
        Some(p) => o.str("checkpoint_path", p),
        None => o.raw("checkpoint_path", "null"),
    };
    o.finish(indent)
}

fn resume_json(r: &ResumeTelemetry, indent: usize) -> String {
    let mut o = Obj::new();
    o.str("from_path", &r.from_path).usize("lower", r.lower).usize("upper", r.upper);
    match r.witness_colors {
        Some(c) => o.usize("witness_colors", c),
        None => o.raw("witness_colors", "null"),
    };
    o.uint("clauses_offered", r.clauses_offered)
        .uint("clauses_imported", r.clauses_imported)
        .uint("rungs_skipped", r.rungs_skipped);
    o.finish(indent)
}

fn worker_json(w: &WorkerTelemetry, indent: usize) -> String {
    let mut o = Obj::new();
    o.usize("index", w.index)
        .str("kind", &w.kind)
        .uint("seed", w.seed)
        .str("config", &w.config)
        .raw("search", search_counters_json(&w.search, indent + 2))
        .bool("won", w.won);
    match w.cancel_latency {
        Some(d) => o.float("cancel_latency_seconds", d.as_secs_f64()),
        None => o.raw("cancel_latency_seconds", "null"),
    };
    o.float("run_seconds", w.run_time.as_secs_f64());
    match &w.failed {
        Some(msg) => o.str("failed", msg),
        None => o.raw("failed", "null"),
    };
    match w.query {
        Some(q) => o.uint("query", q),
        None => o.raw("query", "null"),
    };
    o.finish(indent)
}

fn ladder_step_json(s: &LadderStepTelemetry, indent: usize) -> String {
    let mut o = Obj::new();
    o.uint("step", s.step)
        .usize("target", s.target)
        .str("outcome", &s.outcome)
        .float("seconds", s.seconds)
        .uint("retained_clauses", s.retained_clauses)
        .usize("workers", s.workers);
    o.finish(indent)
}

/// The envelope a bench binary writes when invoked with
/// `--report out.json`: file-level metadata plus one [`RunReport`] per
/// instance solved.
#[derive(Clone, Debug, Default)]
pub struct ReportFile {
    /// Name of the binary that produced the file (e.g. `"table2"`).
    pub generator: String,
    /// Color count `k` the harness was configured with.
    pub k: usize,
    /// Per-run budget in seconds.
    pub timeout_s: f64,
    /// Worker count (`--jobs`) the harness was configured with.
    pub jobs: usize,
    /// One report per instance, in harness order.
    pub runs: Vec<RunReport>,
}

impl ReportFile {
    /// Renders the complete report file as pretty-printed JSON, with a
    /// trailing newline, ready to write to disk.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.uint("schema_version", u64::from(SCHEMA_VERSION))
            .str("generator", &self.generator)
            .usize("k", self.k)
            .float("timeout_s", self.timeout_s)
            .usize("jobs", self.jobs)
            .raw(
                "runs",
                json::array(&self.runs.iter().map(|r| r.to_json(4)).collect::<Vec<_>>(), 2),
            );
        let mut s = o.finish(0);
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Phase;

    #[test]
    fn run_report_round_trips_recorder_data() {
        let rec = Recorder::new();
        {
            let _s = rec.span(Phase::Encode);
            rec.add(Counter::Decisions, 7);
        }
        let mut report = RunReport::default();
        report.from_recorder(&rec);
        assert_eq!(report.phases.len(), Phase::ALL.len());
        let encode = report.phases.iter().find(|(p, _)| *p == Phase::Encode).unwrap();
        assert_eq!(encode.1.count, 1);
        assert!(encode.1.seconds > 0.0);
        assert_eq!(report.search.decisions, 7);
    }

    #[test]
    fn report_file_emits_valid_looking_json() {
        let mut report = RunReport::default();
        report.instance.name = "grid\"3x3".to_string();
        report.outcome.kind = "sat".to_string();
        report.outcome.colors = Some(2);
        let file = ReportFile {
            generator: "table2".to_string(),
            k: 2,
            timeout_s: 10.0,
            jobs: 1,
            runs: vec![report],
        };
        let json = file.to_json();
        assert!(json.contains("\"schema_version\": 8"));
        assert!(json.contains("\"heuristics\": null"));
        assert!(json.contains("\"supervisor\": null"));
        assert!(json.contains("\"resume\": null"));
        assert!(json.contains("\"exported\": 0"));
        assert!(json.contains("\"mean_lbd\": null"));
        assert!(json.contains("\"grid\\\"3x3\""));
        assert!(json.contains("\"colors\": 2"));
        assert!(json.contains("\"certificate\": null"));
        assert!(json.contains("\"exhaust_reason\": null"));
        assert!(json.contains("\"ladder\": []"));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn sbp_telemetry_serializes_as_self_contained_object() {
        let report = RunReport {
            sbp_mode: "Orbitope".to_string(),
            sbp: SbpTelemetry {
                mode: "Orbitope".to_string(),
                aux_vars: 200,
                clauses: 810,
                pb_constraints: 0,
            },
            ..Default::default()
        };
        let json = report.to_json(0);
        assert!(json.contains("\"mode\": \"Orbitope\""));
        assert!(json.contains("\"aux_vars\": 200"));
        assert!(json.contains("\"clauses\": 810"));
        assert!(json.contains("\"pb\": 0"));
    }

    #[test]
    fn ladder_steps_serialize_with_retained_clauses() {
        let mut report = RunReport::default();
        report.ladder.push(LadderStepTelemetry {
            step: 1,
            target: 6,
            outcome: "unsat".to_string(),
            seconds: 0.5,
            retained_clauses: 1234,
            workers: 4,
        });
        let json = report.to_json(0);
        assert!(json.contains("\"target\": 6"));
        assert!(json.contains("\"outcome\": \"unsat\""));
        assert!(json.contains("\"retained_clauses\": 1234"));
    }

    #[test]
    fn undecided_outcome_carries_exhaust_reason() {
        let mut report = RunReport::default();
        report.outcome.kind = "timeout".to_string();
        report.outcome.exhaust_reason = Some("memory".to_string());
        let json = report.to_json(0);
        assert!(json.contains("\"exhaust_reason\": \"memory\""));
    }

    #[test]
    fn failed_worker_serializes_its_panic_summary() {
        use crate::recorder::WorkerTelemetry;
        use std::time::Duration;
        let mut report = RunReport::default();
        report.workers.push(WorkerTelemetry {
            index: 1,
            kind: "cdcl".to_string(),
            seed: 1,
            config: "Galena (seed 1)".to_string(),
            search: SearchCounters::default(),
            won: false,
            cancel_latency: None,
            run_time: Duration::from_millis(3),
            failed: Some("injected fault".to_string()),
            query: Some(2),
        });
        let json = report.to_json(0);
        assert!(json.contains("\"failed\": \"injected fault\""));
        assert!(json.contains("\"kind\": \"cdcl\""));
        assert!(json.contains("\"query\": 2"));
    }

    #[test]
    fn heuristics_object_serializes_rung_skips_and_rejections() {
        let report = RunReport {
            heuristics: Some(HeuristicsTelemetry {
                dsatur_upper: 9,
                greedy_clique_lower: 6,
                upper: 7,
                lower: 6,
                rungs_skipped: 2,
                workers: 3,
                rejected_witnesses: 1,
                failed_workers: 1,
                seconds: 0.2,
            }),
            ..RunReport::default()
        };
        let json = report.to_json(0);
        assert!(json.contains("\"dsatur_upper\": 9"));
        assert!(json.contains("\"rungs_skipped\": 2"));
        assert!(json.contains("\"rejected_witnesses\": 1"));
        assert!(json.contains("\"failed_workers\": 1"));
    }

    #[test]
    fn supervisor_and_resume_objects_serialize() {
        let report = RunReport {
            supervisor: Some(SupervisorTelemetry {
                attempts: 3,
                watchdog_trips: 1,
                watchdog_secs: Some(2.5),
                final_escalation: 4,
                checkpoints_written: 5,
                checkpoint_path: Some("out/queen6_6.ckpt".to_string()),
            }),
            resume: Some(ResumeTelemetry {
                from_path: "out/queen6_6.ckpt".to_string(),
                lower: 6,
                upper: 8,
                witness_colors: Some(8),
                clauses_offered: 120,
                clauses_imported: 100,
                rungs_skipped: 3,
            }),
            ..RunReport::default()
        };
        let json = report.to_json(0);
        assert!(json.contains("\"attempts\": 3"));
        assert!(json.contains("\"watchdog_trips\": 1"));
        assert!(json.contains("\"watchdog_secs\": 2.5"));
        assert!(json.contains("\"final_escalation\": 4"));
        assert!(json.contains("\"checkpoints_written\": 5"));
        assert!(json.contains("\"from_path\": \"out/queen6_6.ckpt\""));
        assert!(json.contains("\"witness_colors\": 8"));
        assert!(json.contains("\"clauses_imported\": 100"));
        assert!(json.contains("\"rungs_skipped\": 3"));
        // Both objects flow off the recorder like every other section.
        let rec = Recorder::new();
        rec.record_supervisor(SupervisorTelemetry { attempts: 2, ..Default::default() });
        let mut round_trip = RunReport::default();
        round_trip.from_recorder(&rec);
        assert_eq!(round_trip.supervisor.unwrap().attempts, 2);
        assert!(round_trip.resume.is_none());
    }

    #[test]
    fn certificate_stats_serialize_and_classify() {
        let checked = CertificateStats {
            status: "checked".to_string(),
            detail: String::new(),
            chromatic_number: 4,
            witness_verified: true,
            proof_steps: 12,
            proof_adds: 10,
            proof_deletes: 2,
            proof_literals: 57,
            solve_seconds: 0.25,
            check_seconds: 0.01,
        };
        assert!(checked.is_verified());
        let report = RunReport { certificate: Some(checked), ..RunReport::default() };
        let json = report.to_json(0);
        assert!(json.contains("\"status\": \"checked\""));
        assert!(json.contains("\"proof_steps\": 12"));
        assert!(json.contains("\"witness_verified\": true"));

        let rejected = CertificateStats {
            status: "rejected".to_string(),
            witness_verified: true,
            ..CertificateStats::default()
        };
        assert!(!rejected.is_verified());
        let unchecked_witness = CertificateStats {
            status: "trivial".to_string(),
            witness_verified: false,
            ..CertificateStats::default()
        };
        assert!(!unchecked_witness.is_verified());
    }
}

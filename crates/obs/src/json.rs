//! A minimal JSON writer — just enough for the report schema, so the
//! workspace stays free of serialization dependencies.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; those are
/// clamped to `null`).
pub(crate) fn number(x: f64) -> String {
    if x.is_finite() {
        // Enough precision for microsecond-scale durations.
        let s = format!("{x:.9}");
        // Trim trailing zeros but keep at least one decimal digit so the
        // value round-trips as a float, not an integer.
        let trimmed = s.trim_end_matches('0');
        let mut t = trimmed.to_string();
        if t.ends_with('.') {
            t.push('0');
        }
        t
    } else {
        "null".to_string()
    }
}

/// An object under construction: `field` calls accumulate pre-rendered
/// values, `finish` emits `{...}` with the given indentation.
pub(crate) struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    pub(crate) fn new() -> Self {
        Obj { fields: Vec::new() }
    }

    /// Adds a field whose value is already valid JSON.
    pub(crate) fn raw(&mut self, name: &str, value: impl Into<String>) -> &mut Self {
        self.fields.push((name.to_string(), value.into()));
        self
    }

    pub(crate) fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.raw(name, format!("\"{}\"", escape(value)))
    }

    pub(crate) fn uint(&mut self, name: &str, value: u64) -> &mut Self {
        self.raw(name, value.to_string())
    }

    pub(crate) fn usize(&mut self, name: &str, value: usize) -> &mut Self {
        self.raw(name, value.to_string())
    }

    pub(crate) fn float(&mut self, name: &str, value: f64) -> &mut Self {
        self.raw(name, number(value))
    }

    pub(crate) fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.raw(name, if value { "true" } else { "false" })
    }

    /// Renders the object with `indent` spaces of leading indentation for
    /// the closing brace and `indent + 2` for each field.
    pub(crate) fn finish(&self, indent: usize) -> String {
        if self.fields.is_empty() {
            return "{}".to_string();
        }
        let pad = " ".repeat(indent + 2);
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("{pad}\"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n{}}}", " ".repeat(indent))
    }
}

/// Renders a JSON array of pre-rendered values.
pub(crate) fn array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent + 2);
    let body = items.iter().map(|v| format!("{pad}{v}")).collect::<Vec<_>>().join(",\n");
    format!("[\n{body}\n{}]", " ".repeat(indent))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_finite_json() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
    }

    #[test]
    fn object_rendering() {
        let mut o = Obj::new();
        o.str("name", "x").uint("n", 3);
        let s = o.finish(0);
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("\"n\": 3"));
    }
}

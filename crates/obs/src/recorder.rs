//! The event recorder: phase spans, typed counters, worker telemetry.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The pipeline phases a [`Recorder`] can time.
///
/// Each phase corresponds to one stage of the end-to-end coloring flow
/// (`encode → sbp → detect → solve → verify`); see `docs/OBSERVABILITY.md`
/// for exactly which code runs under which phase.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    /// Building the K-coloring 0-1 ILP encoding from the graph.
    Encode,
    /// Appending instance-independent SBPs (NU/CA/LI/SC/…).
    Sbp,
    /// The Shatter flow: symmetry detection + lex-leader SBP generation.
    Detect,
    /// The solver search (sequential or portfolio race).
    Solve,
    /// Decoding the model and re-verifying the coloring against the graph.
    Verify,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] =
        [Phase::Encode, Phase::Sbp, Phase::Detect, Phase::Solve, Phase::Verify];

    /// The lower-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Sbp => "sbp",
            Phase::Detect => "detect",
            Phase::Solve => "solve",
            Phase::Verify => "verify",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The typed counters a [`Recorder`] accumulates.
///
/// Counters are monotonically increasing `u64`s updated with relaxed
/// atomics, so portfolio workers can record concurrently without locks.
/// Solvers flush counter deltas at stride boundaries (every 64 conflicts)
/// and at solve exit, so a live reader sees progress at that granularity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Counter {
    /// Branching decisions made.
    Decisions,
    /// Conflicts analyzed.
    Conflicts,
    /// Literals propagated (trail pushes).
    Propagations,
    /// Restarts performed.
    Restarts,
    /// Clauses learned.
    Learned,
    /// Learned clauses deleted by database reduction.
    Deleted,
    /// Conflicts whose analysis touched a PB constraint.
    PbConflicts,
    /// Total literals across all learned clauses (divide by
    /// [`Counter::Learned`] for the mean learned-clause size).
    LearnedLiterals,
    /// Sum of LBD (glue) values across all learned clauses (divide by
    /// [`Counter::Learned`] for the mean glue).
    LbdSum,
    /// Learned clauses exported into the portfolio's shared clause pool.
    Exported,
    /// Clauses imported from the portfolio's shared clause pool.
    Imported,
}

impl Counter {
    /// All counters, in report order.
    pub const ALL: [Counter; 11] = [
        Counter::Decisions,
        Counter::Conflicts,
        Counter::Propagations,
        Counter::Restarts,
        Counter::Learned,
        Counter::Deleted,
        Counter::PbConflicts,
        Counter::LearnedLiterals,
        Counter::LbdSum,
        Counter::Exported,
        Counter::Imported,
    ];

    /// The snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Decisions => "decisions",
            Counter::Conflicts => "conflicts",
            Counter::Propagations => "propagations",
            Counter::Restarts => "restarts",
            Counter::Learned => "learned",
            Counter::Deleted => "deleted",
            Counter::PbConflicts => "pb_conflicts",
            Counter::LearnedLiterals => "learned_literals",
            Counter::LbdSum => "lbd_sum",
            Counter::Exported => "exported",
            Counter::Imported => "imported",
        }
    }

    fn index(self) -> usize {
        match self {
            Counter::Decisions => 0,
            Counter::Conflicts => 1,
            Counter::Propagations => 2,
            Counter::Restarts => 3,
            Counter::Learned => 4,
            Counter::Deleted => 5,
            Counter::PbConflicts => 6,
            Counter::LearnedLiterals => 7,
            Counter::LbdSum => 8,
            Counter::Exported => 9,
            Counter::Imported => 10,
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A plain-data snapshot of the search counters (one solver run or one
/// portfolio worker). The same quantities as [`Counter`], as struct
/// fields so they can be embedded in reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted: u64,
    /// Conflicts whose analysis touched a PB constraint.
    pub pb_conflicts: u64,
    /// Total literals across all learned clauses.
    pub learned_literals: u64,
    /// Sum of LBD (glue) values across all learned clauses.
    pub lbd_sum: u64,
    /// Learned clauses exported into the shared clause pool.
    pub exported: u64,
    /// Clauses imported from the shared clause pool.
    pub imported: u64,
}

impl SearchCounters {
    /// Mean learned-clause length, or `None` before the first learned
    /// clause.
    pub fn mean_learned_len(&self) -> Option<f64> {
        (self.learned > 0).then(|| self.learned_literals as f64 / self.learned as f64)
    }

    /// Mean LBD (glue) of learned clauses, or `None` before the first
    /// learned clause.
    pub fn mean_lbd(&self) -> Option<f64> {
        (self.learned > 0).then(|| self.lbd_sum as f64 / self.learned as f64)
    }

    /// Reads the field corresponding to a [`Counter`].
    pub fn get(&self, counter: Counter) -> u64 {
        match counter {
            Counter::Decisions => self.decisions,
            Counter::Conflicts => self.conflicts,
            Counter::Propagations => self.propagations,
            Counter::Restarts => self.restarts,
            Counter::Learned => self.learned,
            Counter::Deleted => self.deleted,
            Counter::PbConflicts => self.pb_conflicts,
            Counter::LearnedLiterals => self.learned_literals,
            Counter::LbdSum => self.lbd_sum,
            Counter::Exported => self.exported,
            Counter::Imported => self.imported,
        }
    }
}

/// One finished span: which phase ran, when it started (relative to the
/// recorder's creation), for how long, and at which nesting depth.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// The phase the span timed.
    pub phase: Phase,
    /// Start offset from the recorder's creation instant.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub duration: Duration,
    /// Nesting depth at open time (0 = top level). Spans opened while
    /// another span is open — e.g. a per-query `solve` inside an outer
    /// flow — report depth ≥ 1.
    pub depth: usize,
}

/// Per-worker telemetry of one portfolio race, recorded by
/// `sbgc-pb::solve_portfolio` / `optimize_portfolio` when given an enabled
/// recorder.
#[derive(Clone, Debug)]
pub struct WorkerTelemetry {
    /// Worker index into the portfolio's config slice.
    pub index: usize,
    /// What kind of worker this was: `"cdcl"` for the exact CDCL/PB
    /// portfolio workers, or a heuristic name (`"tabucol"`, `"partialcol"`,
    /// `"clique"`, …) for the primal-bound racers of `sbgc-heur`.
    pub kind: String,
    /// The worker's diversification seed.
    pub seed: u64,
    /// Human-readable description of the worker's engine configuration.
    pub config: String,
    /// The worker's own search counters (not summed with its peers).
    pub search: SearchCounters,
    /// Whether this worker produced the definitive answer.
    pub won: bool,
    /// For losing workers in a decided race: wall-clock delay between the
    /// winner tripping the shared cancellation token (`sbgc-sat`'s
    /// `CancelToken`) and this worker returning — the
    /// cooperative-cancellation latency (≈ up to 64 conflicts of work).
    /// `None` for the winner and for undecided races.
    pub cancel_latency: Option<Duration>,
    /// Total wall-clock time this worker ran.
    pub run_time: Duration,
    /// `Some(message)` when the worker died mid-race (its solve panicked);
    /// the message summarizes the panic payload. A failed worker never
    /// wins, and its `search` counters are whatever was flushed before
    /// death (possibly all zero).
    pub failed: Option<String>,
    /// For persistent-session workers: the 0-based query index this
    /// telemetry entry describes (a session records one entry per worker
    /// per ladder query, with `search` holding that query's counter
    /// *delta*, not the worker's lifetime totals). `None` for one-shot
    /// races.
    pub query: Option<u64>,
}

/// Telemetry for one step of an incremental chromatic-number ladder
/// (one assumption query against a persistent solver session), recorded
/// by `sbgc-core`'s ladder driver.
#[derive(Clone, Debug)]
pub struct LadderStepTelemetry {
    /// 0-based position of the step in the ladder.
    pub step: u64,
    /// The color count the step queried ("is the graph `target`-colorable?").
    pub target: usize,
    /// `"sat"`, `"unsat"`, or `"unknown"`.
    pub outcome: String,
    /// Wall-clock seconds the query took.
    pub seconds: f64,
    /// Learned clauses still live in the session's engines when the query
    /// started — clauses retained from earlier ladder steps (summed across
    /// portfolio workers). 0 on the first step.
    pub retained_clauses: u64,
    /// Alive solver workers that served the query (1 for sequential).
    pub workers: usize,
}

/// Summary telemetry of one heuristic race (the `sbgc-heur` workers that
/// tighten the chromatic bracket before/while the exact search runs),
/// recorded by `sbgc-core`'s hybrid driver.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HeuristicsTelemetry {
    /// The one-shot DSATUR upper bound the race started from.
    pub dsatur_upper: usize,
    /// The one-shot greedy-clique lower bound the race started from.
    pub greedy_clique_lower: usize,
    /// Best validated upper bound after the race (≤ `dsatur_upper`).
    pub upper: usize,
    /// Best validated lower bound after the race (≥ `greedy_clique_lower`).
    pub lower: usize,
    /// Ladder rungs the exact search no longer has to query thanks to the
    /// heuristic incumbent (`dsatur_upper − upper`).
    pub rungs_skipped: usize,
    /// Heuristic workers launched.
    pub workers: usize,
    /// Offered bounds rejected at the trust boundary (improper coloring,
    /// wrong color count, or non-clique).
    pub rejected_witnesses: u64,
    /// Heuristic workers that died (panicked) or had an offer rejected.
    pub failed_workers: u64,
    /// Wall-clock seconds the race ran.
    pub seconds: f64,
}

/// Summary telemetry of one supervised solve (the watchdog/retry loop of
/// `sbgc-core::supervisor`), recorded once per run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SupervisorTelemetry {
    /// Solve attempts made (1 = no retries).
    pub attempts: u64,
    /// Times the wall-clock watchdog tripped a stalled attempt (no
    /// conflict progress for the configured window).
    pub watchdog_trips: u64,
    /// Configured watchdog stall window in seconds, when a watchdog ran.
    pub watchdog_secs: Option<f64>,
    /// The budget-escalation factor of the final attempt (1 = the original
    /// budget; doubles per retry up to the supervisor's cap).
    pub final_escalation: u64,
    /// Checkpoints successfully written at ladder-rung boundaries.
    pub checkpoints_written: u64,
    /// Path checkpoints were written to, when auto-checkpointing was on.
    pub checkpoint_path: Option<String>,
}

/// Telemetry of one resume-from-checkpoint, recorded by
/// `sbgc-core::supervisor` after the checkpoint passed validation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResumeTelemetry {
    /// Path the checkpoint was loaded from.
    pub from_path: String,
    /// Lower chromatic bound restored from the checkpoint.
    pub lower: usize,
    /// Upper chromatic bound (committed ladder rungs) restored.
    pub upper: usize,
    /// Colors used by the restored incumbent witness, if one survived
    /// re-validation.
    pub witness_colors: Option<usize>,
    /// Learned clauses offered by the checkpoint.
    pub clauses_offered: u64,
    /// Offered clauses accepted by the rebuilt session's share filter.
    pub clauses_imported: u64,
    /// Ladder rungs the resumed search skips relative to a fresh start
    /// (the fresh DSATUR upper bound minus the restored one).
    pub rungs_skipped: u64,
}

struct Inner {
    epoch: Instant,
    depth: AtomicUsize,
    counters: [AtomicU64; Counter::ALL.len()],
    spans: Mutex<Vec<SpanRecord>>,
    workers: Mutex<Vec<WorkerTelemetry>>,
    ladder: Mutex<Vec<LadderStepTelemetry>>,
    heuristics: Mutex<Option<HeuristicsTelemetry>>,
    supervisor: Mutex<Option<SupervisorTelemetry>>,
    resume: Mutex<Option<ResumeTelemetry>>,
}

/// A lightweight event/span recorder shared across the solving pipeline.
///
/// A `Recorder` is either *enabled* (created by [`Recorder::new`]) or
/// *disabled* ([`Recorder::disabled`], also the `Default`). Cloning an
/// enabled recorder yields a handle to the **same** log, so one recorder
/// can be handed to the flow, the solver and every portfolio worker, and
/// all of them append to one place. Every recording method on a disabled
/// recorder is a no-op behind a single branch
/// ([`is_enabled`](Recorder::is_enabled)), which is why the solvers only
/// consult it at stride boundaries.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates an enabled recorder. Its monotonic epoch (the zero point of
    /// [`SpanRecord::start`]) is the creation instant.
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                depth: AtomicUsize::new(0),
                counters: Default::default(),
                spans: Mutex::new(Vec::new()),
                workers: Mutex::new(Vec::new()),
                ladder: Mutex::new(Vec::new()),
                heuristics: Mutex::new(None),
                supervisor: Mutex::new(None),
                resume: Mutex::new(None),
            })),
        }
    }

    /// Creates a disabled recorder: every recording call is a no-op and
    /// every query returns empty/zero.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder records anything. Call sites on hot paths
    /// should check this once per stride, not per event.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a timed span for `phase`; the span is recorded when the
    /// returned guard drops (including during panic unwinding). Spans may
    /// nest; guards close in LIFO order by construction.
    pub fn span(&self, phase: Phase) -> SpanGuard {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return SpanGuard { inner: None, phase, start: None, depth: 0 },
        };
        let depth = inner.depth.fetch_add(1, Ordering::Relaxed);
        SpanGuard { inner: Some(Arc::clone(inner)), phase, start: Some(Instant::now()), depth }
    }

    /// Adds `n` to a typed counter (relaxed atomic; race-free across
    /// threads).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            if n > 0 {
                inner.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.inner {
            Some(inner) => inner.counters[counter.index()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Snapshot of all counters as a [`SearchCounters`] struct.
    pub fn search_counters(&self) -> SearchCounters {
        SearchCounters {
            decisions: self.counter(Counter::Decisions),
            conflicts: self.counter(Counter::Conflicts),
            propagations: self.counter(Counter::Propagations),
            restarts: self.counter(Counter::Restarts),
            learned: self.counter(Counter::Learned),
            deleted: self.counter(Counter::Deleted),
            pb_conflicts: self.counter(Counter::PbConflicts),
            learned_literals: self.counter(Counter::LearnedLiterals),
            lbd_sum: self.counter(Counter::LbdSum),
            exported: self.counter(Counter::Exported),
            imported: self.counter(Counter::Imported),
        }
    }

    /// Records one portfolio worker's telemetry.
    ///
    /// Poison-tolerant: telemetry is recorded even if a previous worker
    /// panicked while appending — a dead worker must not take the
    /// survivors' records with it.
    pub fn record_worker(&self, worker: WorkerTelemetry) {
        if let Some(inner) = &self.inner {
            inner.workers.lock().unwrap_or_else(PoisonError::into_inner).push(worker);
        }
    }

    /// All finished spans, in the order they *closed* (nested spans
    /// therefore appear before their parents).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => Vec::new(),
        }
    }

    /// All recorded worker telemetry, in recording order.
    pub fn workers(&self) -> Vec<WorkerTelemetry> {
        match &self.inner {
            Some(inner) => inner.workers.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => Vec::new(),
        }
    }

    /// Records one ladder step of an incremental chromatic-number search.
    ///
    /// Poison-tolerant for the same reason as [`Recorder::record_worker`].
    pub fn record_ladder_step(&self, step: LadderStepTelemetry) {
        if let Some(inner) = &self.inner {
            inner.ladder.lock().unwrap_or_else(PoisonError::into_inner).push(step);
        }
    }

    /// All recorded ladder steps, in recording (= ladder) order.
    pub fn ladder_steps(&self) -> Vec<LadderStepTelemetry> {
        match &self.inner {
            Some(inner) => inner.ladder.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => Vec::new(),
        }
    }

    /// Records the summary of a heuristic primal-bound race. A later call
    /// overwrites an earlier one (the report carries one race per run).
    ///
    /// Poison-tolerant for the same reason as [`Recorder::record_worker`].
    pub fn record_heuristics(&self, telemetry: HeuristicsTelemetry) {
        if let Some(inner) = &self.inner {
            *inner.heuristics.lock().unwrap_or_else(PoisonError::into_inner) = Some(telemetry);
        }
    }

    /// The recorded heuristic-race summary, if one was recorded.
    pub fn heuristics(&self) -> Option<HeuristicsTelemetry> {
        match &self.inner {
            Some(inner) => inner.heuristics.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => None,
        }
    }

    /// Records the summary of a supervised solve. A later call overwrites
    /// an earlier one (the report carries one supervised run).
    ///
    /// Poison-tolerant for the same reason as [`Recorder::record_worker`].
    pub fn record_supervisor(&self, telemetry: SupervisorTelemetry) {
        if let Some(inner) = &self.inner {
            *inner.supervisor.lock().unwrap_or_else(PoisonError::into_inner) = Some(telemetry);
        }
    }

    /// The recorded supervised-solve summary, if one was recorded.
    pub fn supervisor(&self) -> Option<SupervisorTelemetry> {
        match &self.inner {
            Some(inner) => inner.supervisor.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => None,
        }
    }

    /// Records the summary of a resume-from-checkpoint. A later call
    /// overwrites an earlier one.
    ///
    /// Poison-tolerant for the same reason as [`Recorder::record_worker`].
    pub fn record_resume(&self, telemetry: ResumeTelemetry) {
        if let Some(inner) = &self.inner {
            *inner.resume.lock().unwrap_or_else(PoisonError::into_inner) = Some(telemetry);
        }
    }

    /// The recorded resume summary, if one was recorded.
    pub fn resume(&self) -> Option<ResumeTelemetry> {
        match &self.inner {
            Some(inner) => inner.resume.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => None,
        }
    }

    /// Total time spent in `phase` (sum over its finished spans).
    pub fn phase_time(&self, phase: Phase) -> Duration {
        self.spans().iter().filter(|s| s.phase == phase).map(|s| s.duration).sum()
    }

    /// Number of finished spans of `phase`.
    pub fn phase_count(&self, phase: Phase) -> usize {
        self.spans().iter().filter(|s| s.phase == phase).count()
    }

    /// The number of currently open spans (0 once all guards dropped).
    pub fn open_spans(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.depth.load(Ordering::Relaxed),
            None => 0,
        }
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => write!(
                f,
                "Recorder(spans={}, workers={}, conflicts={})",
                inner.spans.lock().map(|s| s.len()).unwrap_or(0),
                inner.workers.lock().map(|w| w.len()).unwrap_or(0),
                inner.counters[Counter::Conflicts.index()].load(Ordering::Relaxed),
            ),
        }
    }
}

/// RAII guard returned by [`Recorder::span`]; records the span when
/// dropped. Dropping during panic unwinding still records, so phase
/// accounting stays balanced even when a stage fails.
#[must_use = "a span guard records its phase only when dropped"]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    phase: Phase,
    start: Option<Instant>,
    depth: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (self.inner.take(), self.start) else {
            return;
        };
        let record = SpanRecord {
            phase: self.phase,
            start: start.duration_since(inner.epoch),
            duration: start.elapsed(),
            depth: self.depth,
        };
        // Decrement depth before taking the lock so a panicking thread
        // cannot leave the depth counter stuck if the mutex is poisoned.
        inner.depth.fetch_sub(1, Ordering::Relaxed);
        inner.spans.lock().unwrap_or_else(PoisonError::into_inner).push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_log() {
        let a = Recorder::new();
        let b = a.clone();
        b.add(Counter::Decisions, 7);
        {
            let _s = b.span(Phase::Solve);
        }
        assert_eq!(a.counter(Counter::Decisions), 7);
        assert_eq!(a.spans().len(), 1);
    }

    #[test]
    fn phase_time_sums_spans() {
        let r = Recorder::new();
        for _ in 0..3 {
            let _s = r.span(Phase::Encode);
        }
        assert_eq!(r.phase_count(Phase::Encode), 3);
        assert_eq!(r.phase_count(Phase::Solve), 0);
    }

    #[test]
    fn nested_spans_report_depth() {
        let r = Recorder::new();
        {
            let _outer = r.span(Phase::Solve);
            let _inner = r.span(Phase::Verify);
        }
        let spans = r.spans();
        // Inner closes first.
        assert_eq!(spans[0].phase, Phase::Verify);
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].phase, Phase::Solve);
        assert_eq!(spans[1].depth, 0);
        assert_eq!(r.open_spans(), 0);
    }

    #[test]
    fn ladder_steps_record_in_order() {
        let r = Recorder::new();
        for (i, target) in [(0u64, 8usize), (1, 6)] {
            r.record_ladder_step(LadderStepTelemetry {
                step: i,
                target,
                outcome: "sat".to_string(),
                seconds: 0.1,
                retained_clauses: i * 100,
                workers: 4,
            });
        }
        let steps = r.ladder_steps();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].target, 8);
        assert_eq!(steps[1].retained_clauses, 100);
        assert!(Recorder::disabled().ladder_steps().is_empty());
    }

    #[test]
    fn supervisor_and_resume_record_once_each() {
        let r = Recorder::new();
        r.record_supervisor(SupervisorTelemetry { attempts: 1, ..Default::default() });
        r.record_supervisor(SupervisorTelemetry {
            attempts: 3,
            watchdog_trips: 1,
            final_escalation: 4,
            ..Default::default()
        });
        let sup = r.supervisor().expect("supervisor summary recorded");
        assert_eq!(sup.attempts, 3, "later record overwrites earlier");
        assert_eq!(sup.final_escalation, 4);
        r.record_resume(ResumeTelemetry {
            from_path: "ckpt.bin".to_string(),
            lower: 5,
            upper: 7,
            rungs_skipped: 2,
            ..Default::default()
        });
        assert_eq!(r.resume().unwrap().rungs_skipped, 2);
        assert!(Recorder::disabled().supervisor().is_none());
        assert!(Recorder::disabled().resume().is_none());
    }

    #[test]
    fn mean_learned_len() {
        let c = SearchCounters { learned: 4, learned_literals: 10, ..Default::default() };
        assert_eq!(c.mean_learned_len(), Some(2.5));
        assert_eq!(SearchCounters::default().mean_learned_len(), None);
    }
}

//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes *when and where* the pipeline should fail:
//! which portfolio worker panics after how many conflicts, and which proof
//! write reports an I/O error. Plans are plain data — seeded, cloneable and
//! free of wall-clock or RNG state at trigger time — so a chaos test that
//! fails replays identically under `--test-threads=1` or in a debugger.
//!
//! Production entry points accept no plan (the portfolio's
//! `*_instrumented` functions take `Option<&FaultPlan>` and every public
//! wrapper passes `None`), so the injection machinery compiles away to a
//! single `is_none` branch outside the solver hot path.
//!
//! # Example
//!
//! ```
//! use sbgc_obs::FaultPlan;
//!
//! let plan = FaultPlan::new(42).with_seeded_worker_panic(4, 100);
//! let victim = plan.panicking_worker().unwrap();
//! assert!(victim < 4);
//! assert_eq!(plan.worker_panic(victim), Some(100));
//! // Every other worker is untouched.
//! assert!((0..4).filter(|&w| plan.worker_panic(w).is_some()).count() == 1);
//! ```

/// A deterministic schedule of faults to inject into a solving pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// `(worker index, conflict count)`: the worker panics once its solver
    /// has spent this many conflicts.
    worker_panic: Option<(usize, u64)>,
    /// 1-based index of the first proof write that fails; all later writes
    /// fail too (a full disk stays full).
    proof_fail_at: Option<u64>,
    /// Heuristic worker whose offered witnesses are corrupted before the
    /// trust-boundary check (exercises improper-coloring rejection).
    improper_witness: Option<usize>,
    /// `(worker index, query index)`: from this 0-based session query on,
    /// workers at this index and above stall — they burn wall-clock
    /// without conflict progress until their budget fires (exercises the
    /// supervisor's watchdog; `(0, 0)` wedges the whole race).
    stalled_worker: Option<(usize, u64)>,
    /// 0-based ladder rung at whose *start* the supervised solve dies
    /// (after the previous rung's checkpoint was written), modeling a
    /// process kill mid-ladder.
    mid_rung_kill: Option<u64>,
    /// Byte offset whose lowest bit is flipped in a written checkpoint
    /// (exercises CRC rejection of corrupted files).
    checkpoint_corruption: Option<u64>,
    /// When set, every artifact write through the fault-aware atomic
    /// writer fails with an I/O error (a full disk).
    artifact_write_failure: bool,
}

impl FaultPlan {
    /// An empty plan (no faults) carrying `seed` for derived choices.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules worker `worker` to panic after `after_conflicts`
    /// conflicts.
    pub fn with_worker_panic(mut self, worker: usize, after_conflicts: u64) -> Self {
        self.worker_panic = Some((worker, after_conflicts));
        self
    }

    /// Schedules a panic in a seed-chosen worker out of `num_workers`
    /// after `after_conflicts` conflicts. The choice is a pure function of
    /// the seed (SplitMix64), so a given seed always kills the same
    /// worker.
    pub fn with_seeded_worker_panic(self, num_workers: usize, after_conflicts: u64) -> Self {
        assert!(num_workers > 0, "need at least one worker to kill");
        let victim = (splitmix64(self.seed) % num_workers as u64) as usize;
        self.with_worker_panic(victim, after_conflicts)
    }

    /// Schedules the `k`-th proof write (1-based) and every write after it
    /// to fail.
    pub fn with_proof_write_failure(mut self, k: u64) -> Self {
        assert!(k > 0, "proof write indices are 1-based");
        self.proof_fail_at = Some(k);
        self
    }

    /// If worker `worker` is scheduled to die: the conflict count after
    /// which it must panic.
    pub fn worker_panic(&self, worker: usize) -> Option<u64> {
        match self.worker_panic {
            Some((w, n)) if w == worker => Some(n),
            _ => None,
        }
    }

    /// The worker scheduled to panic, if any.
    pub fn panicking_worker(&self) -> Option<usize> {
        self.worker_panic.map(|(w, _)| w)
    }

    /// The 1-based index of the first failing proof write, if scheduled.
    pub fn proof_write_failure(&self) -> Option<u64> {
        self.proof_fail_at
    }

    /// Schedules heuristic worker `worker` to corrupt every coloring it
    /// offers to the shared incumbent (the offer becomes improper before
    /// the trust-boundary validation sees it).
    pub fn with_improper_witness(mut self, worker: usize) -> Self {
        self.improper_witness = Some(worker);
        self
    }

    /// Whether heuristic worker `worker` is scheduled to emit corrupted
    /// witnesses.
    pub fn improper_witness(&self, worker: usize) -> bool {
        self.improper_witness == Some(worker)
    }

    /// Schedules session workers `worker` **and above** to stall (no
    /// conflict progress, only wall-clock burn) from 0-based query
    /// `from_query` onward. `with_stalled_worker(0, 0)` therefore wedges
    /// the entire race — the scenario the supervisor's watchdog exists
    /// for — while a higher index stalls only a suffix of the portfolio.
    pub fn with_stalled_worker(mut self, worker: usize, from_query: u64) -> Self {
        self.stalled_worker = Some((worker, from_query));
        self
    }

    /// If worker `worker` is scheduled to stall: the 0-based query index
    /// from which it stalls.
    pub fn stalled_worker(&self, worker: usize) -> Option<u64> {
        match self.stalled_worker {
            Some((w, q)) if worker >= w => Some(q),
            _ => None,
        }
    }

    /// Schedules the supervised solve to die at the start of 0-based
    /// ladder rung `rung`, after the previous rung's checkpoint was
    /// written.
    pub fn with_mid_rung_kill(mut self, rung: u64) -> Self {
        self.mid_rung_kill = Some(rung);
        self
    }

    /// The 0-based ladder rung at whose start the solve dies, if
    /// scheduled.
    pub fn mid_rung_kill(&self) -> Option<u64> {
        self.mid_rung_kill
    }

    /// Schedules the lowest bit of byte `offset` to be flipped in the next
    /// written checkpoint (the offset wraps modulo the file length).
    pub fn with_checkpoint_corruption(mut self, offset: u64) -> Self {
        self.checkpoint_corruption = Some(offset);
        self
    }

    /// The byte offset scheduled for a checkpoint bit-flip, if any.
    pub fn checkpoint_corruption(&self) -> Option<u64> {
        self.checkpoint_corruption
    }

    /// Makes every artifact write through the fault-aware atomic writer
    /// fail with an I/O error.
    pub fn with_artifact_write_failure(mut self) -> Self {
        self.artifact_write_failure = true;
        self
    }

    /// Whether artifact writes are scheduled to fail.
    pub fn artifact_write_failure(&self) -> bool {
        self.artifact_write_failure
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.worker_panic.is_none()
            && self.proof_fail_at.is_none()
            && self.improper_witness.is_none()
            && self.stalled_worker.is_none()
            && self.mid_rung_kill.is_none()
            && self.checkpoint_corruption.is_none()
            && !self.artifact_write_failure
    }
}

/// SplitMix64 — the same cheap, well-mixed, dependency-free generator the
/// portfolio uses for seed diversification.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert_eq!(plan.worker_panic(0), None);
        assert_eq!(plan.proof_write_failure(), None);
        assert_eq!(plan.panicking_worker(), None);
        assert_eq!(plan.seed(), 7);
    }

    #[test]
    fn worker_panic_targets_one_worker() {
        let plan = FaultPlan::new(0).with_worker_panic(2, 50);
        assert_eq!(plan.worker_panic(2), Some(50));
        assert_eq!(plan.worker_panic(0), None);
        assert_eq!(plan.worker_panic(3), None);
        assert_eq!(plan.panicking_worker(), Some(2));
    }

    #[test]
    fn seeded_choice_is_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::new(seed).with_seeded_worker_panic(4, 10);
            let b = FaultPlan::new(seed).with_seeded_worker_panic(4, 10);
            assert_eq!(a, b, "same seed must pick the same victim");
            assert!(a.panicking_worker().unwrap() < 4);
        }
        // Different seeds spread across workers (not all the same victim).
        let victims: std::collections::HashSet<usize> = (0..32u64)
            .map(|s| FaultPlan::new(s).with_seeded_worker_panic(4, 10).panicking_worker().unwrap())
            .collect();
        assert!(victims.len() > 1);
    }

    #[test]
    fn improper_witness_targets_one_worker() {
        let plan = FaultPlan::new(5).with_improper_witness(1);
        assert!(plan.improper_witness(1));
        assert!(!plan.improper_witness(0));
        assert!(!plan.is_empty());
        assert!(plan.worker_panic(1).is_none());
    }

    #[test]
    fn proof_write_failure_round_trips() {
        let plan = FaultPlan::new(0).with_proof_write_failure(3);
        assert_eq!(plan.proof_write_failure(), Some(3));
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zeroth_proof_write_rejected() {
        let _ = FaultPlan::new(0).with_proof_write_failure(0);
    }

    #[test]
    fn stalled_worker_targets_a_suffix_of_the_portfolio() {
        let plan = FaultPlan::new(3).with_stalled_worker(1, 2);
        assert_eq!(plan.stalled_worker(1), Some(2));
        assert_eq!(plan.stalled_worker(3), Some(2), "higher indices stall too");
        assert_eq!(plan.stalled_worker(0), None, "lower indices keep solving");
        assert!(!plan.is_empty());
    }

    #[test]
    fn supervisor_faults_round_trip() {
        let plan = FaultPlan::new(0)
            .with_mid_rung_kill(2)
            .with_checkpoint_corruption(17)
            .with_artifact_write_failure();
        assert_eq!(plan.mid_rung_kill(), Some(2));
        assert_eq!(plan.checkpoint_corruption(), Some(17));
        assert!(plan.artifact_write_failure());
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).mid_rung_kill().is_none());
    }
}

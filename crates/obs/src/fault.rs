//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes *when and where* the pipeline should fail:
//! which portfolio worker panics after how many conflicts, and which proof
//! write reports an I/O error. Plans are plain data — seeded, cloneable and
//! free of wall-clock or RNG state at trigger time — so a chaos test that
//! fails replays identically under `--test-threads=1` or in a debugger.
//!
//! Production entry points accept no plan (the portfolio's
//! `*_instrumented` functions take `Option<&FaultPlan>` and every public
//! wrapper passes `None`), so the injection machinery compiles away to a
//! single `is_none` branch outside the solver hot path.
//!
//! # Example
//!
//! ```
//! use sbgc_obs::FaultPlan;
//!
//! let plan = FaultPlan::new(42).with_seeded_worker_panic(4, 100);
//! let victim = plan.panicking_worker().unwrap();
//! assert!(victim < 4);
//! assert_eq!(plan.worker_panic(victim), Some(100));
//! // Every other worker is untouched.
//! assert!((0..4).filter(|&w| plan.worker_panic(w).is_some()).count() == 1);
//! ```

/// A deterministic schedule of faults to inject into a solving pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// `(worker index, conflict count)`: the worker panics once its solver
    /// has spent this many conflicts.
    worker_panic: Option<(usize, u64)>,
    /// 1-based index of the first proof write that fails; all later writes
    /// fail too (a full disk stays full).
    proof_fail_at: Option<u64>,
    /// Heuristic worker whose offered witnesses are corrupted before the
    /// trust-boundary check (exercises improper-coloring rejection).
    improper_witness: Option<usize>,
}

impl FaultPlan {
    /// An empty plan (no faults) carrying `seed` for derived choices.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules worker `worker` to panic after `after_conflicts`
    /// conflicts.
    pub fn with_worker_panic(mut self, worker: usize, after_conflicts: u64) -> Self {
        self.worker_panic = Some((worker, after_conflicts));
        self
    }

    /// Schedules a panic in a seed-chosen worker out of `num_workers`
    /// after `after_conflicts` conflicts. The choice is a pure function of
    /// the seed (SplitMix64), so a given seed always kills the same
    /// worker.
    pub fn with_seeded_worker_panic(self, num_workers: usize, after_conflicts: u64) -> Self {
        assert!(num_workers > 0, "need at least one worker to kill");
        let victim = (splitmix64(self.seed) % num_workers as u64) as usize;
        self.with_worker_panic(victim, after_conflicts)
    }

    /// Schedules the `k`-th proof write (1-based) and every write after it
    /// to fail.
    pub fn with_proof_write_failure(mut self, k: u64) -> Self {
        assert!(k > 0, "proof write indices are 1-based");
        self.proof_fail_at = Some(k);
        self
    }

    /// If worker `worker` is scheduled to die: the conflict count after
    /// which it must panic.
    pub fn worker_panic(&self, worker: usize) -> Option<u64> {
        match self.worker_panic {
            Some((w, n)) if w == worker => Some(n),
            _ => None,
        }
    }

    /// The worker scheduled to panic, if any.
    pub fn panicking_worker(&self) -> Option<usize> {
        self.worker_panic.map(|(w, _)| w)
    }

    /// The 1-based index of the first failing proof write, if scheduled.
    pub fn proof_write_failure(&self) -> Option<u64> {
        self.proof_fail_at
    }

    /// Schedules heuristic worker `worker` to corrupt every coloring it
    /// offers to the shared incumbent (the offer becomes improper before
    /// the trust-boundary validation sees it).
    pub fn with_improper_witness(mut self, worker: usize) -> Self {
        self.improper_witness = Some(worker);
        self
    }

    /// Whether heuristic worker `worker` is scheduled to emit corrupted
    /// witnesses.
    pub fn improper_witness(&self, worker: usize) -> bool {
        self.improper_witness == Some(worker)
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.worker_panic.is_none()
            && self.proof_fail_at.is_none()
            && self.improper_witness.is_none()
    }
}

/// SplitMix64 — the same cheap, well-mixed, dependency-free generator the
/// portfolio uses for seed diversification.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert_eq!(plan.worker_panic(0), None);
        assert_eq!(plan.proof_write_failure(), None);
        assert_eq!(plan.panicking_worker(), None);
        assert_eq!(plan.seed(), 7);
    }

    #[test]
    fn worker_panic_targets_one_worker() {
        let plan = FaultPlan::new(0).with_worker_panic(2, 50);
        assert_eq!(plan.worker_panic(2), Some(50));
        assert_eq!(plan.worker_panic(0), None);
        assert_eq!(plan.worker_panic(3), None);
        assert_eq!(plan.panicking_worker(), Some(2));
    }

    #[test]
    fn seeded_choice_is_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::new(seed).with_seeded_worker_panic(4, 10);
            let b = FaultPlan::new(seed).with_seeded_worker_panic(4, 10);
            assert_eq!(a, b, "same seed must pick the same victim");
            assert!(a.panicking_worker().unwrap() < 4);
        }
        // Different seeds spread across workers (not all the same victim).
        let victims: std::collections::HashSet<usize> = (0..32u64)
            .map(|s| FaultPlan::new(s).with_seeded_worker_panic(4, 10).panicking_worker().unwrap())
            .collect();
        assert!(victims.len() > 1);
    }

    #[test]
    fn improper_witness_targets_one_worker() {
        let plan = FaultPlan::new(5).with_improper_witness(1);
        assert!(plan.improper_witness(1));
        assert!(!plan.improper_witness(0));
        assert!(!plan.is_empty());
        assert!(plan.worker_panic(1).is_none());
    }

    #[test]
    fn proof_write_failure_round_trips() {
        let plan = FaultPlan::new(0).with_proof_write_failure(3);
        assert_eq!(plan.proof_write_failure(), Some(3));
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zeroth_proof_write_rejected() {
        let _ = FaultPlan::new(0).with_proof_write_failure(0);
    }
}

//! Brute-force reference solvers, used as oracles in tests.
//!
//! These enumerate all `2^n` assignments and are only suitable for tiny
//! formulas, but they are obviously correct — the property-based tests in
//! this workspace cross-check the CDCL engine (and the PB engine in
//! `sbgc-pb`) against them.

use sbgc_formula::{Assignment, PbFormula};

/// Exhaustively searches for a satisfying assignment.
///
/// Returns the lexicographically-first model (variable 0 least significant,
/// `false < true`), or `None` if unsatisfiable.
///
/// # Panics
///
/// Panics if the formula has more than 24 variables (the enumeration would
/// be too slow to be useful).
pub fn solve(formula: &PbFormula) -> Option<Assignment> {
    let n = formula.num_vars();
    assert!(n <= 24, "naive solver limited to 24 variables, got {n}");
    for bits in 0u64..(1u64 << n) {
        let asg = Assignment::from_bools((0..n).map(|i| bits >> i & 1 == 1));
        if formula.is_satisfied_by(&asg) {
            return Some(asg);
        }
    }
    None
}

/// Exhaustively counts the satisfying assignments.
///
/// # Panics
///
/// Panics if the formula has more than 24 variables.
pub fn count_models(formula: &PbFormula) -> u64 {
    let n = formula.num_vars();
    assert!(n <= 24, "naive counter limited to 24 variables, got {n}");
    (0u64..(1u64 << n))
        .filter(|bits| {
            let asg = Assignment::from_bools((0..n).map(|i| bits >> i & 1 == 1));
            formula.is_satisfied_by(&asg)
        })
        .count() as u64
}

/// Exhaustively minimizes the objective over satisfying assignments.
///
/// Returns `(best_value, model)`, or `None` if the formula is
/// unsatisfiable.
///
/// # Panics
///
/// Panics if the formula has more than 24 variables or no objective.
pub fn optimize(formula: &PbFormula) -> Option<(u64, Assignment)> {
    let n = formula.num_vars();
    assert!(n <= 24, "naive optimizer limited to 24 variables, got {n}");
    let obj = formula.objective().expect("formula must carry an objective");
    let mut best: Option<(u64, Assignment)> = None;
    for bits in 0u64..(1u64 << n) {
        let asg = Assignment::from_bools((0..n).map(|i| bits >> i & 1 == 1));
        if formula.is_satisfied_by(&asg) {
            let val = obj.value(&asg).expect("total assignment");
            if best.as_ref().is_none_or(|(b, _)| val < *b) {
                best = Some((val, asg));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Objective, Var};

    #[test]
    fn finds_model_and_counts() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, b]);
        assert!(solve(&f).is_some());
        assert_eq!(count_models(&f), 3);
    }

    #[test]
    fn unsat_detected() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        f.add_unit(!a);
        assert!(solve(&f).is_none());
        assert_eq!(count_models(&f), 0);
    }

    #[test]
    fn optimization_finds_minimum() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, b]);
        f.set_objective(Objective::minimize([(3, a), (1, b)]));
        let (best, model) = optimize(&f).expect("SAT");
        assert_eq!(best, 1);
        assert!(model.satisfies(b));
        assert!(model.satisfies(!a));
    }

    #[test]
    #[should_panic(expected = "24 variables")]
    fn too_many_vars_panics() {
        let f = PbFormula::with_vars(30);
        let _ = solve(&f);
    }

    #[test]
    fn respects_pb_constraints() {
        let mut f = PbFormula::new();
        let lits: Vec<_> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_exactly_one(&lits);
        assert_eq!(count_models(&f), 3);
    }
}

//! Indexed max-heap over variable activities (the VSIDS order).

/// A binary max-heap of variable indices keyed by external activity scores,
/// supporting `O(log n)` insertion, removal of the maximum, and key-increase
/// notification — the classic MiniSat order heap.
#[derive(Clone, Debug, Default)]
pub(crate) struct ActivityHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `position[v]` = index of `v` in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub fn with_capacity(num_vars: usize) -> Self {
        ActivityHeap { heap: Vec::with_capacity(num_vars), position: vec![ABSENT; num_vars] }
    }

    pub fn contains(&self, var: usize) -> bool {
        self.position[var] != ABSENT
    }

    /// Inserts `var` if absent.
    pub fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.position[var] = self.heap.len();
        self.heap.push(var as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().expect("non-empty");
        self.position[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `var`'s activity increased.
    pub fn increased(&mut self, var: usize, activity: &[f64]) {
        if let Some(&pos) = self.position.get(var) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[largest] as usize]
            {
                largest = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[largest] as usize]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a;
        self.position[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 2.0, 1.0, 3.0];
        let mut h = ActivityHeap::with_capacity(4);
        for v in 0..4 {
            h.insert(v, &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&activity)).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::with_capacity(2);
        h.insert(0, &activity);
        h.insert(0, &activity);
        h.insert(1, &activity);
        assert_eq!(h.pop_max(&activity), Some(1));
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), None);
    }

    #[test]
    fn increased_restores_order() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::with_capacity(3);
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.increased(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
    }
}

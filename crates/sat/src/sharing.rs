//! Lock-minimal learned-clause exchange between portfolio workers.
//!
//! Workers racing on the same formula export their best learned clauses
//! (filtered by LBD and length) into a [`SharedClausePool`] and import
//! everything their peers published since the last look. The design keeps
//! locking entirely out of the propagation loop:
//!
//! * the pool is an append-only `Vec` behind one mutex, plus an atomic
//!   *generation stamp* — the number of clauses published so far;
//! * exporting takes the lock once per exported clause (a rare event:
//!   exports are filtered to glue clauses, a small fraction of conflicts);
//! * importing happens only at restart boundaries and at solve start,
//!   where the trail is at the root level anyway. Between restarts a
//!   worker's only interaction with the pool is the lock-free
//!   [`SharingHandle::has_new`] stamp read;
//! * each [`SharingHandle`] remembers its cursor into the append-only log
//!   and its own source index, so it never re-imports its own exports and
//!   never sees a clause twice.
//!
//! Session lifetime: a pool shared by a *persistent* portfolio session
//! (`sbgc-pb::PortfolioSession`) outlives any single solve. That is
//! sound because every exported clause is derived by resolution from the
//! clause database alone — assumptions enter the search as decisions,
//! never as axioms, so nothing assumption-relative can be learned, let
//! alone exported — and because committed strengthenings (root-level
//! units added between queries) reach every worker before its next
//! query, so no worker can import a clause derived from units it does
//! not itself have.
//!
//! Poisoning: a worker that panics while holding the pool lock (fault
//! injection does exactly this) must not take the race down with it, so
//! every lock acquisition recovers the guard from a `PoisonError` — the
//! pool's state is an append-only list plus a stamp that is updated while
//! the lock is held, so a half-completed export is at worst a published
//! clause with a stale stamp, which the next export republishes.

use sbgc_formula::Lit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Export filter: which learned clauses are worth telling peers about.
///
/// Glucose-family sharing keeps only *glue* clauses — low LBD, short —
/// because import costs every peer propagation work forever after.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharingConfig {
    /// Maximum LBD (number of distinct decision levels) of an exported
    /// clause.
    pub max_lbd: u32,
    /// Maximum length of an exported clause.
    pub max_len: usize,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig { max_lbd: 6, max_len: 30 }
    }
}

#[derive(Clone, Debug)]
struct SharedClause {
    lits: Arc<[Lit]>,
    lbd: u32,
    source: usize,
}

/// The shared clause store of one portfolio race.
///
/// Create one per race with [`SharedClausePool::new`], then hand each
/// worker a [`SharingHandle`] via [`SharedClausePool::handle`].
#[derive(Debug, Default)]
pub struct SharedClausePool {
    clauses: Mutex<Vec<SharedClause>>,
    /// Number of clauses published, updated under the lock and read
    /// without it: `Release` store / `Acquire` load pairs make the clause
    /// data visible to any reader that observed the new count.
    published: AtomicUsize,
    exported: AtomicU64,
    imported: AtomicU64,
}

fn lock_tolerant<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SharedClausePool {
    /// A fresh, empty pool behind an [`Arc`] (handles keep it alive).
    pub fn new() -> Arc<Self> {
        Arc::new(SharedClausePool::default())
    }

    /// A worker handle. `source` must be unique per worker in the race —
    /// it is how a worker's own exports are skipped on import.
    pub fn handle(self: &Arc<Self>, source: usize, config: SharingConfig) -> SharingHandle {
        SharingHandle { pool: Arc::clone(self), config, source, cursor: 0 }
    }

    /// Number of clauses published so far (all workers).
    pub fn len(&self) -> usize {
        self.published.load(Ordering::Acquire)
    }

    /// `true` when nothing has been exported yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total clauses exported into the pool.
    pub fn total_exported(&self) -> u64 {
        self.exported.load(Ordering::Relaxed)
    }

    /// Total clause imports served (one per clause per importing worker).
    pub fn total_imported(&self) -> u64 {
        self.imported.load(Ordering::Relaxed)
    }

    /// A persistence snapshot: every clause currently published, with its
    /// LBD, regardless of source. This is the state a solve checkpoint
    /// carries across process restarts — each snapshotted clause already
    /// passed some worker's export filter, and every shared clause is
    /// entailed by the formula plus the units committed before it was
    /// learned, so re-seeding it after those units are re-committed is
    /// sound (see `docs/ROBUSTNESS.md`).
    pub fn snapshot(&self) -> Vec<(Vec<Lit>, u32)> {
        let pool = lock_tolerant(&self.clauses);
        pool.iter().map(|c| (c.lits.to_vec(), c.lbd)).collect()
    }

    /// Pre-populates the pool with externally supplied clauses (a resumed
    /// checkpoint's retained lemmas), applying `config`'s export filter.
    /// The clauses are attributed to a reserved source index no worker
    /// uses, so every worker handle imports them at its next restart
    /// boundary. Returns how many clauses passed the filter.
    pub fn seed(self: &Arc<Self>, clauses: &[(Vec<Lit>, u32)], config: SharingConfig) -> usize {
        let handle = self.handle(SEED_SOURCE, config);
        clauses.iter().filter(|(lits, lbd)| handle.export(lits, *lbd)).count()
    }
}

/// Source index reserved for checkpoint-seeded clauses: workers are
/// numbered from 0, so `usize::MAX` can never collide with a real worker
/// and seeded clauses are delivered to *every* handle.
const SEED_SOURCE: usize = usize::MAX;

/// One worker's view of a [`SharedClausePool`].
#[derive(Debug)]
pub struct SharingHandle {
    pool: Arc<SharedClausePool>,
    config: SharingConfig,
    source: usize,
    cursor: usize,
}

impl SharingHandle {
    /// Offers a learned clause to peers. Returns `true` if it passed the
    /// export filter and was published.
    pub fn export(&self, lits: &[Lit], lbd: u32) -> bool {
        if lits.is_empty() || lits.len() > self.config.max_len || lbd > self.config.max_lbd {
            return false;
        }
        {
            let mut pool = lock_tolerant(&self.pool.clauses);
            pool.push(SharedClause { lits: lits.into(), lbd, source: self.source });
            self.pool.published.store(pool.len(), Ordering::Release);
        }
        self.pool.exported.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Lock-free check for unseen clauses — the only pool interaction a
    /// worker performs outside restart boundaries.
    pub fn has_new(&self) -> bool {
        self.pool.published.load(Ordering::Acquire) > self.cursor
    }

    /// Drains every clause published since the last call, skipping this
    /// worker's own exports. The lock is held only to clone `Arc` handles;
    /// literal buffers are materialized outside it.
    pub fn take_new(&mut self) -> Vec<(Vec<Lit>, u32)> {
        let batch: Vec<SharedClause> = {
            let pool = lock_tolerant(&self.pool.clauses);
            let from = self.cursor.min(pool.len());
            self.cursor = pool.len();
            pool[from..].iter().filter(|c| c.source != self.source).cloned().collect()
        };
        self.pool.imported.fetch_add(batch.len() as u64, Ordering::Relaxed);
        batch.into_iter().map(|c| (c.lits.to_vec(), c.lbd)).collect()
    }

    /// The export filter this handle applies.
    pub fn config(&self) -> SharingConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::Var;

    fn lit(i: usize, neg: bool) -> Lit {
        Var::from_index(i).lit(neg)
    }

    #[test]
    fn export_then_import_roundtrip() {
        let pool = SharedClausePool::new();
        let a = pool.handle(0, SharingConfig::default());
        let mut b = pool.handle(1, SharingConfig::default());
        assert!(!b.has_new());
        let clause = vec![lit(0, false), lit(1, true)];
        assert!(a.export(&clause, 2));
        assert!(b.has_new());
        let got = b.take_new();
        assert_eq!(got, vec![(clause, 2)]);
        assert!(!b.has_new(), "a clause is served once");
        assert_eq!(pool.total_exported(), 1);
        assert_eq!(pool.total_imported(), 1);
    }

    #[test]
    fn own_exports_are_skipped() {
        let pool = SharedClausePool::new();
        let mut a = pool.handle(0, SharingConfig::default());
        assert!(a.export(&[lit(0, false)], 1));
        // The stamp moved, so has_new fires, but the drain yields nothing.
        assert!(a.has_new());
        assert!(a.take_new().is_empty());
        assert!(!a.has_new());
    }

    #[test]
    fn filter_rejects_fat_and_high_glue_clauses() {
        let pool = SharedClausePool::new();
        let h = pool.handle(0, SharingConfig { max_lbd: 3, max_len: 2 });
        assert!(!h.export(&[lit(0, false), lit(1, false), lit(2, false)], 2), "too long");
        assert!(!h.export(&[lit(0, false), lit(1, false)], 4), "glue too high");
        assert!(!h.export(&[], 0), "empty clauses are never shared");
        assert!(h.export(&[lit(0, false), lit(1, false)], 3));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn late_joiner_sees_full_history() {
        let pool = SharedClausePool::new();
        let a = pool.handle(0, SharingConfig::default());
        for i in 0..5 {
            assert!(a.export(&[lit(i, false)], 1));
        }
        let mut b = pool.handle(1, SharingConfig::default());
        assert_eq!(b.take_new().len(), 5);
    }

    #[test]
    fn poisoned_pool_stays_usable() {
        let pool = SharedClausePool::new();
        let poisoner = Arc::clone(&pool);
        // Panic while holding the pool lock, poisoning the mutex.
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.clauses.lock().unwrap();
            panic!("injected panic mid-export");
        })
        .join();
        assert!(pool.clauses.is_poisoned());
        let a = pool.handle(0, SharingConfig::default());
        let mut b = pool.handle(1, SharingConfig::default());
        assert!(a.export(&[lit(0, false), lit(1, false)], 2), "export must survive poison");
        assert_eq!(b.take_new().len(), 1, "import must survive poison");
    }

    #[test]
    fn snapshot_and_seed_round_trip() {
        let pool = SharedClausePool::new();
        let a = pool.handle(0, SharingConfig::default());
        assert!(a.export(&[lit(0, false), lit(1, true)], 2));
        assert!(a.export(&[lit(2, false)], 1));
        let snap = pool.snapshot();
        assert_eq!(snap.len(), 2);

        // A fresh pool seeded from the snapshot delivers every clause to
        // every worker handle — including the handle whose source index
        // matches the original exporter.
        let fresh = SharedClausePool::new();
        assert_eq!(fresh.seed(&snap, SharingConfig::default()), 2);
        let mut w0 = fresh.handle(0, SharingConfig::default());
        assert!(w0.has_new());
        assert_eq!(w0.take_new(), snap);
    }

    #[test]
    fn seed_applies_the_export_filter() {
        let pool = SharedClausePool::new();
        let fat: Vec<Lit> = (0..5).map(|i| lit(i, false)).collect();
        let snap = vec![(fat, 2), (vec![lit(0, false)], 9), (vec![lit(1, true)], 1)];
        let n = pool.seed(&snap, SharingConfig { max_lbd: 3, max_len: 3 });
        assert_eq!(n, 1, "only the short low-glue clause passes");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn concurrent_exports_are_all_delivered() {
        let pool = SharedClausePool::new();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let h = pool.handle(w, SharingConfig::default());
                scope.spawn(move || {
                    for i in 0..100 {
                        assert!(h.export(&[lit(i % 8, false), lit((i + 1) % 8, true)], 2));
                    }
                });
            }
        });
        assert_eq!(pool.len(), 400);
        let mut reader = pool.handle(9, SharingConfig::default());
        assert_eq!(reader.take_new().len(), 400);
    }
}

//! Restart schedules shared by the CDCL cores.
//!
//! The policy enum used to live in `sbgc-pb`; it moved here so the plain
//! SAT solver can be diversified with the same knobs (the portfolio runs
//! both engines with per-worker restart strategies). `sbgc-pb::config`
//! re-exports it, so existing imports keep working.

use crate::luby::Luby;

/// Restart schedule for the CDCL engines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RestartPolicy {
    /// Luby sequence scaled by a base conflict count (modern default).
    Luby {
        /// Conflicts per Luby unit.
        base: u64,
    },
    /// Geometric schedule: `first`, then `×factor` after each restart
    /// (the scheme of early Chaff-era solvers).
    Geometric {
        /// Conflicts before the first restart.
        first: u64,
        /// Growth factor applied after each restart.
        factor: f64,
    },
    /// Glucose-style adaptive restarts: restart when the exponential
    /// moving average of recent learned-clause LBDs exceeds the global
    /// mean (the search is producing worse-than-usual clauses), but never
    /// more often than `min_interval` conflicts.
    AdaptiveLbd {
        /// Minimum conflicts between restart checks.
        min_interval: u64,
    },
}

impl RestartPolicy {
    /// Conflicts allowed before the next restart point, given how many
    /// restarts have already happened. `luby` carries the iterator state
    /// for the Luby schedule (its position, not `restarts`, drives that
    /// sequence).
    ///
    /// For [`RestartPolicy::AdaptiveLbd`] this is the *check* interval:
    /// when it elapses the solver consults its [`GlueEma`] and either
    /// restarts or re-arms a short countdown.
    pub fn next_limit(&self, restarts: u64, luby: &mut Luby) -> u64 {
        match *self {
            RestartPolicy::Luby { base } => luby.next().unwrap_or(1) * base,
            RestartPolicy::Geometric { first, factor } => {
                // The geometric limit overflows f64→u64 range after a few
                // hundred restarts; clamp explicitly to u64::MAX (and clamp
                // the exponent, which would wrap the i32 cast long before).
                let exponent = restarts.min(i32::MAX as u64) as i32;
                let limit = first as f64 * factor.powi(exponent);
                if limit.is_finite() && limit < u64::MAX as f64 {
                    limit as u64
                } else {
                    u64::MAX
                }
            }
            RestartPolicy::AdaptiveLbd { min_interval } => min_interval.max(1),
        }
    }
}

/// Tracks learned-clause LBD ("glue") averages for adaptive restarts.
///
/// Keeps a fast exponential moving average (gain 1/32, roughly the last
/// ~50 conflicts) next to the global mean. When recent clauses are
/// markedly worse than the run's average — `recent > 1.25 × global`, the
/// Glucose K = 0.8 criterion — the solver is judged to be stuck in an
/// unproductive region and a restart is indicated.
#[derive(Clone, Debug, Default)]
pub struct GlueEma {
    recent: f64,
    total: f64,
    count: u64,
}

impl GlueEma {
    /// Number of observations required before the trend is trusted.
    const WARMUP: u64 = 50;

    /// Records the LBD of a freshly learned clause.
    pub fn observe(&mut self, lbd: u32) {
        self.count += 1;
        self.total += lbd as f64;
        if self.count == 1 {
            self.recent = lbd as f64;
        } else {
            self.recent += (lbd as f64 - self.recent) / 32.0;
        }
    }

    /// Global mean LBD over every observation so far.
    pub fn global(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Recent (EMA) LBD.
    pub fn recent(&self) -> f64 {
        self.recent
    }

    /// `true` when recent clause quality has degraded enough to warrant a
    /// restart (`recent > 1.25 × global`, after a warm-up period).
    pub fn restart_indicated(&self) -> bool {
        self.count >= Self::WARMUP && self.recent * 4.0 > self.global() * 5.0
    }

    /// Notes that a restart happened: the recent average is pulled back to
    /// the global mean so one bad stretch does not trigger a restart storm.
    pub fn restarted(&mut self) {
        self.recent = self.global();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_policy_scales_the_sequence() {
        let policy = RestartPolicy::Luby { base: 100 };
        let mut luby = Luby::new();
        let limits: Vec<u64> = (0..4).map(|r| policy.next_limit(r, &mut luby)).collect();
        assert_eq!(limits, vec![100, 100, 200, 100]);
    }

    #[test]
    fn adaptive_policy_returns_the_check_interval() {
        let policy = RestartPolicy::AdaptiveLbd { min_interval: 64 };
        let mut luby = Luby::new();
        assert_eq!(policy.next_limit(0, &mut luby), 64);
        assert_eq!(policy.next_limit(17, &mut luby), 64);
        // A zero interval is clamped so the countdown always moves.
        let degenerate = RestartPolicy::AdaptiveLbd { min_interval: 0 };
        assert_eq!(degenerate.next_limit(0, &mut luby), 1);
    }

    #[test]
    fn ema_warms_up_before_indicating() {
        let mut ema = GlueEma::default();
        for _ in 0..GlueEma::WARMUP - 1 {
            ema.observe(100);
        }
        assert!(!ema.restart_indicated(), "no signal before warm-up");
    }

    #[test]
    fn degrading_glue_indicates_restart() {
        let mut ema = GlueEma::default();
        for _ in 0..200 {
            ema.observe(2);
        }
        assert!(!ema.restart_indicated(), "steady glue must not trigger");
        for _ in 0..50 {
            ema.observe(20);
        }
        assert!(ema.restart_indicated(), "a burst of bad clauses must trigger");
        ema.restarted();
        assert!(!ema.restart_indicated(), "reset pulls recent back to the mean");
    }

    #[test]
    fn global_mean_is_exact() {
        let mut ema = GlueEma::default();
        for lbd in [2u32, 4, 6] {
            ema.observe(lbd);
        }
        assert!((ema.global() - 4.0).abs() < 1e-12);
    }
}

//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate implements the Chaff-class engine (Moskewicz et al. 2001) the
//! paper's pseudo-Boolean solvers are built on: Davis–Logemann–Loveland
//! backtrack search extended with
//!
//! * two-watched-literal Boolean constraint propagation,
//! * first-UIP conflict analysis with clause learning and non-chronological
//!   backjumping (optionally chronological for deep jumps, à la recent
//!   CDCL solvers),
//! * VSIDS (variable state independent decaying sum) decision heuristic,
//! * phase saving with an optional rephasing schedule,
//! * configurable restarts (Luby, geometric, or LBD-adaptive — see
//!   [`RestartPolicy`]), and
//! * learned-clause database reduction, by activity or by LBD tiering.
//!
//! For parallel portfolios the solver can exchange learned clauses with
//! peers through a [`SharedClausePool`] (see the [`sharing`] module docs
//! for the locking discipline).
//!
//! It solves pure-CNF decision problems; the mixed CNF+PB optimization
//! engine lives in `sbgc-pb` and shares the same architecture.
//!
//! # Example
//!
//! ```
//! use sbgc_formula::{PbFormula, Var};
//! use sbgc_sat::{SatSolver, SolveOutcome};
//!
//! let mut f = PbFormula::new();
//! let a = f.new_var().positive();
//! let b = f.new_var().positive();
//! f.add_clause([a, b]);
//! f.add_clause([!a, b]);
//! f.add_clause([a, !b]);
//!
//! let mut solver = SatSolver::from_formula(&f).expect("pure CNF");
//! match solver.solve() {
//!     SolveOutcome::Sat(model) => {
//!         assert!(f.is_satisfied_by(&model));
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod heap;
mod luby;
pub mod naive;
mod restart;
pub mod sharing;
mod solver;

pub use budget::{Budget, CancelToken, ExhaustReason};
pub use luby::Luby;
pub use restart::{GlueEma, RestartPolicy};
pub use sharing::{SharedClausePool, SharingConfig, SharingHandle};
pub use solver::{SatSolver, SolveOutcome, SolverStats};

//! The Luby restart sequence.

/// An iterator over the Luby sequence `1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1,
/// 2, 4, 8, ...`, the universally-optimal restart schedule used by modern
/// CDCL solvers.
///
/// # Example
///
/// ```
/// use sbgc_sat::Luby;
/// let first: Vec<u64> = Luby::new().take(7).collect();
/// assert_eq!(first, vec![1, 1, 2, 1, 1, 2, 4]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Luby {
    index: u64,
}

impl Luby {
    /// Creates the sequence starting at its first term.
    pub fn new() -> Self {
        Luby { index: 0 }
    }

    /// The `i`-th term (0-based) of the Luby sequence.
    pub fn term(mut i: u64) -> u64 {
        // Knuth's formulation: find k with 2^(k-1) <= i+1 < 2^k.
        loop {
            let i1 = i + 1;
            if i1 & (i1 + 1) == 0 {
                // i+1 = 2^k - 1  =>  term is 2^(k-1)
                return i1.div_ceil(2);
            }
            // Recurse: term(i) = term(i - 2^(k-1) + 1) where 2^(k-1) <= i+1.
            let k = 63 - i1.leading_zeros() as u64; // floor(log2(i+1))
            i -= (1 << k) - 1;
        }
    }
}

impl Iterator for Luby {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let t = Luby::term(self.index);
        self.index += 1;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_terms_match_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1];
        let got: Vec<u64> = Luby::new().take(expected.len()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn terms_are_powers_of_two() {
        for i in 0..1000 {
            let t = Luby::term(i);
            assert!(t.is_power_of_two(), "term {i} = {t}");
        }
    }

    #[test]
    fn each_power_appears_at_the_right_spot() {
        // term(2^k - 2) == 2^(k-1)
        for k in 1..20u64 {
            assert_eq!(Luby::term((1 << k) - 2), 1 << (k - 1));
        }
    }
}

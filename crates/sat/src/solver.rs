//! The CDCL search engine.

use crate::budget::{Budget, ExhaustReason};
use crate::heap::ActivityHeap;
use crate::luby::Luby;
use crate::restart::{GlueEma, RestartPolicy};
use crate::sharing::SharingHandle;
use sbgc_formula::{Assignment, Lit, PbFormula, Var};
use sbgc_obs::{Counter, Recorder};
use sbgc_proof::ProofLogger;
use std::fmt;

/// Result of a [`SatSolver::solve`] call.
#[derive(Clone, Debug)]
pub enum SolveOutcome {
    /// Satisfiable, with a total model.
    Sat(Assignment),
    /// Proven unsatisfiable.
    Unsat,
    /// The budget ran out before an answer was found.
    Unknown,
}

impl SolveOutcome {
    /// Returns the model if the outcome is SAT.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveOutcome::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if the outcome is [`SolveOutcome::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveOutcome::Sat(_))
    }

    /// Returns `true` if the outcome is [`SolveOutcome::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveOutcome::Unsat)
    }
}

/// Search statistics, for the experiment harness and for tests.
///
/// All fields count events since the solver was constructed and only
/// ever grow; subtract snapshots to get per-call deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made (branching literals picked by VSIDS or
    /// placed as assumptions).
    pub decisions: u64,
    /// Number of conflicts analyzed (one per learned clause or root-level
    /// refutation).
    pub conflicts: u64,
    /// Number of literals propagated (every trail push, including
    /// decisions and assumptions).
    pub propagations: u64,
    /// Number of restarts performed (Luby schedule).
    pub restarts: u64,
    /// Number of clauses learned by 1UIP conflict analysis.
    pub learned: u64,
    /// Number of learned clauses deleted by database reduction.
    pub deleted: u64,
    /// Total literals across all learned clauses (after minimization);
    /// divide by [`learned`](SolverStats::learned) for the mean
    /// learned-clause length.
    pub learned_literals: u64,
    /// Number of database-reduction (`reduce_db`) passes.
    pub reductions: u64,
    /// Number of dead clause slots physically reclaimed by arena
    /// compaction (see [`SatSolver::set_compaction`]).
    pub reclaimed: u64,
    /// Sum of LBD (glue) values over all learned clauses; divide by
    /// [`learned`](SolverStats::learned) for the mean glue.
    pub lbd_sum: u64,
    /// Learned clauses published to the shared pool (after the LBD/length
    /// export filter). Zero without [`SatSolver::set_sharing`].
    pub exported: u64,
    /// Clauses imported from portfolio peers and attached to the database.
    pub imported: u64,
    /// Why the most recent budgeted solve stopped early, if it did.
    /// `None` after a definitive SAT/UNSAT answer (and before any solve).
    /// Unlike the counters above this is a status, not a monotone count;
    /// it is reset at the start of every solve call.
    pub exhaust: Option<ExhaustReason>,
}

impl SolverStats {
    /// Flushes the delta between `self` and the previously flushed
    /// snapshot `prev` into `recorder`'s typed counters, returning the
    /// new snapshot.
    pub(crate) fn flush_delta(self, prev: SolverStats, recorder: &Recorder) -> SolverStats {
        recorder.add(Counter::Decisions, self.decisions - prev.decisions);
        recorder.add(Counter::Conflicts, self.conflicts - prev.conflicts);
        recorder.add(Counter::Propagations, self.propagations - prev.propagations);
        recorder.add(Counter::Restarts, self.restarts - prev.restarts);
        recorder.add(Counter::Learned, self.learned - prev.learned);
        recorder.add(Counter::Deleted, self.deleted - prev.deleted);
        recorder.add(Counter::LearnedLiterals, self.learned_literals - prev.learned_literals);
        recorder.add(Counter::LbdSum, self.lbd_sum - prev.lbd_sum);
        recorder.add(Counter::Exported, self.exported - prev.exported);
        recorder.add(Counter::Imported, self.imported - prev.imported);
        self
    }
}

const NO_REASON: u32 = u32::MAX;

/// Deep backjumps beyond this many levels are replaced by a single-level
/// chronological step when [`SatSolver::set_chrono`] is on (the threshold
/// CaDiCaL ships with).
const CHRONO_THRESHOLD: u32 = 100;

/// Conflicts before the first rephasing; the gap grows linearly after.
const REPHASE_BASE: u64 = 1000;

/// Learned clauses with LBD at or below this are "core" under tiered
/// reduction and never deleted.
const CORE_LBD: u32 = 2;

#[derive(Clone, Debug)]
struct StoredClause {
    lits: Vec<Lit>,
    learned: bool,
    deleted: bool,
    activity: f64,
    /// LBD at learn/import time; 0 for original clauses.
    lbd: u32,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Truth value stored per variable: `0` = unassigned, `1` = true, `2` =
/// false. (Branch-friendly encoding.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarValue {
    Undef,
    True,
    False,
}

/// A CDCL SAT solver over pure-CNF formulas.
///
/// Construct with [`SatSolver::from_formula`] (rejects formulas with PB
/// constraints) or build incrementally with [`SatSolver::new`] /
/// [`SatSolver::add_clause`]. See the crate docs for an end-to-end example.
pub struct SatSolver {
    num_vars: usize,
    clauses: Vec<StoredClause>,
    watches: Vec<Vec<Watcher>>,
    values: Vec<VarValue>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: ActivityHeap,
    saved_phase: Vec<bool>,
    cla_inc: f64,
    max_learnts: f64,
    ok: bool,
    // Physically reclaim tombstoned clauses after each reduce_db pass;
    // disabled only by tests comparing against the lazy-deletion baseline.
    compact: bool,
    // Running estimate of the bytes held by `clauses` (slots + literal
    // buffers). Tombstoned clauses still count until compaction frees them.
    arena_bytes: u64,
    stats: SolverStats,
    recorder: Recorder,
    // Stats snapshot already flushed to the recorder; deltas beyond this
    // are pushed at stride boundaries and at solve exit.
    flushed: SolverStats,
    proof: Option<Box<dyn ProofLogger>>,
    // scratch for analyze
    seen: Vec<bool>,
    restart: RestartPolicy,
    chrono: bool,
    rephase: bool,
    tiered_reduce: bool,
    glue: GlueEma,
    sharing: Option<SharingHandle>,
    // Level-stamping scratch for LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_gen: u64,
    // Conflict count that triggers the next rephasing, and how many have
    // happened (drives the invert/reset/stabilize rotation).
    next_rephase: u64,
    rephase_count: u64,
}

impl SatSolver {
    /// Creates an empty solver over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        SatSolver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            values: vec![VarValue::Undef; num_vars],
            level: vec![0; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            heap: ActivityHeap::with_capacity(num_vars),
            saved_phase: vec![false; num_vars],
            cla_inc: 1.0,
            max_learnts: 0.0,
            ok: true,
            compact: true,
            arena_bytes: 0,
            stats: SolverStats::default(),
            recorder: Recorder::disabled(),
            flushed: SolverStats::default(),
            proof: None,
            seen: vec![false; num_vars],
            restart: RestartPolicy::Luby { base: 100 },
            chrono: false,
            rephase: false,
            tiered_reduce: false,
            glue: GlueEma::default(),
            sharing: None,
            lbd_stamp: vec![0; num_vars + 1],
            lbd_gen: 0,
            next_rephase: REPHASE_BASE,
            rephase_count: 0,
        }
    }

    /// Builds a solver from a pure-CNF [`PbFormula`].
    ///
    /// # Errors
    ///
    /// Returns an error string if the formula contains PB constraints
    /// (use `sbgc-pb` for those).
    pub fn from_formula(formula: &PbFormula) -> Result<Self, String> {
        if !formula.is_pure_cnf() {
            return Err("formula contains PB constraints; use sbgc-pb::PbSolver".into());
        }
        let mut solver = SatSolver::new(formula.num_vars());
        for clause in formula.clauses() {
            solver.add_clause(clause.literals().iter().copied());
        }
        Ok(solver)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Attaches a [`Recorder`]; subsequent solve calls flush counter
    /// deltas to it at stride boundaries (every 64 conflicts, matching
    /// the budget-check stride) and on solve exit. A disabled recorder
    /// (the default) keeps the hot path branch-cheap.
    ///
    /// # Example
    ///
    /// ```
    /// use sbgc_formula::PbFormula;
    /// use sbgc_obs::{Counter, Recorder};
    /// use sbgc_sat::SatSolver;
    ///
    /// let mut f = PbFormula::new();
    /// let a = f.new_var().positive();
    /// let b = f.new_var().positive();
    /// f.add_clause([a, b]);
    /// f.add_clause([!a, b]);
    ///
    /// let recorder = Recorder::new();
    /// let mut solver = SatSolver::from_formula(&f).unwrap();
    /// solver.set_recorder(recorder.clone());
    /// solver.solve();
    /// assert_eq!(
    ///     recorder.counter(Counter::Propagations),
    ///     solver.stats().propagations,
    /// );
    /// ```
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn flush_recorder(&mut self) {
        self.flushed = self.stats.flush_delta(self.flushed, &self.recorder);
    }

    /// Attaches a DRAT [`ProofLogger`]. Every clause the solver derives
    /// from here on — root-simplified additions, 1UIP learned clauses, the
    /// final empty clause — and every database deletion is logged, so an
    /// UNSAT answer comes with a checkable refutation of the clauses added
    /// *after* this call.
    ///
    /// Attach the logger before the first [`SatSolver::add_clause`] call so
    /// the proof is grounded in the full original formula.
    pub fn set_proof_logger(&mut self, logger: Box<dyn ProofLogger>) {
        self.proof = Some(logger);
    }

    /// Enables or disables physical arena compaction after each
    /// `reduce_db` pass (default: enabled). Disabling restores the
    /// historical tombstone-only behavior, where deleted clauses linger in
    /// the arena and watch lists until process exit.
    pub fn set_compaction(&mut self, compact: bool) {
        self.compact = compact;
    }

    /// Overrides the learned-clause limit that triggers database
    /// reduction (test knob; the default is derived from the clause count
    /// on the first solve).
    pub fn set_max_learnts(&mut self, max_learnts: f64) {
        self.max_learnts = max_learnts;
    }

    /// Sets the restart schedule (default: `Luby { base: 100 }`). The
    /// portfolio diversifies workers by handing each a different policy.
    pub fn set_restart_policy(&mut self, policy: RestartPolicy) {
        self.restart = policy;
    }

    /// Enables chronological backtracking: conflicts whose analysis would
    /// jump back more than a threshold number of levels instead step back
    /// a single level, keeping the (still consistent) partial assignment
    /// below. Off by default.
    pub fn set_chrono(&mut self, on: bool) {
        self.chrono = on;
    }

    /// Enables the rephasing schedule: at widening conflict intervals the
    /// saved phases are inverted, reset to the default polarity, or left
    /// alone for a stabilization window. Off by default.
    pub fn set_rephase(&mut self, on: bool) {
        self.rephase = on;
    }

    /// Switches database reduction from pure activity ranking to LBD
    /// tiering: clauses with LBD ≤ 2 are core and never deleted, the rest
    /// are ranked worst-first by (LBD, activity). Off by default.
    pub fn set_tiered_reduce(&mut self, on: bool) {
        self.tiered_reduce = on;
    }

    /// Attaches a handle to a portfolio clause pool. Learned clauses that
    /// pass the handle's export filter are published; peer clauses are
    /// imported at solve start and at every restart (the trail is at the
    /// root level there, so imports attach without propagation-loop
    /// locking).
    ///
    /// When a [`ProofLogger`] is also attached, imported clauses are
    /// logged as DRAT additions. That is sound only when every worker in
    /// the race logs additions into the *same* shared log (each import
    /// then duplicates an addition already present, which is trivially
    /// RUP) — the arrangement `sbgc-core`'s certificate layer sets up with
    /// adds-only loggers over one `SharedProof`.
    pub fn set_sharing(&mut self, handle: SharingHandle) {
        self.sharing = Some(handle);
    }

    /// Total `StoredClause` slots in the arena, live or tombstoned.
    /// With compaction enabled this tracks [`SatSolver::live_clauses`].
    pub fn arena_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of non-deleted stored clauses.
    pub fn live_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Estimated bytes held by the clause arena (slot metadata plus
    /// literal buffers). This is the figure compared against
    /// [`Budget::with_max_memory`] on the stride-64 budget path.
    /// Tombstoned clauses count until compaction physically frees them.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_bytes
    }

    fn clause_bytes(lits: &[Lit]) -> u64 {
        (std::mem::size_of::<StoredClause>() + std::mem::size_of_val(lits)) as u64
    }

    #[inline]
    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.log_add(lits);
        }
    }

    /// Adds a clause. May be called before or between `solve` calls (the
    /// solver backtracks to the root level first).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable `>= num_vars`.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.backtrack_to(0);
        if !self.ok {
            return;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars, "literal {l} out of range");
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology?
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        // Remove root-level falsified literals; drop clause if satisfied.
        let before = lits.len();
        lits.retain(|&l| self.lit_value(l) != VarValue::False);
        if lits.iter().any(|&l| self.lit_value(l) == VarValue::True) {
            return;
        }
        if lits.len() != before {
            // The simplified clause is a derived (RUP) clause: its dropped
            // literals are root-falsified by earlier unit propagation.
            self.proof_add(&lits);
        }
        match lits.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(lits[0], NO_REASON);
                if self.propagate().is_some() {
                    self.proof_add(&[]);
                    self.ok = false;
                }
            }
            _ => {
                self.attach_clause(lits, false);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(Watcher { clause: cref, blocker: lits[1] });
        self.watches[lits[1].code()].push(Watcher { clause: cref, blocker: lits[0] });
        self.arena_bytes += Self::clause_bytes(&lits);
        self.clauses.push(StoredClause { lits, learned, deleted: false, activity: 0.0, lbd: 0 });
        cref
    }

    /// LBD ("literals block distance", glue): the number of distinct
    /// nonzero decision levels among the clause's literals. Computed with
    /// a generation-stamped scratch array, O(len) per clause.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen += 1;
        let mut lbd = 0u32;
        for &l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if lvl != 0 && self.lbd_stamp[lvl] != self.lbd_gen {
                self.lbd_stamp[lvl] = self.lbd_gen;
                lbd += 1;
            }
        }
        lbd.max(1)
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> VarValue {
        match (self.values[l.var().index()], l.is_negated()) {
            (VarValue::Undef, _) => VarValue::Undef,
            (VarValue::True, false) | (VarValue::False, true) => VarValue::True,
            _ => VarValue::False,
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), VarValue::Undef);
        let v = l.var().index();
        self.values[v] = if l.is_negated() { VarValue::False } else { VarValue::True };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.saved_phase[v] = !l.is_negated();
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Propagates to fixpoint; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            // Clauses watching ¬p must be visited.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                // Blocker fast path.
                if self.lit_value(w.blocker) == VarValue::True {
                    i += 1;
                    continue;
                }
                let cref = w.clause as usize;
                if self.clauses[cref].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the falsified watch is at index 1.
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if self.lit_value(first) == VarValue::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let cand = self.clauses[cref].lits[k];
                    if self.lit_value(cand) != VarValue::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[cand.code()]
                            .push(Watcher { clause: w.clause, blocker: first });
                        ws.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Unit or conflict.
                if self.lit_value(first) == VarValue::False {
                    // Conflict: restore remaining watchers and report.
                    self.watches[false_lit.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.clause);
                }
                self.enqueue(first, w.clause);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn backtrack_to(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var().index();
            self.values[v] = VarValue::Undef;
            self.reason[v] = NO_REASON;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = bound;
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.increased(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: usize) {
        let c = &mut self.clauses[cref];
        if !c.learned {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl as usize);
            // Borrow the clause literals by cloning the small Vec — keeps
            // the borrow checker happy without unsafe.
            let lits = self.clauses[confl as usize].lits.clone();
            for &q in &lits {
                // When resolving on a reason clause, skip its implied
                // literal (the one we are resolving away).
                if p == Some(q) {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_REASON, "UIP literal must have a reason");
        }
        learnt[0] = !p.expect("asserting literal exists");

        // Local clause minimization: drop literals implied by the rest.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                if i == 0 {
                    return true;
                }
                let r = self.reason[q.var().index()];
                if r == NO_REASON {
                    return true;
                }
                !self.clauses[r as usize].lits.iter().all(|&x| x == !q || self.seen_or_root(x))
            })
            .collect();
        // seen[] flags for learnt literals are needed by seen_or_root; set
        // them before filtering, clear after.
        // (We set them here; analyze loop cleared current-level flags.)
        let mut minimized: Vec<Lit> = Vec::with_capacity(learnt.len());
        for (i, &q) in learnt.iter().enumerate() {
            if keep[i] {
                minimized.push(q);
            }
        }
        // Clear remaining seen flags.
        for &q in &learnt {
            self.seen[q.var().index()] = false;
        }

        // Backjump level: highest level among minimized[1..].
        let mut bt = 0;
        let mut max_i = 1;
        for (i, &q) in minimized.iter().enumerate().skip(1) {
            let lvl = self.level[q.var().index()];
            if lvl > bt {
                bt = lvl;
                max_i = i;
            }
        }
        if minimized.len() > 1 {
            minimized.swap(1, max_i);
        }
        (minimized, bt)
    }

    fn seen_or_root(&self, l: Lit) -> bool {
        let v = l.var().index();
        self.seen[v] || self.level[v] == 0
    }

    fn reduce_db(&mut self) {
        // Collect learned, non-reason deletion candidates. Under tiered
        // reduction, core clauses (LBD ≤ 2) are exempt: a glue-2 clause
        // links two decision levels and stays useful for the whole run.
        let tiered = self.tiered_reduce;
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learned && !c.deleted && c.lits.len() > 2 && !(tiered && c.lbd <= CORE_LBD)
            })
            .collect();
        if tiered {
            // Worst first: highest LBD, ties broken by lowest activity.
            candidates.sort_by(|&a, &b| {
                let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
                cb.lbd.cmp(&ca.lbd).then(
                    ca.activity.partial_cmp(&cb.activity).unwrap_or(std::cmp::Ordering::Equal),
                )
            });
        } else {
            // Classic MiniSat ranking: lowest activity first.
            candidates.sort_by(|&a, &b| {
                self.clauses[a]
                    .activity
                    .partial_cmp(&self.clauses[b].activity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        let locked: std::collections::HashSet<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var().index()])
            .filter(|&r| r != NO_REASON)
            .collect();
        let half = candidates.len() / 2;
        for &i in candidates.iter().take(half) {
            if locked.contains(&(i as u32)) {
                continue;
            }
            if let Some(p) = self.proof.as_mut() {
                p.log_delete(&self.clauses[i].lits);
            }
            self.clauses[i].deleted = true;
            self.stats.deleted += 1;
        }
        self.stats.reductions += 1;
        if self.compact {
            self.compact_db();
        }
    }

    /// Physically removes tombstoned clauses, remapping the clause
    /// references held by watch lists and trail reasons. Must run with
    /// propagation at fixpoint (it is called right after `reduce_db`,
    /// which never deletes locked clauses, so every trail reason stays
    /// live).
    fn compact_db(&mut self) {
        let mut remap = vec![NO_REASON; self.clauses.len()];
        let mut next = 0u32;
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.deleted {
                remap[i] = next;
                next += 1;
            }
        }
        let dead = self.clauses.len() - next as usize;
        if dead == 0 {
            return;
        }
        self.stats.reclaimed += dead as u64;
        self.clauses.retain(|c| !c.deleted);
        self.arena_bytes = self.clauses.iter().map(|c| Self::clause_bytes(&c.lits)).sum();
        for ws in &mut self.watches {
            ws.retain_mut(|w| {
                let m = remap[w.clause as usize];
                w.clause = m;
                m != NO_REASON
            });
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            let r = self.reason[v];
            if r != NO_REASON {
                debug_assert_ne!(remap[r as usize], NO_REASON, "trail reason must stay live");
                self.reason[v] = remap[r as usize];
            }
        }
    }

    /// Debug sweep of the clause-database invariants: every watcher
    /// references a live clause and watches its first two literals, and
    /// every trail reason is a live clause containing the implied literal.
    /// Intended for tests; compiled in all profiles but only cheap enough
    /// for small instances.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (code, ws) in self.watches.iter().enumerate() {
            let watched = Lit::from_code(code);
            for w in ws {
                let c = &self.clauses[w.clause as usize];
                if c.deleted {
                    continue; // lazily dropped on the next propagation visit
                }
                assert!(
                    c.lits[0] == watched || c.lits[1] == watched,
                    "watcher for {watched} does not watch clause {}",
                    w.clause
                );
            }
        }
        for &l in &self.trail {
            let r = self.reason[l.var().index()];
            if r != NO_REASON {
                let c = &self.clauses[r as usize];
                assert!(!c.deleted, "trail reason {r} is deleted");
                assert!(c.lits.contains(&l), "reason clause {r} lacks implied literal {l}");
            }
        }
    }

    /// Drains the shared pool at a root-level boundary (solve start or
    /// restart), attaching every peer clause. No-op without a sharing
    /// handle or when the generation stamp shows nothing new.
    fn import_shared(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let batch = match self.sharing.as_mut() {
            Some(h) if h.has_new() => h.take_new(),
            _ => return,
        };
        for (lits, lbd) in batch {
            if !self.ok {
                return;
            }
            self.import_clause(lits, lbd);
        }
    }

    /// Attaches one imported clause at the root level: satisfied clauses
    /// are skipped, root-falsified literals stripped, units enqueued and
    /// propagated. The (possibly strengthened) clause is logged as a DRAT
    /// addition — see [`SatSolver::set_sharing`] for why that is sound.
    fn import_clause(&mut self, mut lits: Vec<Lit>, lbd: u32) {
        if lits.iter().any(|&l| self.lit_value(l) == VarValue::True) {
            return;
        }
        lits.retain(|&l| self.lit_value(l) != VarValue::False);
        self.stats.imported += 1;
        self.proof_add(&lits);
        match lits.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(lits[0], NO_REASON);
                if self.propagate().is_some() {
                    self.proof_add(&[]);
                    self.ok = false;
                }
            }
            _ => {
                let cref = self.attach_clause(lits, true);
                self.clauses[cref as usize].lbd = lbd;
            }
        }
    }

    /// Rephasing schedule (splr/CaDiCaL style): at widening conflict
    /// intervals, rotate through inverting all saved phases, resetting
    /// them to the default polarity, and leaving them untouched (a
    /// stabilization window). Runs at restarts, where flipping phases is
    /// free.
    fn maybe_rephase(&mut self) {
        if !self.rephase || self.stats.conflicts < self.next_rephase {
            return;
        }
        self.rephase_count += 1;
        self.next_rephase = self.stats.conflicts + REPHASE_BASE * self.rephase_count;
        match self.rephase_count % 3 {
            1 => {
                for p in &mut self.saved_phase {
                    *p = !*p;
                }
            }
            2 => {
                for p in &mut self.saved_phase {
                    *p = false;
                }
            }
            _ => {} // stabilize: keep the phases the search settled on
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.values[v] == VarValue::Undef {
                let phase = self.saved_phase[v];
                return Some(Var::from_index(v).lit(!phase));
            }
        }
        None
    }

    /// Runs the CDCL search with an unlimited budget.
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_with_budget(&Budget::unlimited())
    }

    /// Runs the CDCL search under `budget`.
    pub fn solve_with_budget(&mut self, budget: &Budget) -> SolveOutcome {
        self.solve_inner(&[], budget)
    }

    /// Runs the search under unit *assumptions* placed as the first
    /// decisions. An UNSAT result is assumption-relative: the solver stays
    /// usable (with all learned clauses) for further queries — the
    /// incremental interface of MiniSat-family solvers.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.solve_inner(assumptions, budget)
    }

    fn solve_inner(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.stats.exhaust = None;
        let out = self.search(assumptions, budget);
        if self.recorder.is_enabled() {
            self.flush_recorder();
        }
        out
    }

    fn search(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        // Arm the wall-clock countdown (no-op if the caller already did).
        let budget = budget.started();
        if budget.cancelled() {
            self.stats.exhaust = Some(ExhaustReason::Cancelled);
            return SolveOutcome::Unknown;
        }
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return SolveOutcome::Unsat;
        }
        // Pick up everything peers learned before this solve began.
        self.import_shared();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        // (Re)fill the order heap.
        for v in 0..self.num_vars {
            if self.values[v] == VarValue::Undef {
                self.heap.insert(v, &self.activity);
            }
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(1000.0);
        }
        let mut luby = Luby::new();
        let policy = self.restart;
        let mut conflicts_until_restart = policy.next_limit(0, &mut luby);
        let mut budget_check = 0u32;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.decision_level() == 0 {
                    self.proof_add(&[]);
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                if self.chrono {
                    // Guard for out-of-order trails: if the conflict clause
                    // has no literal at the current level, undo the levels
                    // above its maximum before analyzing.
                    let maxl = self.clauses[confl as usize]
                        .lits
                        .iter()
                        .map(|l| self.level[l.var().index()])
                        .max()
                        .unwrap_or(0);
                    if maxl == 0 {
                        self.proof_add(&[]);
                        self.ok = false;
                        return SolveOutcome::Unsat;
                    }
                    if maxl < self.decision_level() {
                        self.backtrack_to(maxl);
                    }
                }
                let (learnt, bt) = self.analyze(confl);
                let lbd = self.compute_lbd(&learnt);
                self.glue.observe(lbd);
                self.stats.lbd_sum += lbd as u64;
                self.proof_add(&learnt);
                if let Some(h) = self.sharing.as_ref() {
                    if h.export(&learnt, lbd) {
                        self.stats.exported += 1;
                    }
                }
                // Chronological backtracking: a deep backjump discards a
                // still-consistent partial assignment; step back a single
                // level instead and keep it (the learned clause is unit
                // there too — its asserting literal was the only one at
                // the conflict level).
                let bt = if self.chrono
                    && learnt.len() > 1
                    && self.decision_level() - bt > CHRONO_THRESHOLD
                {
                    self.decision_level() - 1
                } else {
                    bt
                };
                self.backtrack_to(bt);
                self.stats.learned += 1;
                self.stats.learned_literals += learnt.len() as u64;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.clauses[cref as usize].lbd = lbd;
                    self.bump_clause(cref as usize);
                    self.enqueue(asserting, cref);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;

                budget_check += 1;
                if budget_check >= 64 {
                    budget_check = 0;
                    if let Some(reason) =
                        budget.exhaust_reason(self.stats.conflicts, self.arena_bytes)
                    {
                        self.stats.exhaust = Some(reason);
                        return SolveOutcome::Unknown;
                    }
                    // Same stride as the budget check: live readers see
                    // counter progress without a per-conflict branch.
                    if self.recorder.is_enabled() {
                        self.flush_recorder();
                    }
                } else if budget.conflicts_exhausted(self.stats.conflicts) {
                    self.stats.exhaust = Some(ExhaustReason::Conflicts);
                    return SolveOutcome::Unknown;
                }
            } else {
                if conflicts_until_restart == 0 {
                    // Adaptive mode restarts only when the glue trend says
                    // the search degraded; fixed schedules always restart.
                    let fire = match policy {
                        RestartPolicy::AdaptiveLbd { .. } => self.glue.restart_indicated(),
                        _ => true,
                    };
                    if fire {
                        self.stats.restarts += 1;
                        conflicts_until_restart = policy.next_limit(self.stats.restarts, &mut luby);
                        self.backtrack_to(0);
                        self.glue.restarted();
                        self.import_shared();
                        self.maybe_rephase();
                        if !self.ok {
                            return SolveOutcome::Unsat;
                        }
                    } else {
                        // Re-check the trend after a short stride.
                        conflicts_until_restart = 8;
                    }
                }
                let learned_live = (self.stats.learned - self.stats.deleted) as f64;
                if learned_live >= self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                // Re-establish assumptions as the first decision levels.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        VarValue::True => {
                            // Dummy level keeps levels aligned to the
                            // assumption list.
                            self.trail_lim.push(self.trail.len());
                        }
                        VarValue::False => {
                            // Assumption-relative UNSAT; the solver itself
                            // remains consistent.
                            self.backtrack_to(0);
                            return SolveOutcome::Unsat;
                        }
                        VarValue::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        // Total assignment: extract model.
                        let model = Assignment::from_bools(
                            self.values.iter().map(|&v| v == VarValue::True),
                        );
                        return SolveOutcome::Sat(model);
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }
}

impl fmt::Debug for SatSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SatSolver(vars={}, clauses={}, conflicts={})",
            self.num_vars,
            self.clauses.len(),
            self.stats.conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::PbFormula;

    fn lit(i: usize, neg: bool) -> Lit {
        Var::from_index(i).lit(neg)
    }

    #[test]
    fn trivially_sat() {
        let mut s = SatSolver::new(1);
        s.add_clause([lit(0, false)]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn trivially_unsat() {
        let mut s = SatSolver::new(1);
        s.add_clause([lit(0, false)]);
        s.add_clause([lit(0, true)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new(1);
        s.add_clause(std::iter::empty());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn no_clauses_is_sat() {
        let mut s = SatSolver::new(3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn chain_of_implications() {
        // x0, x0->x1, x1->x2, ..., x8->x9
        let mut s = SatSolver::new(10);
        s.add_clause([lit(0, false)]);
        for i in 0..9 {
            s.add_clause([lit(i, true), lit(i + 1, false)]);
        }
        match s.solve() {
            SolveOutcome::Sat(m) => {
                for i in 0..10 {
                    assert!(m.satisfies(lit(i, false)), "x{i} should be true");
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn unsat_xor_chain() {
        // Encode x0 != x1, x1 != x2, x2 != x0 (odd cycle of XORs): UNSAT.
        let mut s = SatSolver::new(3);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            s.add_clause([lit(a, false), lit(b, false)]);
            s.add_clause([lit(a, true), lit(b, true)]);
        }
        assert!(s.solve().is_unsat());
    }

    /// The pigeonhole principle PHP(n+1, n): n+1 pigeons, n holes, UNSAT.
    /// Classic symmetric benchmark the paper discusses (Krishnamurthy 1985).
    fn pigeonhole(holes: usize) -> PbFormula {
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let _ = f.new_vars(pigeons * holes);
        for p in 0..pigeons {
            f.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    f.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        f
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=5 {
            let f = pigeonhole(holes);
            let mut s = SatSolver::from_formula(&f).expect("pure CNF");
            assert!(s.solve().is_unsat(), "PHP({}) must be UNSAT", holes + 1);
        }
    }

    #[test]
    fn model_satisfies_formula() {
        // A random-ish 3-SAT instance; verify any model returned.
        let mut f = PbFormula::new();
        let _ = f.new_vars(8);
        let cls: [[i64; 3]; 10] = [
            [1, -2, 3],
            [-1, 2, 4],
            [2, -3, -4],
            [5, 6, -7],
            [-5, -6, 8],
            [1, 7, -8],
            [-2, -7, 8],
            [3, -5, 7],
            [-3, 4, -6],
            [-1, -4, 6],
        ];
        for c in cls {
            f.add_clause(c.iter().map(|&d| Lit::from_dimacs(d)));
        }
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        match s.solve() {
            SolveOutcome::Sat(m) => assert!(f.is_satisfied_by(&m)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn budget_returns_unknown() {
        let f = pigeonhole(7); // hard enough to exceed 1 conflict
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        let b = Budget::unlimited().with_max_conflicts(1);
        assert!(matches!(s.solve_with_budget(&b), SolveOutcome::Unknown));
    }

    #[test]
    fn budget_exhaust_reason_conflicts() {
        let f = pigeonhole(7);
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        let b = Budget::unlimited().with_max_conflicts(1);
        assert!(matches!(s.solve_with_budget(&b), SolveOutcome::Unknown));
        assert_eq!(s.stats().exhaust, Some(crate::ExhaustReason::Conflicts));
    }

    #[test]
    fn memory_budget_stops_with_reason() {
        let f = pigeonhole(7);
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        // A 1-byte cap trips at the first stride-64 check.
        let b = Budget::unlimited().with_max_memory(1);
        assert!(matches!(s.solve_with_budget(&b), SolveOutcome::Unknown));
        assert_eq!(s.stats().exhaust, Some(crate::ExhaustReason::Memory));
        assert!(s.arena_bytes() > 1);
    }

    #[test]
    fn definitive_answer_clears_exhaust() {
        let f = pigeonhole(4);
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        let b = Budget::unlimited().with_max_conflicts(1);
        let _ = s.solve_with_budget(&b);
        assert!(s.stats().exhaust.is_some());
        assert!(s.solve().is_unsat());
        assert_eq!(s.stats().exhaust, None);
    }

    #[test]
    fn arena_bytes_tracks_additions_and_compaction() {
        let mut s = SatSolver::new(3);
        assert_eq!(s.arena_bytes(), 0);
        s.add_clause([lit(0, false), lit(1, false)]);
        let after_one = s.arena_bytes();
        assert!(after_one > 0);
        s.add_clause([lit(0, true), lit(2, false)]);
        assert!(s.arena_bytes() > after_one);
    }

    #[test]
    fn rejects_pb_formulas() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(2).into_iter().map(Var::positive).collect();
        f.add_at_most_one(&lits);
        assert!(SatSolver::from_formula(&f).is_err());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new(2);
        s.add_clause([lit(0, false), lit(1, false)]);
        assert!(s.solve().is_sat());
        s.add_clause([lit(0, true)]);
        assert!(s.solve().is_sat());
        s.add_clause([lit(1, true)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_work_incrementally() {
        let mut s = SatSolver::new(3);
        s.add_clause([lit(0, false), lit(1, false), lit(2, false)]);
        // Assume all false: UNSAT, but only relative to the assumptions.
        let unsat = s.solve_with_assumptions(
            &[lit(0, true), lit(1, true), lit(2, true)],
            &Budget::unlimited(),
        );
        assert!(unsat.is_unsat());
        // Drop one assumption: SAT, with the remaining literal true.
        let out = s.solve_with_assumptions(&[lit(0, true), lit(1, true)], &Budget::unlimited());
        let m = out.model().expect("SAT");
        assert!(m.satisfies(lit(2, false)));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn stats_accumulate() {
        let f = pigeonhole(4);
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        let _ = s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
    }

    #[test]
    fn lbd_is_tracked_for_learned_clauses() {
        let f = pigeonhole(5);
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        assert!(s.solve().is_unsat());
        let st = s.stats();
        assert!(st.learned > 0);
        assert!(st.lbd_sum >= st.learned, "every learned clause has LBD >= 1");
        assert!(st.lbd_sum <= st.learned_literals, "LBD never exceeds clause length");
    }

    #[test]
    fn modern_knobs_preserve_answers() {
        // Every combination of the modern machinery must agree with the
        // baseline on both polarities.
        let configs = [(false, false, false), (true, false, false), (true, true, true)];
        for (chrono, rephase, tiered) in configs {
            for policy in [
                RestartPolicy::Luby { base: 32 },
                RestartPolicy::Geometric { first: 50, factor: 1.3 },
                RestartPolicy::AdaptiveLbd { min_interval: 16 },
            ] {
                let f = pigeonhole(5);
                let mut s = SatSolver::from_formula(&f).expect("pure CNF");
                s.set_chrono(chrono);
                s.set_rephase(rephase);
                s.set_tiered_reduce(tiered);
                s.set_restart_policy(policy);
                assert!(s.solve().is_unsat(), "{policy:?} chrono={chrono}");
                s.check_invariants();

                let mut sat = SatSolver::new(4);
                sat.set_chrono(chrono);
                sat.set_rephase(rephase);
                sat.set_tiered_reduce(tiered);
                sat.set_restart_policy(policy);
                sat.add_clause([lit(0, false), lit(1, false)]);
                sat.add_clause([lit(0, true), lit(2, false)]);
                sat.add_clause([lit(1, true), lit(3, false)]);
                match sat.solve() {
                    SolveOutcome::Sat(_) => {}
                    other => panic!("expected SAT, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn chrono_backjumps_stay_correct_with_tiny_threshold() {
        // The shipped threshold is high; the machinery itself is exercised
        // by forcing frequent reductions + restarts on a larger instance.
        let f = pigeonhole(6);
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        s.set_chrono(true);
        s.set_max_learnts(20.0);
        s.set_restart_policy(RestartPolicy::Luby { base: 8 });
        assert!(s.solve().is_unsat());
        s.check_invariants();
    }

    #[test]
    fn tiered_reduction_protects_core_clauses() {
        let f = pigeonhole(6);
        let mut s = SatSolver::from_formula(&f).expect("pure CNF");
        s.set_tiered_reduce(true);
        s.set_max_learnts(20.0);
        assert!(s.solve().is_unsat());
        let st = s.stats();
        assert!(st.reductions > 0, "reduction must have run");
        // Surviving learned clauses with LBD <= 2 prove the exemption: no
        // core clause was ever tombstoned.
        s.check_invariants();
    }

    #[test]
    fn sharing_relays_clauses_between_solvers() {
        use crate::sharing::{SharedClausePool, SharingConfig};
        let pool = SharedClausePool::new();
        let f = pigeonhole(5);

        let mut a = SatSolver::from_formula(&f).expect("pure CNF");
        a.set_sharing(pool.handle(0, SharingConfig::default()));
        assert!(a.solve().is_unsat());
        assert!(a.stats().exported > 0, "refuting PHP(6,5) must export glue clauses");
        assert_eq!(a.stats().imported, 0, "own exports are never re-imported");

        let mut b = SatSolver::from_formula(&f).expect("pure CNF");
        b.set_sharing(pool.handle(1, SharingConfig::default()));
        assert!(b.solve().is_unsat());
        assert!(b.stats().imported > 0, "peer clauses must be imported at solve start");
        b.check_invariants();
    }

    #[test]
    fn sharing_preserves_sat_answers() {
        use crate::sharing::{SharedClausePool, SharingConfig};
        // PHP(n, n) — one pigeon fewer — is satisfiable but conflict-rich,
        // so workers exchange clauses and must still produce real models.
        let holes = 5;
        let mut f = PbFormula::new();
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let _ = f.new_vars(holes * holes);
        for p in 0..holes {
            f.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..holes {
                for p2 in p1 + 1..holes {
                    f.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        let pool = SharedClausePool::new();
        let mut a = SatSolver::from_formula(&f).expect("pure CNF");
        a.set_sharing(pool.handle(0, SharingConfig::default()));
        let model_a = a.solve();
        assert!(f.is_satisfied_by(model_a.model().expect("SAT")));
        let mut b = SatSolver::from_formula(&f).expect("pure CNF");
        b.set_sharing(pool.handle(1, SharingConfig::default()));
        let model_b = b.solve();
        assert!(f.is_satisfied_by(model_b.model().expect("SAT")));
    }
}

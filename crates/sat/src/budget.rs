//! Search budgets: conflict limits, wall-clock limits, and cooperative
//! cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag that tells a running solver to stop at the next budget
/// check.
///
/// Cloning a token yields a handle to the *same* flag, so one clone can be
/// handed to a solver (inside a [`Budget`]) while another is kept to
/// [`cancel`](CancelToken::cancel) it from a different thread. This is how
/// the parallel portfolio stops losing workers once one worker finds a
/// definitive answer: every worker's budget carries a clone of the race
/// token, and the winner sets it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Trips the flag. All budgets carrying a clone of this token report
    /// exhaustion from now on.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a budgeted solve stopped before reaching a definitive answer.
///
/// Solvers record the first reason observed on the stride-64 budget path in
/// their stats (`SolverStats::exhaust` / `PbStats::exhaust`), and the value
/// flows up through portfolio telemetry and run reports so that a timeout,
/// a memory cap and an external cancellation are distinguishable after the
/// fact — the paper reports timeouts as *data*, and so do we.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustReason {
    /// The conflict cap ([`Budget::with_max_conflicts`]) was reached.
    Conflicts,
    /// The wall-clock deadline ([`Budget::with_timeout`]) passed.
    Time,
    /// The clause-arena memory cap ([`Budget::with_max_memory`]) was
    /// exceeded.
    Memory,
    /// An attached [`CancelToken`] was tripped (e.g. a portfolio race was
    /// won by another worker).
    Cancelled,
}

impl ExhaustReason {
    /// Stable lower-case label used in JSON reports and log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            ExhaustReason::Conflicts => "conflicts",
            ExhaustReason::Time => "time",
            ExhaustReason::Memory => "memory",
            ExhaustReason::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A resource budget for a solver run.
///
/// The paper runs every solver with a 1000-second timeout; our experiment
/// harness uses much smaller wall-clock budgets so the full grid completes
/// in-session, plus deterministic conflict budgets for reproducible tests.
///
/// Wall-clock budgets are *deferred*: [`with_timeout`](Budget::with_timeout)
/// records the duration, and the countdown starts when a solver entry point
/// calls [`started`](Budget::started). This lets a budget be built once
/// (e.g. in a CLI config) and reused across solves without the setup time
/// between construction and the first solve counting against the limit.
///
/// # Example
///
/// ```
/// use sbgc_sat::Budget;
/// use std::time::Duration;
/// let b = Budget::unlimited()
///     .with_max_conflicts(10_000)
///     .with_timeout(Duration::from_secs(2));
/// assert!(!b.conflicts_exhausted(9_999));
/// assert!(b.conflicts_exhausted(10_000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    max_conflicts: Option<u64>,
    timeout: Option<Duration>,
    deadline: Option<Instant>,
    max_memory: Option<u64>,
    cancel: Vec<CancelToken>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps the number of conflicts.
    pub fn with_max_conflicts(mut self, max: u64) -> Self {
        self.max_conflicts = Some(max);
        self
    }

    /// Caps wall-clock time. The countdown is armed by
    /// [`started`](Budget::started), which every solver entry point calls,
    /// so the limit is measured from the start of the solve rather than
    /// from this call.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self.deadline = None;
        self
    }

    /// Caps the clause-arena footprint, in bytes.
    ///
    /// Both `SatSolver` and `PbEngine` keep a running estimate of the bytes
    /// held by their constraint arenas and compare it against this cap on
    /// the same stride-64 path as the other budget checks. Exceeding the
    /// cap ends the solve with [`ExhaustReason::Memory`]; learned-clause
    /// reductions and arena compaction can bring a solver back under the
    /// cap before the next check, so the limit bounds the *steady-state*
    /// footprint rather than aborting on a transient spike.
    pub fn with_max_memory(mut self, bytes: u64) -> Self {
        self.max_memory = Some(bytes);
        self
    }

    /// Attaches a cancellation token. May be called more than once; the
    /// budget is exhausted as soon as *any* attached token is cancelled,
    /// so a caller-supplied token composes with e.g. a portfolio race
    /// token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel.push(token);
        self
    }

    /// Arms the wall-clock countdown, returning a budget whose deadline is
    /// `now + timeout`. Idempotent: if the deadline is already armed (an
    /// outer entry point started the clock), it is left untouched, so
    /// nested solve calls — e.g. the decision queries inside an
    /// optimization loop — share one deadline instead of each restarting
    /// it.
    #[must_use]
    pub fn started(&self) -> Self {
        let mut armed = self.clone();
        if armed.deadline.is_none() {
            armed.deadline = armed.timeout.map(|t| Instant::now() + t);
        }
        armed
    }

    /// The conflict cap, if one was set.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The wall-clock limit, if one was set (armed or not).
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The armed deadline, if [`started`](Budget::started) has run on a
    /// budget with a timeout. Supervisors use this to align watchdog
    /// polling with the solve's own wall-clock horizon.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Wall-clock time left until the armed deadline (`None` when no
    /// deadline is armed; zero once it has passed).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The memory cap in bytes, if one was set.
    pub fn max_memory(&self) -> Option<u64> {
        self.max_memory
    }

    /// A budget with every *resource* cap multiplied by `factor` — the
    /// escalation step of a supervised retry loop. Conflict, time and
    /// memory caps scale (saturating); cancellation tokens are **not**
    /// carried over (a retry must not be stillborn because the previous
    /// attempt's race token is still tripped), and the deadline is
    /// disarmed so the scaled timeout re-arms from the retry's own start.
    #[must_use]
    pub fn escalated(&self, factor: u32) -> Self {
        Budget {
            max_conflicts: self.max_conflicts.map(|m| m.saturating_mul(factor as u64)),
            timeout: self.timeout.map(|t| t.saturating_mul(factor)),
            deadline: None,
            max_memory: self.max_memory.map(|m| m.saturating_mul(factor as u64)),
            cancel: Vec::new(),
        }
    }

    /// Returns `true` once `conflicts` meets or exceeds the conflict cap.
    pub fn conflicts_exhausted(&self, conflicts: u64) -> bool {
        self.max_conflicts.is_some_and(|m| conflicts >= m)
    }

    /// Returns `true` once the (armed) wall-clock deadline has passed.
    pub fn time_exhausted(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Returns `true` once `bytes` exceeds the memory cap.
    pub fn memory_exhausted(&self, bytes: u64) -> bool {
        self.max_memory.is_some_and(|m| bytes > m)
    }

    /// Returns `true` once any attached cancellation token is tripped.
    pub fn cancelled(&self) -> bool {
        self.cancel.iter().any(CancelToken::is_cancelled)
    }

    /// Returns `true` if any resource is exhausted or the budget was
    /// cancelled.
    pub fn exhausted(&self, conflicts: u64) -> bool {
        self.conflicts_exhausted(conflicts) || self.time_exhausted() || self.cancelled()
    }

    /// Like [`exhausted`](Budget::exhausted) but also checks the memory
    /// cap against `arena_bytes` and reports *which* resource ran out.
    ///
    /// Checks are ordered by how actionable the reason is for a caller:
    /// cancellation (another worker won — not this run's fault), then
    /// memory, then time, then conflicts. Returns `None` while the budget
    /// still has headroom.
    pub fn exhaust_reason(&self, conflicts: u64, arena_bytes: u64) -> Option<ExhaustReason> {
        if self.cancelled() {
            Some(ExhaustReason::Cancelled)
        } else if self.memory_exhausted(arena_bytes) {
            Some(ExhaustReason::Memory)
        } else if self.time_exhausted() {
            Some(ExhaustReason::Time)
        } else if self.conflicts_exhausted(conflicts) {
            Some(ExhaustReason::Conflicts)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(u64::MAX));
    }

    #[test]
    fn conflict_cap() {
        let b = Budget::unlimited().with_max_conflicts(5);
        assert!(!b.exhausted(4));
        assert!(b.exhausted(5));
    }

    #[test]
    fn deadline_armed_at_start_not_construction() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(0));
        std::thread::sleep(Duration::from_millis(1));
        // Not armed yet: construction time does not count.
        assert!(!b.time_exhausted());
        let b = b.started();
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.time_exhausted());
    }

    #[test]
    fn started_is_idempotent() {
        let b = Budget::unlimited().with_timeout(Duration::from_millis(200)).started();
        let inner = b.started();
        // The inner call must not push the deadline further out.
        assert_eq!(b.deadline, inner.deadline);
    }

    #[test]
    fn cancellation_exhausts() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(token.clone());
        assert!(!b.exhausted(0));
        token.cancel();
        assert!(b.exhausted(0));
        assert!(b.cancelled());
    }

    #[test]
    fn memory_cap() {
        let b = Budget::unlimited().with_max_memory(1024);
        assert!(!b.memory_exhausted(1024));
        assert!(b.memory_exhausted(1025));
        assert_eq!(b.exhaust_reason(0, 2048), Some(ExhaustReason::Memory));
        assert_eq!(b.exhaust_reason(0, 0), None);
    }

    #[test]
    fn exhaust_reason_precedence() {
        let token = CancelToken::new();
        let b = Budget::unlimited()
            .with_max_conflicts(5)
            .with_max_memory(100)
            .with_cancel_token(token.clone());
        assert_eq!(b.exhaust_reason(0, 0), None);
        assert_eq!(b.exhaust_reason(5, 0), Some(ExhaustReason::Conflicts));
        assert_eq!(b.exhaust_reason(5, 200), Some(ExhaustReason::Memory));
        token.cancel();
        assert_eq!(b.exhaust_reason(5, 200), Some(ExhaustReason::Cancelled));
    }

    #[test]
    fn exhaust_reason_labels() {
        assert_eq!(ExhaustReason::Conflicts.as_str(), "conflicts");
        assert_eq!(ExhaustReason::Time.as_str(), "time");
        assert_eq!(ExhaustReason::Memory.to_string(), "memory");
        assert_eq!(ExhaustReason::Cancelled.as_str(), "cancelled");
    }

    #[test]
    fn accessors_round_trip() {
        let b = Budget::unlimited()
            .with_max_conflicts(100)
            .with_timeout(Duration::from_secs(3))
            .with_max_memory(4096);
        assert_eq!(b.max_conflicts(), Some(100));
        assert_eq!(b.timeout(), Some(Duration::from_secs(3)));
        assert_eq!(b.max_memory(), Some(4096));
        assert_eq!(b.deadline(), None, "deadline arms on started(), not construction");
        assert_eq!(b.remaining_time(), None);
        let armed = b.started();
        assert!(armed.deadline().is_some());
        assert!(armed.remaining_time().expect("armed") <= Duration::from_secs(3));
    }

    #[test]
    fn escalation_scales_caps_and_drops_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited()
            .with_max_conflicts(100)
            .with_timeout(Duration::from_secs(2))
            .with_max_memory(1000)
            .with_cancel_token(token)
            .started();
        let e = b.escalated(2);
        assert_eq!(e.max_conflicts(), Some(200));
        assert_eq!(e.timeout(), Some(Duration::from_secs(4)));
        assert_eq!(e.max_memory(), Some(2000));
        assert_eq!(e.deadline(), None, "the scaled timeout re-arms from the retry's start");
        assert!(!e.cancelled(), "a tripped token must not leak into the retry");
        // Unlimited dimensions stay unlimited.
        let u = Budget::unlimited().escalated(4);
        assert_eq!(u.max_conflicts(), None);
        assert_eq!(u.timeout(), None);
    }

    #[test]
    fn any_of_several_tokens_cancels() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        let budget = Budget::unlimited().with_cancel_token(a.clone()).with_cancel_token(b.clone());
        assert!(!budget.exhausted(0));
        b.cancel();
        assert!(budget.exhausted(0));
        assert!(!a.is_cancelled());
    }
}

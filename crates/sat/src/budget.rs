//! Search budgets: conflict and wall-clock limits.

use std::time::{Duration, Instant};

/// A resource budget for a solver run.
///
/// The paper runs every solver with a 1000-second timeout; our experiment
/// harness uses much smaller wall-clock budgets so the full grid completes
/// in-session, plus deterministic conflict budgets for reproducible tests.
///
/// # Example
///
/// ```
/// use sbgc_sat::Budget;
/// use std::time::Duration;
/// let b = Budget::unlimited()
///     .with_max_conflicts(10_000)
///     .with_timeout(Duration::from_secs(2));
/// assert!(!b.conflicts_exhausted(9_999));
/// assert!(b.conflicts_exhausted(10_000));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    max_conflicts: Option<u64>,
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget { max_conflicts: None, deadline: None }
    }

    /// Caps the number of conflicts.
    pub fn with_max_conflicts(mut self, max: u64) -> Self {
        self.max_conflicts = Some(max);
        self
    }

    /// Caps wall-clock time, measured from the moment of this call.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Returns `true` once `conflicts` meets or exceeds the conflict cap.
    pub fn conflicts_exhausted(&self, conflicts: u64) -> bool {
        self.max_conflicts.is_some_and(|m| conflicts >= m)
    }

    /// Returns `true` once the wall-clock deadline has passed.
    pub fn time_exhausted(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Returns `true` if either resource is exhausted.
    pub fn exhausted(&self, conflicts: u64) -> bool {
        self.conflicts_exhausted(conflicts) || self.time_exhausted()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(u64::MAX));
    }

    #[test]
    fn conflict_cap() {
        let b = Budget::unlimited().with_max_conflicts(5);
        assert!(!b.exhausted(4));
        assert!(b.exhausted(5));
    }

    #[test]
    fn elapsed_deadline() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.time_exhausted());
    }
}

//! Randomized cross-checks of the CDCL engine against the brute-force
//! oracle, plus property-based tests on random k-SAT.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbgc_formula::{Lit, PbFormula, Var};
use sbgc_sat::{naive, SatSolver, SolveOutcome};

fn random_ksat(num_vars: usize, num_clauses: usize, k: usize, seed: u64) -> PbFormula {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = PbFormula::with_vars(num_vars);
    for _ in 0..num_clauses {
        let mut lits = Vec::with_capacity(k);
        for _ in 0..k {
            let v = Var::from_index(rng.gen_range(0..num_vars));
            lits.push(v.lit(rng.gen_bool(0.5)));
        }
        f.add_clause(lits);
    }
    f
}

#[test]
fn cdcl_agrees_with_oracle_on_many_random_instances() {
    for seed in 0..200u64 {
        let f = random_ksat(8, 30, 3, seed);
        let oracle_sat = naive::solve(&f).is_some();
        let mut solver = SatSolver::from_formula(&f).expect("pure CNF");
        match solver.solve() {
            SolveOutcome::Sat(model) => {
                assert!(oracle_sat, "seed {seed}: CDCL says SAT, oracle says UNSAT");
                assert!(f.is_satisfied_by(&model), "seed {seed}: bogus model");
            }
            SolveOutcome::Unsat => {
                assert!(!oracle_sat, "seed {seed}: CDCL says UNSAT, oracle says SAT");
            }
            SolveOutcome::Unknown => panic!("seed {seed}: unlimited budget returned Unknown"),
        }
    }
}

#[test]
fn cdcl_agrees_on_dense_unsat_region() {
    // Clause/variable ratio ~8: overwhelmingly UNSAT instances exercise the
    // conflict-analysis path.
    for seed in 1000..1060u64 {
        let f = random_ksat(7, 56, 3, seed);
        let oracle_sat = naive::solve(&f).is_some();
        let mut solver = SatSolver::from_formula(&f).expect("pure CNF");
        assert_eq!(solver.solve().is_sat(), oracle_sat, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any model the CDCL engine returns satisfies the formula, and
    /// SAT/UNSAT agrees with exhaustive enumeration.
    #[test]
    fn prop_cdcl_matches_enumeration(
        num_vars in 1usize..8,
        num_clauses in 0usize..24,
        seed in any::<u64>(),
    ) {
        let f = random_ksat(num_vars, num_clauses, 3, seed);
        let oracle = naive::solve(&f);
        let mut solver = SatSolver::from_formula(&f).expect("pure CNF");
        match solver.solve() {
            SolveOutcome::Sat(m) => {
                prop_assert!(oracle.is_some());
                prop_assert!(f.is_satisfied_by(&m));
            }
            SolveOutcome::Unsat => prop_assert!(oracle.is_none()),
            SolveOutcome::Unknown => prop_assert!(false, "unlimited budget returned Unknown"),
        }
    }

    /// Adding a learned-style implied clause never changes satisfiability.
    #[test]
    fn prop_adding_model_clause_keeps_sat(
        num_vars in 2usize..7,
        num_clauses in 1usize..16,
        seed in any::<u64>(),
    ) {
        let f = random_ksat(num_vars, num_clauses, 3, seed);
        if let Some(model) = naive::solve(&f) {
            // The clause asserting "some literal of the model" is implied.
            let mut g = f.clone();
            let lits: Vec<Lit> = model
                .iter_assigned()
                .map(|(v, b)| v.lit(!b))
                .collect();
            g.add_clause(lits);
            let mut solver = SatSolver::from_formula(&g).expect("pure CNF");
            prop_assert!(solver.solve().is_sat());
        }
    }
}

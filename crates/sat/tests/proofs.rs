//! End-to-end DRAT proof logging: solver refutations must pass the
//! independent checker, with and without database reduction/compaction.

use sbgc_formula::{Lit, Var};
use sbgc_proof::{check_drat, DratProof, ProofStep, SharedProof};
use sbgc_sat::{Budget, SatSolver};

/// PHP(holes+1, holes) as a raw clause list (UNSAT for every size).
fn pigeonhole(holes: usize) -> (usize, Vec<Vec<Lit>>) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| var(p, h).positive()).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    (pigeons * holes, clauses)
}

/// Solves `clauses` with proof logging; returns the proof if UNSAT.
fn refute(num_vars: usize, clauses: &[Vec<Lit>], setup: impl Fn(&mut SatSolver)) -> DratProof {
    let shared = SharedProof::new();
    let mut solver = SatSolver::new(num_vars);
    solver.set_proof_logger(Box::new(shared.clone()));
    setup(&mut solver);
    for c in clauses {
        solver.add_clause(c.iter().copied());
    }
    assert!(solver.solve().is_unsat(), "expected UNSAT");
    solver.check_invariants();
    shared.take()
}

#[test]
fn pigeonhole_proofs_check() {
    for holes in 2..=4 {
        let (n, clauses) = pigeonhole(holes);
        let proof = refute(n, &clauses, |_| {});
        let stats = check_drat(n, &clauses, &proof).unwrap_or_else(|e| {
            panic!("PHP({}) proof rejected: {e}", holes + 1);
        });
        assert!(stats.adds > 0, "PHP({}) proof must contain lemmas", holes + 1);
    }
}

#[test]
fn proof_with_deletions_checks() {
    // Force aggressive database reduction so the proof carries `d` lines,
    // exercising deletion replay in the checker.
    let (n, clauses) = pigeonhole(5);
    let proof = refute(n, &clauses, |s| s.set_max_learnts(10.0));
    assert!(proof.num_deletes() > 0, "reduction should have produced deletions");
    check_drat(n, &clauses, &proof).expect("proof with deletions must check");
}

#[test]
fn proof_checks_with_compaction_disabled() {
    let (n, clauses) = pigeonhole(5);
    let proof = refute(n, &clauses, |s| {
        s.set_max_learnts(10.0);
        s.set_compaction(false);
    });
    check_drat(n, &clauses, &proof).expect("lazy-deletion proof must check");
}

#[test]
fn proof_rejected_against_weakened_formula() {
    // Dropping one pigeon's at-least-one clause makes the formula
    // satisfiable; a sound checker cannot accept any refutation of it.
    let (n, clauses) = pigeonhole(3);
    let proof = refute(n, &clauses, |_| {});
    let weakened: Vec<Vec<Lit>> = clauses[1..].to_vec();
    assert!(check_drat(n, &weakened, &proof).is_err());
}

#[test]
fn proof_rejected_with_injected_deletion() {
    let (n, clauses) = pigeonhole(3);
    let proof = refute(n, &clauses, |_| {});
    // Prepend a deletion of a clause that is not in the database.
    let mut tampered = DratProof::new();
    tampered.push_delete(&[Var::from_index(0).positive(), Var::from_index(1).positive()]);
    for step in proof.steps() {
        match step {
            ProofStep::Add(lits) => tampered.push_add(lits),
            ProofStep::Delete(lits) => tampered.push_delete(lits),
        }
    }
    assert_eq!(
        check_drat(n, &clauses, &tampered),
        Err(sbgc_proof::CheckError::MissingDeletion { step: 0 })
    );
}

#[test]
fn root_simplified_additions_are_logged() {
    // A unit clause falsifies a literal of the next clause; the simplified
    // residual must appear in the proof for the refutation to check.
    let a = Var::from_index(0);
    let b = Var::from_index(1);
    let clauses: Vec<Vec<Lit>> = vec![
        vec![a.positive()],
        vec![a.negative(), b.positive()],
        vec![a.negative(), b.negative()],
    ];
    let proof = refute(2, &clauses, |_| {});
    check_drat(2, &clauses, &proof).expect("root-level refutation must check");
}

#[test]
fn incremental_solving_keeps_proof_valid() {
    // UNSAT reached across several add_clause/solve rounds: the proof must
    // refute the union of everything added.
    let shared = SharedProof::new();
    let mut solver = SatSolver::new(3);
    solver.set_proof_logger(Box::new(shared.clone()));
    let mut all: Vec<Vec<Lit>> = Vec::new();
    let mut add = |s: &mut SatSolver, lits: Vec<Lit>| {
        s.add_clause(lits.iter().copied());
        all.push(lits);
    };
    for (x, y) in [(0, 1), (1, 2), (2, 0)] {
        add(&mut solver, vec![Var::from_index(x).positive(), Var::from_index(y).positive()]);
        add(&mut solver, vec![Var::from_index(x).negative(), Var::from_index(y).negative()]);
    }
    assert!(solver.solve().is_unsat());
    let proof = shared.take();
    check_drat(3, &all, &proof).expect("incremental refutation must check");
}

#[test]
fn sat_outcome_leaves_proof_unrefuting() {
    // On a satisfiable instance the log holds lemmas but no refutation.
    let clauses: Vec<Vec<Lit>> =
        vec![vec![Var::from_index(0).positive(), Var::from_index(1).positive()]];
    let shared = SharedProof::new();
    let mut solver = SatSolver::new(2);
    solver.set_proof_logger(Box::new(shared.clone()));
    for c in &clauses {
        solver.add_clause(c.iter().copied());
    }
    assert!(solver.solve().is_sat());
    assert_eq!(check_drat(2, &clauses, &shared.take()), Err(sbgc_proof::CheckError::NotUnsat));
}

#[test]
fn budget_timeout_proof_is_partial_not_refuting() {
    let (n, clauses) = pigeonhole(7);
    let shared = SharedProof::new();
    let mut solver = SatSolver::new(n);
    solver.set_proof_logger(Box::new(shared.clone()));
    for c in &clauses {
        solver.add_clause(c.iter().copied());
    }
    let out = solver.solve_with_budget(&Budget::unlimited().with_max_conflicts(50));
    assert!(matches!(out, sbgc_sat::SolveOutcome::Unknown));
    assert_eq!(check_drat(n, &clauses, &shared.take()), Err(sbgc_proof::CheckError::NotUnsat));
}

//! Clause-arena compaction: equivalence with the lazy-deletion baseline on
//! a seeded random suite, database invariants, and the bounded-memory
//! guarantee after many `reduce_db` cycles.

use sbgc_formula::{Lit, Var};
use sbgc_sat::{Budget, SatSolver, SolveOutcome};

/// SplitMix64 — deterministic seeds without external dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random 3-CNF instance near the phase transition (ratio ≈ 4.2).
fn random_3cnf(num_vars: usize, num_clauses: usize, seed: u64) -> Vec<Vec<Lit>> {
    let mut rng = SplitMix64(seed);
    let mut clauses = Vec::with_capacity(num_clauses);
    while clauses.len() < num_clauses {
        let mut vars = [0usize; 3];
        vars[0] = rng.below(num_vars as u64) as usize;
        vars[1] = rng.below(num_vars as u64) as usize;
        vars[2] = rng.below(num_vars as u64) as usize;
        if vars[0] == vars[1] || vars[1] == vars[2] || vars[0] == vars[2] {
            continue;
        }
        let clause: Vec<Lit> =
            vars.iter().map(|&v| Var::from_index(v).lit(rng.below(2) == 0)).collect();
        clauses.push(clause);
    }
    clauses
}

fn solve_with(num_vars: usize, clauses: &[Vec<Lit>], compact: bool) -> (SolveOutcome, SatSolver) {
    let mut s = SatSolver::new(num_vars);
    s.set_compaction(compact);
    // A tiny reduction limit so even small instances cycle the database.
    s.set_max_learnts(20.0);
    for c in clauses {
        s.add_clause(c.iter().copied());
    }
    let out = s.solve();
    (out, s)
}

#[test]
fn compaction_equivalence_on_seeded_random_suite() {
    // Compaction rebuilds watch lists in arena order while lazy deletion
    // swap-removes, so search trajectories (and stats) may diverge — the
    // contract is answer equivalence plus model validity.
    let num_vars = 30;
    let num_clauses = 126;
    for seed in 1..=12u64 {
        let clauses = random_3cnf(num_vars, num_clauses, seed);
        let (with, s1) = solve_with(num_vars, &clauses, true);
        let (without, s2) = solve_with(num_vars, &clauses, false);
        s1.check_invariants();
        s2.check_invariants();
        match (&with, &without) {
            (SolveOutcome::Sat(m1), SolveOutcome::Sat(m2)) => {
                for (i, c) in clauses.iter().enumerate() {
                    assert!(c.iter().any(|&l| m1.satisfies(l)), "seed {seed}: clause {i} (on)");
                    assert!(c.iter().any(|&l| m2.satisfies(l)), "seed {seed}: clause {i} (off)");
                }
            }
            (SolveOutcome::Unsat, SolveOutcome::Unsat) => {}
            (a, b) => panic!("seed {seed}: compaction changed the answer: {a:?} vs {b:?}"),
        }
        // Compaction keeps the arena free of tombstones.
        assert_eq!(s1.arena_clauses(), s1.live_clauses(), "seed {seed}");
        assert_eq!(s1.stats().reclaimed, s1.stats().deleted, "seed {seed}");
    }
}

#[test]
fn arena_stays_bounded_over_many_reductions() {
    // PHP(9, 8) is far too hard to finish within the conflict budget, so
    // the solver grinds through ≥ 20 reduce_db cycles; the acceptance
    // criterion is that the arena holds no tombstones afterwards (live
    // count == stored count, all deletions physically reclaimed).
    let holes = 8;
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let mut s = SatSolver::new(pigeons * holes);
    s.set_max_learnts(10.0);
    for p in 0..pigeons {
        s.add_clause((0..holes).map(|h| var(p, h).positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    let out = s.solve_with_budget(&Budget::unlimited().with_max_conflicts(12_000));
    assert!(!out.is_sat(), "PHP must not be SAT");
    let st = s.stats();
    assert!(st.reductions >= 20, "expected >= 20 reduce_db cycles, got {}", st.reductions);
    assert!(st.deleted > 0);
    assert_eq!(st.reclaimed, st.deleted, "every tombstone must be reclaimed");
    assert_eq!(s.arena_clauses(), s.live_clauses(), "arena must hold no tombstones");
    // Live learned clauses stay within 2x the post-reduction live set.
    let live_learned = (st.learned - st.deleted) as usize;
    assert!(
        s.live_clauses() <= s.num_vars() * pigeons + 2 * live_learned + 1,
        "live {} vs learned-live {live_learned}",
        s.live_clauses()
    );
    s.check_invariants();
}

#[test]
fn lazy_deletion_baseline_accumulates_tombstones() {
    // Regression guard for the bug this PR fixes: with compaction off the
    // arena keeps every tombstoned clause.
    let clauses = random_3cnf(30, 126, 3);
    let (_, s) = solve_with(30, &clauses, false);
    if s.stats().deleted > 0 {
        assert!(s.arena_clauses() > s.live_clauses());
        assert_eq!(s.stats().reclaimed, 0);
    }
}

//! Property-based tests on the formula substrate.

use proptest::prelude::*;
use sbgc_formula::{
    parse_opb, Assignment, Clause, Lit, Objective, PbConstraint, PbFormula, TruthValue, Var,
};

fn lit_strategy(num_vars: usize) -> impl Strategy<Value = Lit> {
    (0..num_vars, any::<bool>()).prop_map(|(v, neg)| Var::from_index(v).lit(neg))
}

fn formula_strategy(num_vars: usize) -> impl Strategy<Value = PbFormula> {
    let clause = proptest::collection::vec(lit_strategy(num_vars), 1..4);
    let clauses = proptest::collection::vec(clause, 0..8);
    let term = (1i64..4, lit_strategy(num_vars));
    let pb = (proptest::collection::vec(term, 1..num_vars.max(2)), -3i64..6, any::<bool>());
    let pbs = proptest::collection::vec(pb, 0..4);
    (clauses, pbs).prop_map(move |(clauses, pbs)| {
        let mut f = PbFormula::with_vars(num_vars);
        for c in clauses {
            f.add_clause(c);
        }
        for (terms, bound, ge) in pbs {
            if ge {
                f.add_pb(PbConstraint::at_least(terms, bound));
            } else {
                f.add_pb(PbConstraint::at_most(terms, bound));
            }
        }
        f
    })
}

fn assignment_strategy(num_vars: usize) -> impl Strategy<Value = Assignment> {
    proptest::collection::vec(any::<bool>(), num_vars).prop_map(Assignment::from_bools)
}

proptest! {
    /// Normalization preserves semantics: an at-least constraint holds for
    /// an assignment iff the raw linear inequality does.
    #[test]
    fn pb_normalization_is_semantic(
        terms in proptest::collection::vec((-4i64..5, lit_strategy(6)), 1..6),
        bound in -8i64..10,
        asg in assignment_strategy(6),
    ) {
        let c = PbConstraint::at_least(terms.clone(), bound);
        let raw: i64 = terms
            .iter()
            .map(|&(a, l)| if asg.satisfies(l) { a } else { 0 })
            .sum();
        let expected = raw >= bound;
        prop_assert_eq!(c.eval(&asg) == TruthValue::True, expected);
    }

    /// `at_most` is the exact complement construction.
    #[test]
    fn at_most_is_dual(
        terms in proptest::collection::vec((1i64..5, lit_strategy(5)), 1..5),
        bound in 0i64..10,
        asg in assignment_strategy(5),
    ) {
        let c = PbConstraint::at_most(terms.clone(), bound);
        let raw: i64 = terms
            .iter()
            .map(|&(a, l)| if asg.satisfies(l) { a } else { 0 })
            .sum();
        prop_assert_eq!(c.eval(&asg) == TruthValue::True, raw <= bound);
    }

    /// equal() splits exactly.
    #[test]
    fn equal_is_conjunction(
        terms in proptest::collection::vec((1i64..4, lit_strategy(5)), 1..5),
        bound in 0i64..8,
        asg in assignment_strategy(5),
    ) {
        let (ge, le) = PbConstraint::equal(terms.clone(), bound);
        let raw: i64 = terms
            .iter()
            .map(|&(a, l)| if asg.satisfies(l) { a } else { 0 })
            .sum();
        let both = ge.eval(&asg) == TruthValue::True && le.eval(&asg) == TruthValue::True;
        prop_assert_eq!(both, raw == bound);
    }

    /// OPB serialization round-trips satisfaction on total assignments.
    #[test]
    fn opb_roundtrip_semantics(f in formula_strategy(5), asg in assignment_strategy(5)) {
        let text = f.to_opb();
        let g = parse_opb(&text).expect("own output parses");
        prop_assert_eq!(g.num_vars(), f.num_vars());
        prop_assert_eq!(f.is_satisfied_by(&asg), g.is_satisfied_by(&asg));
    }

    /// Clause evaluation is monotone: extending a partial assignment never
    /// flips True to False or vice versa.
    #[test]
    fn clause_eval_is_monotone(
        lits in proptest::collection::vec(lit_strategy(5), 1..5),
        asg in assignment_strategy(5),
        hide in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let clause: Clause = lits.into_iter().collect();
        let mut partial = asg.clone();
        for (i, &h) in hide.iter().enumerate() {
            if h {
                partial.unassign(Var::from_index(i));
            }
        }
        match clause.eval(&partial) {
            TruthValue::True => prop_assert_eq!(clause.eval(&asg), TruthValue::True),
            TruthValue::False => prop_assert_eq!(clause.eval(&asg), TruthValue::False),
            TruthValue::Unknown => {}
        }
    }

    /// PB evaluation is likewise monotone under extension.
    #[test]
    fn pb_eval_is_monotone(
        terms in proptest::collection::vec((1i64..4, lit_strategy(5)), 1..5),
        bound in 0i64..8,
        asg in assignment_strategy(5),
        hide in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let c = PbConstraint::at_least(terms, bound);
        let mut partial = asg.clone();
        for (i, &h) in hide.iter().enumerate() {
            if h {
                partial.unassign(Var::from_index(i));
            }
        }
        match c.eval(&partial) {
            TruthValue::True => prop_assert_eq!(c.eval(&asg), TruthValue::True),
            TruthValue::False => prop_assert_eq!(c.eval(&asg), TruthValue::False),
            TruthValue::Unknown => {}
        }
    }

    /// Objective lower bound never exceeds the final value.
    #[test]
    fn objective_bound_is_sound(
        terms in proptest::collection::vec((1u64..4, lit_strategy(5)), 1..5),
        asg in assignment_strategy(5),
        hide in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let obj = Objective::minimize(terms);
        let mut partial = asg.clone();
        for (i, &h) in hide.iter().enumerate() {
            if h {
                partial.unassign(Var::from_index(i));
            }
        }
        let total = obj.value(&asg).expect("total");
        prop_assert!(obj.lower_bound(&partial) <= total);
        prop_assert!(total <= obj.max_value());
    }
}

//! Normalized pseudo-Boolean constraints.

use crate::{Assignment, Lit, TruthValue};
use std::fmt;

/// The comparison kind of a pseudo-Boolean constraint as written by a user,
/// before normalization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PbConstraintKind {
    /// `Σ aᵢ·ℓᵢ ≥ b`
    AtLeast,
    /// `Σ aᵢ·ℓᵢ ≤ b`
    AtMost,
    /// `Σ aᵢ·ℓᵢ = b` (expands into two normalized constraints)
    Equal,
}

/// A pseudo-Boolean constraint in normalized *at-least* form:
///
/// ```text
/// a1*l1 + a2*l2 + ... + an*ln >= b,   ai > 0
/// ```
///
/// Following Section 2.3 of the paper, arbitrary linear 0-1 inequalities are
/// brought into this form using `Σ aᵢℓᵢ ≤ b  ⇔  Σ aᵢ¬ℓᵢ ≥ Σaᵢ − b` and
/// literal complementation `x̄ = 1 − x`. Coefficients of the same literal are
/// merged; opposite literals of the same variable are cancelled against the
/// right-hand side; zero coefficients are dropped.
///
/// # Example
///
/// ```
/// use sbgc_formula::{PbConstraint, Var};
/// let x: Vec<_> = (0..3).map(|i| Var::from_index(i).positive()).collect();
/// // x0 + x1 + x2 <= 1  normalizes to  ~x0 + ~x1 + ~x2 >= 2
/// let c = PbConstraint::at_most(x.iter().map(|&l| (1, l)), 1);
/// assert_eq!(c.rhs(), 2);
/// assert!(c.terms().iter().all(|&(a, l)| a == 1 && l.is_negated()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PbConstraint {
    /// `(coefficient, literal)` pairs, coefficients strictly positive,
    /// at most one term per variable, sorted by variable index.
    terms: Vec<(u64, Lit)>,
    /// Right-hand side of the `>=` comparison (after normalization).
    rhs: u64,
}

impl PbConstraint {
    /// Builds `Σ aᵢ·ℓᵢ ≥ b` and normalizes it.
    ///
    /// Negative coefficients are accepted and folded into the literal sign.
    pub fn at_least<I>(terms: I, bound: i64) -> Self
    where
        I: IntoIterator<Item = (i64, Lit)>,
    {
        Self::normalize(terms.into_iter().collect(), bound)
    }

    /// Builds `Σ aᵢ·ℓᵢ ≤ b` and normalizes it (by negating both sides).
    pub fn at_most<I>(terms: I, bound: i64) -> Self
    where
        I: IntoIterator<Item = (i64, Lit)>,
    {
        let negated: Vec<(i64, Lit)> = terms.into_iter().map(|(a, l)| (-a, l)).collect();
        Self::normalize(negated, -bound)
    }

    /// Builds the pair of normalized constraints equivalent to
    /// `Σ aᵢ·ℓᵢ = b`.
    pub fn equal<I>(terms: I, bound: i64) -> (Self, Self)
    where
        I: IntoIterator<Item = (i64, Lit)>,
    {
        let terms: Vec<(i64, Lit)> = terms.into_iter().collect();
        let ge = Self::at_least(terms.iter().copied(), bound);
        let le = Self::at_most(terms, bound);
        (ge, le)
    }

    /// Builds the cardinality constraint `ℓ₁ + … + ℓₙ ≥ b`.
    pub fn cardinality<I>(lits: I, bound: u64) -> Self
    where
        I: IntoIterator<Item = Lit>,
    {
        Self::at_least(
            lits.into_iter().map(|l| (1, l)),
            i64::try_from(bound).expect("cardinality bound exceeds i64"),
        )
    }

    fn normalize(raw: Vec<(i64, Lit)>, mut bound: i64) -> Self {
        use std::collections::BTreeMap;
        // Net coefficient of the *positive* literal per variable.
        let mut net: BTreeMap<u32, i64> = BTreeMap::new();
        for (a, l) in raw {
            if a == 0 {
                continue;
            }
            let v = l.var().index() as u32;
            if l.is_negated() {
                // a * ~x = a * (1 - x) = a - a*x
                bound -= a;
                *net.entry(v).or_insert(0) -= a;
            } else {
                *net.entry(v).or_insert(0) += a;
            }
        }
        let mut terms = Vec::with_capacity(net.len());
        for (v, a) in net {
            let var = crate::Var::from_index(v as usize);
            match a.cmp(&0) {
                std::cmp::Ordering::Greater => terms.push((a as u64, var.positive())),
                std::cmp::Ordering::Less => {
                    // a*x with a<0: rewrite as |a|*~x - |a| on the lhs.
                    bound += -a;
                    terms.push(((-a) as u64, var.negative()));
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        let rhs = if bound <= 0 { 0 } else { bound as u64 };
        // Saturate: a coefficient larger than the bound acts exactly like the
        // bound itself.
        if rhs > 0 {
            for t in &mut terms {
                if t.0 > rhs {
                    t.0 = rhs;
                }
            }
        }
        PbConstraint { terms, rhs }
    }

    /// The `(coefficient, literal)` terms, sorted by variable index.
    pub fn terms(&self) -> &[(u64, Lit)] {
        &self.terms
    }

    /// The normalized right-hand side `b` of `Σ aᵢ·ℓᵢ ≥ b`.
    pub fn rhs(&self) -> u64 {
        self.rhs
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the constraint has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sum of all coefficients.
    pub fn coefficient_sum(&self) -> u64 {
        self.terms.iter().map(|&(a, _)| a).sum()
    }

    /// A constraint is trivially true when even the empty assignment meets
    /// the bound (rhs 0).
    pub fn is_trivially_true(&self) -> bool {
        self.rhs == 0
    }

    /// A constraint is trivially false when all coefficients together cannot
    /// reach the bound.
    pub fn is_trivially_false(&self) -> bool {
        self.coefficient_sum() < self.rhs
    }

    /// Returns `true` if every coefficient is 1 (a cardinality constraint).
    pub fn is_cardinality(&self) -> bool {
        self.terms.iter().all(|&(a, _)| a == 1)
    }

    /// Returns `true` if this constraint is equivalent to a single CNF
    /// clause (cardinality with bound 1).
    pub fn is_clause(&self) -> bool {
        self.rhs == 1 && self.is_cardinality()
    }

    /// Evaluates the constraint under a (possibly partial) assignment.
    ///
    /// Returns `True` as soon as satisfied literals alone reach the bound,
    /// `False` when the unassigned + satisfied literals can no longer reach
    /// it, `Unknown` otherwise.
    pub fn eval(&self, assignment: &Assignment) -> TruthValue {
        let mut satisfied: u64 = 0;
        let mut potential: u64 = 0;
        for &(a, l) in &self.terms {
            match assignment.lit_value(l) {
                TruthValue::True => {
                    satisfied += a;
                    potential += a;
                }
                TruthValue::Unknown => potential += a,
                TruthValue::False => {}
            }
        }
        if satisfied >= self.rhs {
            TruthValue::True
        } else if potential < self.rhs {
            TruthValue::False
        } else {
            TruthValue::Unknown
        }
    }

    /// Returns the slack of the constraint under a partial assignment: the
    /// amount by which the maximum still-achievable left-hand side exceeds
    /// the bound. Negative slack means the constraint is violated.
    pub fn slack(&self, assignment: &Assignment) -> i64 {
        let mut potential: i64 = 0;
        for &(a, l) in &self.terms {
            if assignment.lit_value(l) != TruthValue::False {
                potential += a as i64;
            }
        }
        potential - self.rhs as i64
    }
}

impl fmt::Debug for PbConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pb[{self}]")
    }
}

impl fmt::Display for PbConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (a, l)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *a == 1 {
                write!(f, "{l}")?;
            } else {
                write!(f, "{a}*{l}")?;
            }
        }
        write!(f, " >= {}", self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn x(i: usize) -> Lit {
        Var::from_index(i).positive()
    }

    #[test]
    fn at_least_passthrough() {
        let c = PbConstraint::at_least([(2, x(0)), (3, x(1))], 4);
        assert_eq!(c.terms(), &[(2, x(0)), (3, x(1))]);
        assert_eq!(c.rhs(), 4);
    }

    #[test]
    fn at_most_negates() {
        // x0 + x1 <= 1  ==>  ~x0 + ~x1 >= 1
        let c = PbConstraint::at_most([(1, x(0)), (1, x(1))], 1);
        assert_eq!(c.rhs(), 1);
        assert_eq!(c.terms(), &[(1, !x(0)), (1, !x(1))]);
    }

    #[test]
    fn merges_duplicate_literals() {
        let c = PbConstraint::at_least([(1, x(0)), (2, x(0))], 2);
        assert_eq!(c.terms(), &[(2, x(0))]); // saturated from 3 to rhs=2
        assert_eq!(c.rhs(), 2);
    }

    #[test]
    fn cancels_opposite_literals() {
        // 2*x0 + 1*~x0 >= 2  ==  (x0 + 1) >= 2  ==  x0 >= 1
        let c = PbConstraint::at_least([(2, x(0)), (1, !x(0))], 2);
        assert_eq!(c.terms(), &[(1, x(0))]);
        assert_eq!(c.rhs(), 1);
    }

    #[test]
    fn negative_coefficients_fold_into_sign() {
        // -2*x0 >= -1   ==  2*~x0 >= 1  (after normalization, saturated)
        let c = PbConstraint::at_least([(-2, x(0))], -1);
        assert_eq!(c.rhs(), 1);
        assert_eq!(c.terms(), &[(1, !x(0))]);
    }

    #[test]
    fn equal_yields_two_sides() {
        let (ge, le) = PbConstraint::equal([(1, x(0)), (1, x(1))], 1);
        assert_eq!(ge.rhs(), 1);
        assert_eq!(le.rhs(), 1); // ~x0 + ~x1 >= 1
        assert!(le.terms().iter().all(|&(_, l)| l.is_negated()));
    }

    #[test]
    fn trivial_detection() {
        assert!(PbConstraint::at_least([(1, x(0))], 0).is_trivially_true());
        assert!(PbConstraint::at_least([(1, x(0))], 2).is_trivially_false());
    }

    #[test]
    fn clause_detection() {
        assert!(PbConstraint::cardinality([x(0), x(1)], 1).is_clause());
        assert!(!PbConstraint::cardinality([x(0), x(1)], 2).is_clause());
        // Note: with bound 1 saturation would reduce the coefficient 2 to 1,
        // making it a genuine clause, so test with bound 2.
        assert!(!PbConstraint::at_least([(2, x(0)), (1, x(1)), (1, x(2))], 2).is_clause());
    }

    #[test]
    fn eval_three_valued() {
        let c = PbConstraint::at_least([(2, x(0)), (1, x(1)), (1, x(2))], 3);
        let mut asg = Assignment::new(3);
        assert_eq!(c.eval(&asg), TruthValue::Unknown);
        asg.assign(x(0).var(), true);
        asg.assign(x(1).var(), true);
        assert_eq!(c.eval(&asg), TruthValue::True);
        let mut asg2 = Assignment::new(3);
        asg2.assign(x(0).var(), false);
        // max achievable = 2 < 3
        assert_eq!(c.eval(&asg2), TruthValue::False);
    }

    #[test]
    fn slack_tracks_violation() {
        let c = PbConstraint::at_least([(2, x(0)), (1, x(1))], 2);
        let mut asg = Assignment::new(2);
        assert_eq!(c.slack(&asg), 1);
        asg.assign(x(0).var(), false);
        assert_eq!(c.slack(&asg), -1);
    }
}

//! Boolean variables and literals.

use std::fmt;

/// A Boolean variable, identified by a dense 0-based index.
///
/// Variables are created by [`PbFormula::new_var`](crate::PbFormula::new_var)
/// (or directly via [`Var::from_index`] when interfacing with external
/// formats). The `Display` form is the 1-based DIMACS/OPB convention `x1`,
/// `x2`, ...
///
/// # Example
///
/// ```
/// use sbgc_formula::Var;
/// let v = Var::from_index(4);
/// assert_eq!(v.index(), 4);
/// assert_eq!(v.to_string(), "x5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense 0-based index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index exceeds u32"))
    }

    /// Returns the dense 0-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, false)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the literal of this variable with the given sign.
    ///
    /// `negated == false` yields the positive literal.
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit::new(self, negated)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
///
/// Internally packed as `var_index << 1 | negated`, which makes literals
/// directly usable as dense array indices (see [`Lit::code`]).
///
/// # Example
///
/// ```
/// use sbgc_formula::{Lit, Var};
/// let v = Var::from_index(0);
/// let p = v.positive();
/// assert_eq!(!p, v.negative());
/// assert!(!p.is_negated());
/// assert_eq!((!p).to_string(), "~x1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Self {
        Lit(var.0 << 1 | u32::from(negated))
    }

    /// Reconstructs a literal from its packed code (see [`Lit::code`]).
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(u32::try_from(code).expect("literal code exceeds u32"))
    }

    /// Returns the packed code `var_index * 2 + negated`, a dense index
    /// suitable for watch lists and occurrence tables.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is the negation of its variable.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the value this literal takes when its variable is assigned
    /// `value`.
    #[inline]
    pub fn apply(self, value: bool) -> bool {
        value != self.is_negated()
    }

    /// Parses the 1-based signed-integer DIMACS convention: `3` is the
    /// positive literal of the third variable, `-3` its negation.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literal must be non-zero");
        let var = Var::from_index(dimacs.unsigned_abs() as usize - 1);
        var.lit(dimacs < 0)
    }

    /// Returns the 1-based signed-integer DIMACS form of this literal.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_negated() {
            -v
        } else {
            v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(var: Var) -> Lit {
        var.positive()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({}{})", if self.is_negated() { "~" } else { "" }, self.var().index())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "~{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        let v = Var::from_index(17);
        assert_eq!(v.index(), 17);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
    }

    #[test]
    fn literal_negation_is_involution() {
        let l = Var::from_index(3).positive();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert!((!l).is_negated());
    }

    #[test]
    fn literal_codes_are_dense() {
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert_eq!(v0.positive().code(), 0);
        assert_eq!(v0.negative().code(), 1);
        assert_eq!(v1.positive().code(), 2);
        assert_eq!(v1.negative().code(), 3);
        assert_eq!(Lit::from_code(3), v1.negative());
    }

    #[test]
    fn apply_respects_sign() {
        let v = Var::from_index(0);
        assert!(v.positive().apply(true));
        assert!(!v.positive().apply(false));
        assert!(!v.negative().apply(true));
        assert!(v.negative().apply(false));
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [1i64, -1, 5, -42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(0);
        assert_eq!(v.positive().to_string(), "x1");
        assert_eq!(v.negative().to_string(), "~x1");
    }
}

//! CNF clauses.

use crate::{Assignment, Lit, TruthValue};
use std::fmt;

/// A CNF clause: a disjunction of literals.
///
/// Clauses preserve the literal order they were built with (the encoders in
/// `sbgc-core` rely on deterministic output); use [`Clause::normalize`] to
/// obtain a sorted, duplicate-free copy for comparison.
///
/// # Example
///
/// ```
/// use sbgc_formula::{Clause, Var};
/// let a = Var::from_index(0).positive();
/// let b = Var::from_index(1).negative();
/// let c = Clause::from_iter([a, b]);
/// assert_eq!(c.len(), 2);
/// assert!(c.contains(b));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates an empty (unsatisfiable) clause.
    pub fn new() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a unit clause.
    pub fn unit(lit: Lit) -> Self {
        Clause { lits: vec![lit] }
    }

    /// Creates a binary clause.
    pub fn binary(a: Lit, b: Lit) -> Self {
        Clause { lits: vec![a, b] }
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the clause has no literals (i.e. is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns the literals as a slice.
    pub fn literals(&self) -> &[Lit] {
        &self.lits
    }

    /// Adds a literal to the end of the clause.
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Returns `true` if the clause contains `lit` (exact sign match).
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Returns a sorted, duplicate-free copy of this clause.
    pub fn normalize(&self) -> Clause {
        let mut lits = self.lits.clone();
        lits.sort_unstable();
        lits.dedup();
        Clause { lits }
    }

    /// Returns `true` if the clause contains both a literal and its negation
    /// and is therefore trivially satisfied.
    pub fn is_tautology(&self) -> bool {
        let n = self.normalize();
        n.lits.windows(2).any(|w| w[0].var() == w[1].var())
    }

    /// Evaluates the clause under a (possibly partial) assignment.
    ///
    /// Returns [`TruthValue::True`] if some literal is satisfied,
    /// [`TruthValue::False`] if all literals are falsified, and
    /// [`TruthValue::Unknown`] otherwise.
    pub fn eval(&self, assignment: &Assignment) -> TruthValue {
        let mut unknown = false;
        for &lit in &self.lits {
            match assignment.lit_value(lit) {
                TruthValue::True => return TruthValue::True,
                TruthValue::Unknown => unknown = true,
                TruthValue::False => {}
            }
        }
        if unknown {
            TruthValue::Unknown
        } else {
            TruthValue::False
        }
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause { lits: iter.into_iter().collect() }
    }
}

impl Extend<Lit> for Clause {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Clause[")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "(empty)");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lits() -> (Lit, Lit, Lit) {
        (
            Var::from_index(0).positive(),
            Var::from_index(1).positive(),
            Var::from_index(2).negative(),
        )
    }

    #[test]
    fn construction_and_access() {
        let (a, b, c) = lits();
        let cl = Clause::from_iter([a, b, c]);
        assert_eq!(cl.len(), 3);
        assert!(cl.contains(c));
        assert!(!cl.contains(!c));
        assert!(!cl.is_empty());
        assert!(Clause::new().is_empty());
    }

    #[test]
    fn tautology_detection() {
        let (a, b, _) = lits();
        assert!(Clause::from_iter([a, !a]).is_tautology());
        assert!(!Clause::from_iter([a, b]).is_tautology());
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let (a, b, _) = lits();
        let cl = Clause::from_iter([b, a, b]);
        let n = cl.normalize();
        assert_eq!(n.literals(), &[a, b]);
    }

    #[test]
    fn eval_partial_and_total() {
        let (a, b, _) = lits();
        let cl = Clause::binary(a, b);
        let mut asg = Assignment::new(2);
        assert_eq!(cl.eval(&asg), TruthValue::Unknown);
        asg.assign(a.var(), false);
        assert_eq!(cl.eval(&asg), TruthValue::Unknown);
        asg.assign(b.var(), false);
        assert_eq!(cl.eval(&asg), TruthValue::False);
        asg.assign(b.var(), true);
        assert_eq!(cl.eval(&asg), TruthValue::True);
    }

    #[test]
    fn empty_clause_is_false() {
        let asg = Assignment::new(0);
        assert_eq!(Clause::new().eval(&asg), TruthValue::False);
    }
}

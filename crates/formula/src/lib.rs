//! CNF and pseudo-Boolean (0-1 ILP) formula representation.
//!
//! This crate provides the shared logical substrate for the `sbgc` workspace:
//! Boolean [`Var`]iables and [`Lit`]erals, CNF [`Clause`]s, normalized
//! [`PbConstraint`]s (linear 0-1 inequalities), optimization objectives, and
//! the mixed container [`PbFormula`] that the graph-coloring encoder produces
//! and the solvers in `sbgc-sat` / `sbgc-pb` consume.
//!
//! The representation follows the paper's conventions (Ramani, Aloul, Markov
//! & Sakallah, *Breaking Instance-Independent Symmetries in Exact Graph
//! Coloring*): a formula may freely mix CNF clauses with pseudo-Boolean
//! constraints, and may carry a linear minimization objective.
//!
//! # Normalized form
//!
//! Every [`PbConstraint`] is stored in the normalized *at-least* form
//!
//! ```text
//! a1*l1 + a2*l2 + ... + an*ln >= b        (ai > 0, li literals)
//! ```
//!
//! mirroring the normalization described in Section 2.3 of the paper (there
//! written as `<=`; the two are interchangeable through literal negation).
//! Constructors are provided for `>=`, `<=` and `=` comparisons and perform
//! the normalization automatically.
//!
//! # Example
//!
//! ```
//! use sbgc_formula::{PbFormula, PbConstraint, Lit};
//!
//! let mut f = PbFormula::new();
//! let x: Vec<Lit> = (0..3).map(|_| f.new_var().positive()).collect();
//! // exactly one of x0, x1, x2
//! f.add_exactly_one(&x);
//! // a plain clause: x0 or x2
//! f.add_clause([x[0], x[2]]);
//! assert_eq!(f.num_vars(), 3);
//! assert_eq!(f.stats().clauses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod clause;
mod formula;
mod lit;
mod objective;
mod opb;
mod pb;

pub use assignment::{Assignment, TruthValue};
pub use clause::Clause;
pub use formula::{FormulaStats, PbFormula};
pub use lit::{Lit, Var};
pub use objective::Objective;
pub use opb::{parse_dimacs_cnf, parse_opb, ParseOpbError};
pub use pb::{PbConstraint, PbConstraintKind};

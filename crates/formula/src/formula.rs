//! The mixed CNF + pseudo-Boolean formula container.

use crate::{Assignment, Clause, Lit, Objective, PbConstraint, TruthValue, Var};
use std::fmt;

/// Size statistics of a [`PbFormula`], mirroring the columns of Table 2 in
/// the paper (#variables, #CNF clauses, #PB constraints).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FormulaStats {
    /// Number of Boolean variables.
    pub vars: usize,
    /// Number of CNF clauses.
    pub clauses: usize,
    /// Number of pseudo-Boolean constraints.
    pb: usize,
    /// Total number of literal occurrences across clauses and PB terms.
    pub literal_occurrences: usize,
}

impl FormulaStats {
    /// Number of pseudo-Boolean constraints.
    pub fn pb_constraints(&self) -> usize {
        self.pb
    }
}

/// A 0-1 ILP problem: CNF clauses + pseudo-Boolean constraints + an optional
/// linear minimization objective.
///
/// This is the object produced by the coloring encoder in `sbgc-core` and
/// consumed by the solvers in `sbgc-pb` (or, when it is pure CNF, by
/// `sbgc-sat`).
///
/// # Example
///
/// ```
/// use sbgc_formula::{PbFormula, Objective};
/// let mut f = PbFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause([a, b]);
/// f.add_at_most_one(&[a, b]);
/// f.set_objective(Objective::minimize([(1, a)]));
/// assert!(f.objective().is_some());
/// ```
#[derive(Clone, Default)]
pub struct PbFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
    pb_constraints: Vec<PbConstraint>,
    objective: Option<Objective>,
}

impl PbFormula {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty formula with `num_vars` pre-allocated variables.
    pub fn with_vars(num_vars: usize) -> Self {
        PbFormula { num_vars, ..Self::default() }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns them.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The CNF clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// The pseudo-Boolean constraints.
    pub fn pb_constraints(&self) -> &[PbConstraint] {
        &self.pb_constraints
    }

    /// The objective, if any.
    pub fn objective(&self) -> Option<&Objective> {
        self.objective.as_ref()
    }

    /// Sets (replacing) the minimization objective.
    pub fn set_objective(&mut self, objective: Objective) {
        self.grow_for_lits(objective.terms().iter().map(|&(_, l)| l));
        self.objective = Some(objective);
    }

    /// Removes the objective, turning the problem into a pure decision
    /// problem.
    pub fn clear_objective(&mut self) -> Option<Objective> {
        self.objective.take()
    }

    /// Adds a CNF clause. Accepts anything convertible into a [`Clause`]
    /// (e.g. an array or `Vec` of literals).
    pub fn add_clause(&mut self, clause: impl IntoIterator<Item = Lit>) {
        let clause: Clause = clause.into_iter().collect();
        self.grow_for_lits(clause.iter().copied());
        self.clauses.push(clause);
    }

    /// Adds a unit clause fixing `lit` to true.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Adds the implication `a ⇒ b` as the clause `(¬a ∨ b)`.
    pub fn add_implication(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
    }

    /// Adds a pseudo-Boolean constraint.
    pub fn add_pb(&mut self, constraint: PbConstraint) {
        self.grow_for_lits(constraint.terms().iter().map(|&(_, l)| l));
        self.pb_constraints.push(constraint);
    }

    /// Adds `Σ ℓᵢ = 1` (exactly-one), as a single PB equality pair — the
    /// form the paper's encoder uses per vertex.
    pub fn add_exactly_one(&mut self, lits: &[Lit]) {
        let (ge, le) = PbConstraint::equal(lits.iter().map(|&l| (1, l)), 1);
        self.add_pb(ge);
        self.add_pb(le);
    }

    /// Adds `Σ ℓᵢ ≤ 1` (at-most-one) as a single PB constraint.
    pub fn add_at_most_one(&mut self, lits: &[Lit]) {
        self.add_pb(PbConstraint::at_most(lits.iter().map(|&l| (1, l)), 1));
    }

    /// Returns `true` when the formula has no PB constraints (and can be
    /// handed to a pure CNF SAT solver).
    pub fn is_pure_cnf(&self) -> bool {
        self.pb_constraints.is_empty()
    }

    /// Size statistics (Table 2 columns).
    pub fn stats(&self) -> FormulaStats {
        FormulaStats {
            vars: self.num_vars,
            clauses: self.clauses.len(),
            pb: self.pb_constraints.len(),
            literal_occurrences: self.clauses.iter().map(Clause::len).sum::<usize>()
                + self.pb_constraints.iter().map(PbConstraint::len).sum::<usize>(),
        }
    }

    /// Evaluates the conjunction of all constraints under a (possibly
    /// partial) assignment.
    pub fn eval(&self, assignment: &Assignment) -> TruthValue {
        let mut unknown = false;
        for c in &self.clauses {
            match c.eval(assignment) {
                TruthValue::False => return TruthValue::False,
                TruthValue::Unknown => unknown = true,
                TruthValue::True => {}
            }
        }
        for p in &self.pb_constraints {
            match p.eval(assignment) {
                TruthValue::False => return TruthValue::False,
                TruthValue::Unknown => unknown = true,
                TruthValue::True => {}
            }
        }
        if unknown {
            TruthValue::Unknown
        } else {
            TruthValue::True
        }
    }

    /// Returns `true` if the total assignment satisfies every constraint.
    ///
    /// # Panics
    ///
    /// Panics if the assignment covers fewer variables than the formula.
    pub fn is_satisfied_by(&self, assignment: &Assignment) -> bool {
        assert!(
            assignment.num_vars() >= self.num_vars,
            "assignment covers {} vars, formula has {}",
            assignment.num_vars(),
            self.num_vars
        );
        self.eval(assignment) == TruthValue::True
    }

    /// Appends all constraints (and variables) of `other` into `self`,
    /// keeping variable identities. Both formulas must have been built
    /// against the same variable numbering.
    pub fn absorb(&mut self, other: PbFormula) {
        self.num_vars = self.num_vars.max(other.num_vars);
        self.clauses.extend(other.clauses);
        self.pb_constraints.extend(other.pb_constraints);
        if let Some(obj) = other.objective {
            self.objective = Some(obj);
        }
    }

    fn grow_for_lits(&mut self, lits: impl IntoIterator<Item = Lit>) {
        for l in lits {
            let need = l.var().index() + 1;
            if need > self.num_vars {
                self.num_vars = need;
            }
        }
    }
}

impl fmt::Debug for PbFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PbFormula(vars={}, clauses={}, pb={}, objective={})",
            s.vars,
            s.clauses,
            s.pb_constraints(),
            self.objective.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_allocation() {
        let mut f = PbFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn clause_addition_grows_vars() {
        let mut f = PbFormula::new();
        f.add_clause([Var::from_index(9).positive()]);
        assert_eq!(f.num_vars(), 10);
    }

    #[test]
    fn exactly_one_semantics() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_exactly_one(&lits);
        let good = Assignment::from_bools([false, true, false]);
        assert!(f.is_satisfied_by(&good));
        let none = Assignment::from_bools([false, false, false]);
        assert!(!f.is_satisfied_by(&none));
        let two = Assignment::from_bools([true, true, false]);
        assert!(!f.is_satisfied_by(&two));
    }

    #[test]
    fn implication_semantics() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_implication(a, b);
        assert!(f.is_satisfied_by(&Assignment::from_bools([false, false])));
        assert!(f.is_satisfied_by(&Assignment::from_bools([true, true])));
        assert!(!f.is_satisfied_by(&Assignment::from_bools([true, false])));
    }

    #[test]
    fn stats_count_everything() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause(lits.clone());
        f.add_at_most_one(&lits);
        let s = f.stats();
        assert_eq!(s.vars, 3);
        assert_eq!(s.clauses, 1);
        assert_eq!(s.pb_constraints(), 1);
        assert_eq!(s.literal_occurrences, 6);
    }

    #[test]
    fn absorb_merges() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        let mut g = PbFormula::with_vars(1);
        let b = Var::from_index(1).positive();
        g.add_clause([b]);
        f.absorb(g);
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.clauses().len(), 2);
    }

    #[test]
    fn eval_partial() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, b]);
        let asg = Assignment::new(2);
        assert_eq!(f.eval(&asg), TruthValue::Unknown);
    }
}

//! Partial and total truth assignments.

use crate::{Lit, Var};
use std::fmt;

/// Three-valued truth: the value of a variable or literal under a partial
/// assignment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TruthValue {
    /// Assigned false.
    False,
    /// Assigned true.
    True,
    /// Not yet assigned.
    Unknown,
}

impl TruthValue {
    /// Converts a concrete `bool`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            TruthValue::True
        } else {
            TruthValue::False
        }
    }

    /// Returns the `bool` value, or `None` if unknown.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            TruthValue::True => Some(true),
            TruthValue::False => Some(false),
            TruthValue::Unknown => None,
        }
    }

    /// Logical negation; `Unknown` stays `Unknown`.
    pub fn negate(self) -> Self {
        match self {
            TruthValue::True => TruthValue::False,
            TruthValue::False => TruthValue::True,
            TruthValue::Unknown => TruthValue::Unknown,
        }
    }
}

/// A (partial) assignment of truth values to a fixed block of variables.
///
/// # Example
///
/// ```
/// use sbgc_formula::{Assignment, TruthValue, Var};
/// let mut a = Assignment::new(2);
/// let v = Var::from_index(0);
/// assert_eq!(a.value(v), TruthValue::Unknown);
/// a.assign(v, true);
/// assert_eq!(a.lit_value(v.negative()), TruthValue::False);
/// assert!(!a.is_total());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<TruthValue>,
}

impl Assignment {
    /// Creates an all-unknown assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Assignment { values: vec![TruthValue::Unknown; num_vars] }
    }

    /// Creates a total assignment from a vector of `bool`s.
    pub fn from_bools(values: impl IntoIterator<Item = bool>) -> Self {
        Assignment { values: values.into_iter().map(TruthValue::from_bool).collect() }
    }

    /// Number of variables covered.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the assignment covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: Var) -> TruthValue {
        self.values[var.index()]
    }

    /// The value of a literal (variable value adjusted for sign).
    pub fn lit_value(&self, lit: Lit) -> TruthValue {
        let v = self.value(lit.var());
        if lit.is_negated() {
            v.negate()
        } else {
            v
        }
    }

    /// Returns `true` if the literal is assigned and satisfied.
    pub fn satisfies(&self, lit: Lit) -> bool {
        self.lit_value(lit) == TruthValue::True
    }

    /// Assigns `value` to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn assign(&mut self, var: Var, value: bool) {
        self.values[var.index()] = TruthValue::from_bool(value);
    }

    /// Clears the value of `var` back to unknown.
    pub fn unassign(&mut self, var: Var) {
        self.values[var.index()] = TruthValue::Unknown;
    }

    /// Returns `true` when every variable has a concrete value.
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|v| *v != TruthValue::Unknown)
    }

    /// Number of assigned variables.
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|v| **v != TruthValue::Unknown).count()
    }

    /// Iterates over `(Var, bool)` pairs of assigned variables.
    pub fn iter_assigned(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| (Var::from_index(i), b)))
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assignment[")?;
        for v in &self.values {
            let c = match v {
                TruthValue::True => '1',
                TruthValue::False => '0',
                TruthValue::Unknown => '?',
            };
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_lifecycle() {
        let mut a = Assignment::new(3);
        let v = Var::from_index(1);
        assert_eq!(a.value(v), TruthValue::Unknown);
        a.assign(v, false);
        assert_eq!(a.value(v), TruthValue::False);
        assert_eq!(a.lit_value(v.negative()), TruthValue::True);
        assert_eq!(a.num_assigned(), 1);
        a.unassign(v);
        assert_eq!(a.value(v), TruthValue::Unknown);
        assert_eq!(a.num_assigned(), 0);
    }

    #[test]
    fn total_from_bools() {
        let a = Assignment::from_bools([true, false]);
        assert!(a.is_total());
        assert!(a.satisfies(Var::from_index(0).positive()));
        assert!(a.satisfies(Var::from_index(1).negative()));
        let pairs: Vec<_> = a.iter_assigned().collect();
        assert_eq!(pairs, vec![(Var::from_index(0), true), (Var::from_index(1), false)]);
    }

    #[test]
    fn truth_value_negation() {
        assert_eq!(TruthValue::True.negate(), TruthValue::False);
        assert_eq!(TruthValue::Unknown.negate(), TruthValue::Unknown);
        assert_eq!(TruthValue::from_bool(true).to_bool(), Some(true));
        assert_eq!(TruthValue::Unknown.to_bool(), None);
    }
}

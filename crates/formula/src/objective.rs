//! Linear minimization objectives.

use crate::{Assignment, Lit, TruthValue};
use std::fmt;

/// A linear minimization objective `MIN Σ cᵢ·ℓᵢ` with positive integer
/// coefficients, as used by the paper's 0-1 ILP formulation
/// (`MIN Σ yᵢ` over the color-usage indicators).
///
/// # Example
///
/// ```
/// use sbgc_formula::{Objective, Var, Assignment};
/// let y0 = Var::from_index(0).positive();
/// let y1 = Var::from_index(1).positive();
/// let obj = Objective::minimize([(1, y0), (1, y1)]);
/// let a = Assignment::from_bools([true, false]);
/// assert_eq!(obj.value(&a), Some(1));
/// assert_eq!(obj.max_value(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Objective {
    terms: Vec<(u64, Lit)>,
}

impl Objective {
    /// Builds a minimization objective from `(coefficient, literal)` terms.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is zero.
    pub fn minimize<I>(terms: I) -> Self
    where
        I: IntoIterator<Item = (u64, Lit)>,
    {
        let terms: Vec<(u64, Lit)> = terms.into_iter().collect();
        assert!(terms.iter().all(|&(c, _)| c > 0), "objective coefficients must be positive");
        Objective { terms }
    }

    /// The `(coefficient, literal)` terms.
    pub fn terms(&self) -> &[(u64, Lit)] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the objective has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Largest possible objective value (all literals true).
    pub fn max_value(&self) -> u64 {
        self.terms.iter().map(|&(c, _)| c).sum()
    }

    /// Evaluates the objective; `None` if any involved variable is
    /// unassigned.
    pub fn value(&self, assignment: &Assignment) -> Option<u64> {
        let mut total = 0;
        for &(c, l) in &self.terms {
            match assignment.lit_value(l) {
                TruthValue::True => total += c,
                TruthValue::False => {}
                TruthValue::Unknown => return None,
            }
        }
        Some(total)
    }

    /// Lower bound of the objective under a partial assignment (counting
    /// only terms already forced true).
    pub fn lower_bound(&self, assignment: &Assignment) -> u64 {
        self.terms
            .iter()
            .filter(|&&(_, l)| assignment.lit_value(l) == TruthValue::True)
            .map(|&(c, _)| c)
            .sum()
    }
}

impl fmt::Debug for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Objective[{self}]")
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MIN ")?;
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, l)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c == 1 {
                write!(f, "{l}")?;
            } else {
                write!(f, "{c}*{l}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn value_and_bounds() {
        let l0 = Var::from_index(0).positive();
        let l1 = Var::from_index(1).positive();
        let obj = Objective::minimize([(2, l0), (3, l1)]);
        assert_eq!(obj.max_value(), 5);
        let mut a = Assignment::new(2);
        assert_eq!(obj.value(&a), None);
        assert_eq!(obj.lower_bound(&a), 0);
        a.assign(l0.var(), true);
        assert_eq!(obj.lower_bound(&a), 2);
        a.assign(l1.var(), false);
        assert_eq!(obj.value(&a), Some(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_coefficient_rejected() {
        let _ = Objective::minimize([(0, Var::from_index(0).positive())]);
    }
}

//! OPB (pseudo-Boolean competition format) and DIMACS CNF serialization.
//!
//! The OPB dialect written here is the one accepted by PBS-class solvers:
//! an optional `min:` objective line, followed by one constraint per line,
//! `<coeff> <lit> ... >= <rhs> ;` with literals written `x3` / `~x3`.
//! CNF clauses are emitted as cardinality-1 constraints. A matching parser
//! is provided so formulas round-trip.

use crate::{Lit, Objective, PbConstraint, PbFormula, Var};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

impl PbFormula {
    /// Serializes the formula in OPB format.
    ///
    /// # Example
    ///
    /// ```
    /// use sbgc_formula::PbFormula;
    /// let mut f = PbFormula::new();
    /// let a = f.new_var().positive();
    /// f.add_unit(a);
    /// let text = f.to_opb();
    /// assert!(text.contains("+1 x1 >= 1 ;"));
    /// ```
    pub fn to_opb(&self) -> String {
        let stats = self.stats();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "* #variable= {} #constraint= {}",
            stats.vars,
            stats.clauses + stats.pb_constraints()
        );
        if let Some(obj) = self.objective() {
            out.push_str("min:");
            for &(c, l) in obj.terms() {
                let _ = write!(out, " +{c} {}", opb_lit(l));
            }
            out.push_str(" ;\n");
        }
        for clause in self.clauses() {
            for &l in clause.literals() {
                let _ = write!(out, "+1 {} ", opb_lit(l));
            }
            out.push_str(">= 1 ;\n");
        }
        for pb in self.pb_constraints() {
            for &(a, l) in pb.terms() {
                let _ = write!(out, "+{a} {} ", opb_lit(l));
            }
            let _ = writeln!(out, ">= {} ;", pb.rhs());
        }
        out
    }

    /// Serializes the formula in DIMACS CNF format.
    ///
    /// # Errors
    ///
    /// Returns an error string if the formula contains PB constraints or an
    /// objective (which DIMACS CNF cannot express).
    pub fn to_dimacs_cnf(&self) -> Result<String, String> {
        if !self.is_pure_cnf() {
            return Err("formula has PB constraints; DIMACS CNF cannot express them".into());
        }
        if self.objective().is_some() {
            return Err("formula has an objective; DIMACS CNF cannot express it".into());
        }
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars(), self.clauses().len());
        for clause in self.clauses() {
            for &l in clause.literals() {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            out.push_str("0\n");
        }
        Ok(out)
    }
}

fn opb_lit(l: Lit) -> String {
    if l.is_negated() {
        format!("~x{}", l.var().index() + 1)
    } else {
        format!("x{}", l.var().index() + 1)
    }
}

/// Largest variable count a parsed header may declare. Declared counts
/// size downstream solver arrays, so an absurd header (`p cnf 99999999999
/// 1`) must be a parse error rather than an out-of-memory abort. 10⁸ is
/// two orders of magnitude above the largest DIMACS coloring benchmarks
/// and comfortably inside the `u32` variable index space.
pub const MAX_DECLARED_VARS: usize = 100_000_000;

/// Parses a DIMACS CNF document into a (pure-CNF) formula.
///
/// # Errors
///
/// Returns a [`ParseOpbError`]-style message with the offending line on
/// malformed input (missing/duplicate `p cnf` line, literals out of range,
/// clause not terminated by `0`).
///
/// # Example
///
/// ```
/// let f = sbgc_formula::parse_dimacs_cnf("p cnf 2 1\n1 -2 0\n")?;
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.clauses().len(), 1);
/// # Ok::<(), sbgc_formula::ParseOpbError>(())
/// ```
pub fn parse_dimacs_cnf(text: &str) -> Result<PbFormula, ParseOpbError> {
    let mut formula: Option<PbFormula> = None;
    let mut declared_vars = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if formula.is_some() {
                return Err(ParseOpbError::new(lineno, "duplicate problem line"));
            }
            let mut tok = rest.split_whitespace();
            if tok.next() != Some("cnf") {
                return Err(ParseOpbError::new(lineno, "expected `p cnf`"));
            }
            declared_vars = tok
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseOpbError::new(lineno, "bad variable count"))?;
            if declared_vars > MAX_DECLARED_VARS {
                return Err(ParseOpbError::new(
                    lineno,
                    format!("declared variable count {declared_vars} exceeds {MAX_DECLARED_VARS}"),
                ));
            }
            formula = Some(PbFormula::with_vars(declared_vars));
            continue;
        }
        let f = formula
            .as_mut()
            .ok_or_else(|| ParseOpbError::new(lineno, "clause before problem line"))?;
        for tok in line.split_whitespace() {
            let d: i64 = tok
                .parse()
                .map_err(|_| ParseOpbError::new(lineno, format!("bad literal `{tok}`")))?;
            if d == 0 {
                f.add_clause(current.drain(..));
            } else {
                if d.unsigned_abs() as usize > declared_vars {
                    return Err(ParseOpbError::new(
                        lineno,
                        format!("literal {d} exceeds declared variable count"),
                    ));
                }
                current.push(Lit::from_dimacs(d));
            }
        }
    }
    let mut f = formula.ok_or_else(|| ParseOpbError::new(0, "missing problem line"))?;
    if !current.is_empty() {
        f.add_clause(current);
    }
    Ok(f)
}

/// Error produced by [`parse_opb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpbError {
    line: usize,
    message: String,
}

impl ParseOpbError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseOpbError { line, message: message.into() }
    }

    /// 1-based line number of the offending input line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseOpbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OPB parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseOpbError {}

/// Parses an OPB document produced by [`PbFormula::to_opb`] (or any
/// conforming writer using `>=`, `<=` or `=` comparisons).
///
/// # Errors
///
/// Returns a [`ParseOpbError`] carrying the offending line number on
/// malformed input.
pub fn parse_opb(text: &str) -> Result<PbFormula, ParseOpbError> {
    let mut formula = PbFormula::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') {
            // Honor the standard `* #variable= N ...` header so formulas
            // with trailing unconstrained variables round-trip.
            if let Some(rest) = line.strip_prefix("* #variable=") {
                if let Some(n) =
                    rest.split_whitespace().next().and_then(|t| t.parse::<usize>().ok())
                {
                    if n > MAX_DECLARED_VARS {
                        return Err(ParseOpbError::new(
                            lineno,
                            format!("declared variable count {n} exceeds {MAX_DECLARED_VARS}"),
                        ));
                    }
                    if n > formula.num_vars() {
                        let grow = n - formula.num_vars();
                        let _ = formula.new_vars(grow);
                    }
                }
            }
            continue;
        }
        let line = line.strip_suffix(';').unwrap_or(line).trim();
        if let Some(rest) = line.strip_prefix("min:") {
            let terms = parse_terms(rest, lineno)?;
            formula.set_objective(Objective::minimize(
                terms.into_iter().map(|(c, l)| (c.unsigned_abs(), l)),
            ));
            continue;
        }
        // Split at the comparison operator.
        let (op, op_str) = if line.contains(">=") {
            (">=", ">=")
        } else if line.contains("<=") {
            ("<=", "<=")
        } else if line.contains('=') {
            ("=", "=")
        } else {
            return Err(ParseOpbError::new(lineno, "missing comparison operator"));
        };
        let mut parts = line.splitn(2, op_str);
        let lhs = parts.next().unwrap_or("");
        let rhs_str = parts
            .next()
            .ok_or_else(|| ParseOpbError::new(lineno, "missing right-hand side"))?
            .trim();
        let rhs: i64 = rhs_str
            .parse()
            .map_err(|_| ParseOpbError::new(lineno, format!("bad rhs `{rhs_str}`")))?;
        let terms = parse_terms(lhs, lineno)?;
        match op {
            ">=" => formula.add_pb(PbConstraint::at_least(terms, rhs)),
            "<=" => formula.add_pb(PbConstraint::at_most(terms, rhs)),
            _ => {
                let (ge, le) = PbConstraint::equal(terms, rhs);
                formula.add_pb(ge);
                formula.add_pb(le);
            }
        }
    }
    Ok(formula)
}

fn parse_terms(text: &str, lineno: usize) -> Result<Vec<(i64, Lit)>, ParseOpbError> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if !tokens.len().is_multiple_of(2) {
        return Err(ParseOpbError::new(lineno, "odd number of tokens in linear term list"));
    }
    let mut terms = Vec::with_capacity(tokens.len() / 2);
    for pair in tokens.chunks(2) {
        let coeff: i64 = pair[0]
            .parse()
            .map_err(|_| ParseOpbError::new(lineno, format!("bad coefficient `{}`", pair[0])))?;
        let lit = parse_lit(pair[1])
            .ok_or_else(|| ParseOpbError::new(lineno, format!("bad literal `{}`", pair[1])))?;
        terms.push((coeff, lit));
    }
    Ok(terms)
}

fn parse_lit(token: &str) -> Option<Lit> {
    let (negated, rest) = match token.strip_prefix('~') {
        Some(r) => (true, r),
        None => (false, token),
    };
    let idx: usize = rest.strip_prefix('x')?.parse().ok()?;
    // `Var::from_index` panics past the u32 index space; a hostile token
    // like `x99999999999` must be a parse error, not a crash.
    if idx == 0 || idx > MAX_DECLARED_VARS {
        return None;
    }
    Some(Var::from_index(idx - 1).lit(negated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    #[test]
    fn opb_roundtrip_preserves_semantics() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause(lits.clone());
        f.add_exactly_one(&lits);
        f.set_objective(Objective::minimize([(1, lits[0]), (2, lits[1])]));
        let text = f.to_opb();
        let g = parse_opb(&text).expect("roundtrip parse");
        assert_eq!(g.num_vars(), 3);
        // Same satisfying set on all 8 assignments.
        for bits in 0..8u32 {
            let asg = Assignment::from_bools((0..3).map(|i| bits >> i & 1 == 1));
            assert_eq!(f.is_satisfied_by(&asg), g.is_satisfied_by(&asg), "bits={bits:03b}");
        }
        let o = g.objective().expect("objective survived");
        assert_eq!(o.terms().len(), 2);
    }

    #[test]
    fn dimacs_cnf_output() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, !b]);
        let text = f.to_dimacs_cnf().expect("pure CNF");
        assert!(text.starts_with("p cnf 2 1"));
        assert!(text.contains("1 -2 0"));
    }

    #[test]
    fn dimacs_cnf_rejects_pb() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(2).into_iter().map(Var::positive).collect();
        f.add_at_most_one(&lits);
        assert!(f.to_dimacs_cnf().is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_opb("+1 x1 >= banana ;").unwrap_err();
        assert_eq!(err.line(), 1);
        let err = parse_opb("* comment\n+1 y9 >= 1 ;").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn dimacs_cnf_roundtrip() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, !b]);
        f.add_clause([b]);
        let text = f.to_dimacs_cnf().expect("pure CNF");
        let g = parse_dimacs_cnf(&text).expect("roundtrip");
        assert_eq!(g.num_vars(), 2);
        assert_eq!(g.clauses().len(), 2);
        for bits in 0..4u32 {
            let asg = Assignment::from_bools((0..2).map(|i| bits >> i & 1 == 1));
            assert_eq!(f.is_satisfied_by(&asg), g.is_satisfied_by(&asg));
        }
    }

    #[test]
    fn dimacs_cnf_parser_errors() {
        assert!(parse_dimacs_cnf("1 2 0\n").is_err()); // clause before p
        assert!(parse_dimacs_cnf("p cnf 1 1\n5 0\n").is_err()); // out of range
        assert!(parse_dimacs_cnf("p sat 2 1\n").is_err()); // wrong format
        assert!(parse_dimacs_cnf("c nothing\n").is_err()); // missing p line
    }

    #[test]
    fn dimacs_cnf_multiline_clause_and_trailing() {
        let f = parse_dimacs_cnf("p cnf 3 2\n1 2\n3 0 -1\n").expect("parse");
        // First clause spans lines (1 2 3 0); trailing unterminated (-1).
        assert_eq!(f.clauses().len(), 2);
        assert_eq!(f.clauses()[0].len(), 3);
        assert_eq!(f.clauses()[1].len(), 1);
    }

    #[test]
    fn hostile_inputs_error_instead_of_crashing() {
        // A literal index past the u32 variable space must not panic.
        let err = parse_opb("+1 x99999999999 >= 1 ;").unwrap_err();
        assert_eq!(err.line(), 1);
        // Absurd declared counts must not trigger giant allocations.
        assert!(parse_opb("* #variable= 99999999999 #constraint= 1\n").is_err());
        assert!(parse_dimacs_cnf("p cnf 99999999999 1\n").is_err());
        // A sane header still grows the formula.
        let f = parse_opb("* #variable= 7 #constraint= 0\n").expect("parse");
        assert_eq!(f.num_vars(), 7);
    }

    #[test]
    fn undeclared_constraint_vars_grow_the_formula() {
        // No header at all: the formula must still cover every literal a
        // constraint mentions, or downstream solvers index out of range.
        let f = parse_opb("+1 x5 +1 ~x2 >= 1 ;").expect("parse");
        assert_eq!(f.num_vars(), 5);
    }

    #[test]
    fn parses_le_and_eq() {
        let f = parse_opb("+1 x1 +1 x2 <= 1 ;\n+1 x1 +1 x2 = 1 ;").expect("parse");
        assert_eq!(f.pb_constraints().len(), 3); // <= is 1, = is 2
    }
}

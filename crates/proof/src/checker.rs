//! An independent forward RUP/DRAT proof checker.
//!
//! [`check_drat`] replays a [`DratProof`] against the original clause list
//! with its own watched-literal unit propagation — deliberately sharing no
//! code with the solvers in `sbgc-sat`/`sbgc-pb`, so a bug there cannot
//! silently vouch for itself here.
//!
//! The checker follows forward drat-trim semantics: root-level assignments
//! are persistent (a unit stays derived even if the clause that produced it
//! is later deleted), each added clause must be RUP — assuming its negation
//! and propagating must yield a conflict — with a RAT fallback on the first
//! literal, and the proof is accepted once the database is refuted at the
//! root (the empty clause, or a unit addition whose propagation conflicts).

use crate::drat::{DratProof, ProofStep};
use sbgc_formula::Lit;
use std::collections::HashMap;

/// Statistics of a successful [`check_drat`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Total proof steps examined (additions + deletions).
    pub steps: usize,
    /// Addition steps verified.
    pub adds: usize,
    /// Deletion steps applied.
    pub deletes: usize,
    /// Literals assigned during checking (root and temporary).
    pub propagations: u64,
}

/// Why a proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// An added clause at `step` (0-based) is neither RUP nor RAT.
    NotRup {
        /// Index of the offending proof step.
        step: usize,
    },
    /// A deletion at `step` names a clause not present in the database.
    MissingDeletion {
        /// Index of the offending proof step.
        step: usize,
    },
    /// A literal at `step` references a variable outside the formula.
    /// `step` is `None` when the literal is in the formula itself.
    OutOfRangeLit {
        /// Index of the offending proof step, if any.
        step: Option<usize>,
    },
    /// The proof ran out of steps without refuting the formula.
    NotUnsat,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotRup { step } => {
                write!(f, "proof step {step}: added clause is neither RUP nor RAT")
            }
            CheckError::MissingDeletion { step } => {
                write!(f, "proof step {step}: deleted clause not in database")
            }
            CheckError::OutOfRangeLit { step: Some(step) } => {
                write!(f, "proof step {step}: literal out of range")
            }
            CheckError::OutOfRangeLit { step: None } => {
                write!(f, "formula literal out of range")
            }
            CheckError::NotUnsat => write!(f, "proof ends without refuting the formula"),
        }
    }
}

impl std::error::Error for CheckError {}

const UNDEF: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

struct CheckedClause {
    /// Literal order is internal: positions 0 and 1 are the watched
    /// literals of attached clauses.
    lits: Vec<Lit>,
    active: bool,
    /// Root-satisfied and unit clauses are never attached to watch lists;
    /// their effect is already frozen into the persistent root trail.
    attached: bool,
}

struct Checker {
    clauses: Vec<CheckedClause>,
    /// `watches[l.code()]` lists clauses watching literal `l`.
    watches: Vec<Vec<usize>>,
    values: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Normalized literal set → indices of active database clauses, for
    /// deletion matching regardless of literal order.
    by_key: HashMap<Vec<Lit>, Vec<usize>>,
    refuted: bool,
    propagations: u64,
}

fn clause_key(lits: &[Lit]) -> Vec<Lit> {
    let mut key = lits.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

impl Checker {
    fn new(num_vars: usize) -> Self {
        Checker {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            values: vec![UNDEF; num_vars],
            trail: Vec::new(),
            qhead: 0,
            by_key: HashMap::new(),
            refuted: false,
            propagations: 0,
        }
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.values[l.var().index()];
        if l.is_negated() {
            -v
        } else {
            v
        }
    }

    #[inline]
    fn assign(&mut self, l: Lit) {
        debug_assert_eq!(self.lit_value(l), UNDEF);
        self.values[l.var().index()] = if l.is_negated() { FALSE } else { TRUE };
        self.trail.push(l);
        self.propagations += 1;
    }

    /// Unit propagation to fixpoint; `true` means a conflict was found.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                if !self.clauses[ci].active {
                    ws.swap_remove(i);
                    continue;
                }
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let other = self.clauses[ci].lits[0];
                if self.lit_value(other) == TRUE {
                    i += 1;
                    continue;
                }
                // Find a replacement watch among the tail literals.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != FALSE {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.code()].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                if self.lit_value(other) == FALSE {
                    self.watches[false_lit.code()] = ws;
                    return true; // conflict
                }
                self.assign(other);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        false
    }

    /// Inserts a clause into the database, assuming it was already
    /// verified (or comes from the original formula). Root-unit and
    /// root-falsified clauses are folded into the persistent trail.
    fn insert(&mut self, lits: &[Lit]) {
        let ci = self.clauses.len();
        self.by_key.entry(clause_key(lits)).or_default().push(ci);
        let mut stored = CheckedClause { lits: lits.to_vec(), active: true, attached: false };
        if self.refuted {
            self.clauses.push(stored);
            return;
        }
        // Partition: move (up to two) non-false literals to the front.
        let mut free = 0usize;
        let mut satisfied = false;
        for k in 0..stored.lits.len() {
            match self.lit_value(stored.lits[k]) {
                TRUE => satisfied = true,
                UNDEF => {
                    stored.lits.swap(free, k);
                    free += 1;
                }
                _ => {}
            }
        }
        if satisfied {
            // Root assignments are persistent, so this clause can never
            // become unit; no watches needed.
            self.clauses.push(stored);
            return;
        }
        match free {
            0 => {
                self.refuted = true;
                self.clauses.push(stored);
            }
            1 => {
                let unit = stored.lits[0];
                self.clauses.push(stored);
                self.assign(unit);
                if self.propagate() {
                    self.refuted = true;
                }
            }
            _ => {
                self.watches[stored.lits[0].code()].push(ci);
                self.watches[stored.lits[1].code()].push(ci);
                stored.attached = true;
                self.clauses.push(stored);
            }
        }
    }

    /// RUP check: assume the negation of every literal of `lits`,
    /// propagate, and demand a conflict. The temporary assignments are
    /// rolled back; the persistent root trail is untouched.
    fn is_rup(&mut self, lits: &[Lit]) -> bool {
        if self.refuted {
            return true;
        }
        debug_assert_eq!(self.qhead, self.trail.len());
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in lits {
            match self.lit_value(l) {
                // A root-satisfied clause is a trivial consequence.
                TRUE => {
                    conflict = true;
                    break;
                }
                FALSE => {}
                _ => self.assign(!l),
            }
        }
        if !conflict {
            conflict = self.propagate();
        }
        for i in (mark..self.trail.len()).rev() {
            self.values[self.trail[i].var().index()] = UNDEF;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
        conflict
    }

    /// RAT check on the first literal of `lits`: every resolvent with an
    /// active database clause containing the negated pivot must be RUP.
    fn is_rat(&mut self, lits: &[Lit]) -> bool {
        let Some(&pivot) = lits.first() else {
            return false;
        };
        for ci in 0..self.clauses.len() {
            if !self.clauses[ci].active || !self.clauses[ci].lits.contains(&!pivot) {
                continue;
            }
            let mut resolvent: Vec<Lit> = lits.iter().copied().filter(|&l| l != pivot).collect();
            let mut tautology = false;
            for k in 0..self.clauses[ci].lits.len() {
                let q = self.clauses[ci].lits[k];
                if q == !pivot {
                    continue;
                }
                if resolvent.contains(&!q) {
                    tautology = true;
                    break;
                }
                resolvent.push(q);
            }
            if !tautology && !self.is_rup(&resolvent) {
                return false;
            }
        }
        true
    }

    /// Deletes one database clause with the given literal set; `false` if
    /// none matches.
    fn delete(&mut self, lits: &[Lit]) -> bool {
        let key = clause_key(lits);
        let Some(indices) = self.by_key.get_mut(&key) else {
            return false;
        };
        let Some(ci) = indices.pop() else {
            return false;
        };
        if indices.is_empty() {
            self.by_key.remove(&key);
        }
        // Watch lists drop the index lazily during propagation.
        self.clauses[ci].active = false;
        true
    }
}

/// Checks a DRAT refutation of the clause list `formula` over variables
/// `0..num_vars`.
///
/// Returns [`CheckStats`] when the proof is accepted — every addition is
/// RUP (or RAT on its first literal) with respect to the formula plus the
/// surviving earlier additions, every deletion names a present clause, and
/// the final database is refuted by unit propagation.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered; in particular
/// [`CheckError::NotUnsat`] when the (possibly valid) derivation never
/// reaches a refutation — e.g. a proof for a different formula.
///
/// # Example
///
/// ```
/// use sbgc_formula::Var;
/// use sbgc_proof::{check_drat, DratProof};
///
/// let a = Var::from_index(0).positive();
/// let b = Var::from_index(1).positive();
/// let formula = vec![vec![a, b], vec![!a, b], vec![a, !b], vec![!a, !b]];
/// let mut proof = DratProof::new();
/// proof.push_add(&[b]);
/// proof.push_add(&[]);
/// assert!(check_drat(2, &formula, &proof).is_ok());
/// ```
pub fn check_drat(
    num_vars: usize,
    formula: &[Vec<Lit>],
    proof: &DratProof,
) -> Result<CheckStats, CheckError> {
    for clause in formula {
        if clause.iter().any(|l| l.var().index() >= num_vars) {
            return Err(CheckError::OutOfRangeLit { step: None });
        }
    }
    let mut ck = Checker::new(num_vars);
    for clause in formula {
        ck.insert(clause);
        if ck.refuted {
            break;
        }
    }
    let mut stats = CheckStats::default();
    for (step, s) in proof.steps().iter().enumerate() {
        if ck.refuted {
            break;
        }
        stats.steps += 1;
        match s {
            ProofStep::Add(lits) => {
                if lits.iter().any(|l| l.var().index() >= num_vars) {
                    return Err(CheckError::OutOfRangeLit { step: Some(step) });
                }
                stats.adds += 1;
                if !ck.is_rup(lits) && !ck.is_rat(lits) {
                    return Err(CheckError::NotRup { step });
                }
                ck.insert(lits);
            }
            ProofStep::Delete(lits) => {
                stats.deletes += 1;
                if !ck.delete(lits) {
                    return Err(CheckError::MissingDeletion { step });
                }
            }
        }
    }
    if !ck.refuted {
        return Err(CheckError::NotUnsat);
    }
    stats.propagations = ck.propagations;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::Var;

    fn lit(i: usize, neg: bool) -> Lit {
        Var::from_index(i).lit(neg)
    }

    fn l(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    /// (a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b): minimal UNSAT square.
    fn square() -> Vec<Vec<Lit>> {
        vec![vec![l(1), l(2)], vec![l(-1), l(2)], vec![l(1), l(-2)], vec![l(-1), l(-2)]]
    }

    #[test]
    fn accepts_unit_then_empty() {
        let mut proof = DratProof::new();
        proof.push_add(&[l(2)]);
        proof.push_add(&[]);
        let stats = check_drat(2, &square(), &proof).unwrap();
        assert_eq!(stats.adds, 1, "refuted before the empty clause is reached");
    }

    #[test]
    fn accepts_refutation_without_explicit_empty_clause() {
        let mut proof = DratProof::new();
        proof.push_add(&[l(2)]);
        assert!(check_drat(2, &square(), &proof).is_ok());
    }

    #[test]
    fn rejects_non_rup_addition() {
        // Over (¬a∨b)(¬a∨c), the unit [a] is not RUP (assuming ¬a yields no
        // conflict) and not RAT either: the resolvent [b] with (¬a∨b) has
        // no propagation support.
        let formula = vec![vec![l(-1), l(2)], vec![l(-1), l(3)]];
        let mut proof = DratProof::new();
        proof.push_add(&[l(1)]);
        proof.push_add(&[]);
        assert_eq!(check_drat(3, &formula, &proof), Err(CheckError::NotRup { step: 0 }));
    }

    #[test]
    fn rejects_corrupted_lemma() {
        // Over (¬a∨b)(¬a∨c)(d∨e), the corrupted lemma [a, ¬d] is neither
        // RUP (assuming ¬a, d propagates nothing) nor RAT on pivot a (the
        // resolvent [¬d, b] with (¬a∨b) is not RUP).
        let formula = vec![vec![l(-1), l(2)], vec![l(-1), l(3)], vec![l(4), l(5)]];
        let mut proof = DratProof::new();
        proof.push_add(&[l(1), l(-4)]);
        proof.push_add(&[]);
        assert_eq!(check_drat(5, &formula, &proof), Err(CheckError::NotRup { step: 0 }));
    }

    #[test]
    fn rejects_truncated_proof() {
        let proof = DratProof::new();
        assert_eq!(check_drat(2, &square(), &proof), Err(CheckError::NotUnsat));
    }

    #[test]
    fn rejects_missing_deletion() {
        let mut proof = DratProof::new();
        proof.push_delete(&[l(1), l(2), l(-3)]);
        assert_eq!(check_drat(3, &square(), &proof), Err(CheckError::MissingDeletion { step: 0 }));
    }

    #[test]
    fn deletion_matches_any_literal_order() {
        // The clause is stored as [1, 2]; deleting [2, 1] must match it
        // (failure mode would be MissingDeletion, not NotUnsat).
        let mut proof = DratProof::new();
        proof.push_delete(&[l(2), l(1)]);
        assert_eq!(check_drat(2, &square(), &proof), Err(CheckError::NotUnsat));
    }

    #[test]
    fn deleted_clause_no_longer_supports_rup() {
        // After deleting (a∨b), the unit [b] loses its RUP support:
        // assuming ¬b propagates a (from a∨¬b)... which conflicts with
        // ¬a∨¬b? No: ¬a∨¬b needs b true. Check the exact chain: ¬b makes
        // (a∨¬b) satisfied; remaining constraints (¬a∨b)→¬a, and nothing
        // conflicts. So [b] must be rejected.
        let mut proof = DratProof::new();
        proof.push_delete(&[l(1), l(2)]);
        proof.push_add(&[l(2)]);
        proof.push_add(&[]);
        assert_eq!(check_drat(2, &square(), &proof), Err(CheckError::NotRup { step: 1 }));
    }

    #[test]
    fn rejects_proof_for_permuted_formula() {
        // A valid refutation of PHP-style pairwise constraints does not
        // refute the (satisfiable) formula with one clause sign-flipped.
        let mut satisfiable = square();
        satisfiable[3] = vec![l(1), l(-2)]; // duplicate, leaves (1, ¬2) open
        let mut proof = DratProof::new();
        proof.push_add(&[l(2)]);
        proof.push_add(&[]);
        let err = check_drat(2, &satisfiable, &proof).unwrap_err();
        assert!(matches!(err, CheckError::NotRup { .. } | CheckError::NotUnsat), "{err:?}");
    }

    #[test]
    fn out_of_range_literals_rejected() {
        let mut proof = DratProof::new();
        proof.push_add(&[lit(7, false)]);
        assert_eq!(
            check_drat(2, &square(), &proof),
            Err(CheckError::OutOfRangeLit { step: Some(0) })
        );
        assert_eq!(
            check_drat(1, &square(), &DratProof::new()),
            Err(CheckError::OutOfRangeLit { step: None })
        );
    }

    #[test]
    fn formula_with_root_conflict_is_refuted_without_proof() {
        let formula = vec![vec![l(1)], vec![l(-1)]];
        assert!(check_drat(1, &formula, &DratProof::new()).is_ok());
    }

    #[test]
    fn empty_formula_is_not_refutable() {
        let proof = DratProof::new();
        assert_eq!(check_drat(1, &[], &proof), Err(CheckError::NotUnsat));
    }

    #[test]
    fn rat_addition_accepted() {
        // [a] over (a∨b) is not RUP (assuming ¬a yields no conflict) but is
        // vacuously RAT on pivot a: no clause contains ¬a. The formula stays
        // satisfiable, so the final error must be NotUnsat — proving the
        // RAT addition itself passed.
        let formula = vec![vec![l(1), l(2)]];
        let mut proof = DratProof::new();
        proof.push_add(&[l(1)]);
        assert_eq!(check_drat(2, &formula, &proof), Err(CheckError::NotUnsat));
    }
}

//! DRAT proof logging and independent proof checking.
//!
//! The paper's symmetry-breaking predicates must not change satisfiability;
//! this crate provides the machinery to *verify* that claim per run instead
//! of trusting the solvers. It has two halves that deliberately share no
//! code:
//!
//! * [`DratProof`] / [`ProofLogger`] — a small logging interface the CDCL
//!   engines in `sbgc-sat` and `sbgc-pb` emit DRAT steps through (learned
//!   clause additions from 1UIP analysis, deletions from database
//!   reduction), either into memory ([`SharedProof`]) or streamed to a
//!   file ([`FileProofLogger`]).
//! * [`check_drat`] — a forward RUP/DRAT checker with its own
//!   watched-literal propagation that replays a proof against the original
//!   clause list and accepts only genuine refutations.
//!
//! `sbgc-core` combines both into optimality certificates: a verified
//! k-coloring at χ plus a checked UNSAT proof at χ−1.
//!
//! # Example
//!
//! ```
//! use sbgc_formula::Var;
//! use sbgc_proof::{check_drat, DratProof};
//!
//! // (a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b) is UNSAT; derive [b], then the conflict.
//! let a = Var::from_index(0).positive();
//! let b = Var::from_index(1).positive();
//! let formula = vec![vec![a, b], vec![!a, b], vec![a, !b], vec![!a, !b]];
//!
//! let mut proof = DratProof::new();
//! proof.push_add(&[b]);
//! proof.push_add(&[]);
//! let stats = check_drat(2, &formula, &proof).expect("valid refutation");
//! assert!(stats.adds >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod drat;

pub use checker::{check_drat, CheckError, CheckStats};
pub use drat::{
    dimacs_cnf, AddsOnlyProofLogger, DratProof, FileProofLogger, ProofErrorFlag, ProofLogger,
    ProofStep, SharedProof, TeeProofLogger,
};

//! DRAT proof representation and logging sinks.
//!
//! A DRAT proof is a sequence of clause *additions* (each a RUP or RAT
//! consequence of the formula plus the earlier additions) and clause
//! *deletions*, ending — for a refutation — in the empty clause. Solvers
//! emit steps through the [`ProofLogger`] trait; the independent checker in
//! [`crate::checker`] replays them against the original formula.

use sbgc_formula::Lit;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One step of a DRAT proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Addition of a clause derived by the solver (learned clause,
    /// root-simplified clause, or the final empty clause).
    Add(Vec<Lit>),
    /// Deletion of a clause no longer needed (database reduction).
    Delete(Vec<Lit>),
}

/// An in-memory DRAT proof: the ordered list of additions and deletions a
/// solver emitted while refuting a formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DratProof {
    steps: Vec<ProofStep>,
}

impl DratProof {
    /// Creates an empty proof.
    pub fn new() -> Self {
        DratProof::default()
    }

    /// Appends a clause addition.
    pub fn push_add(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Add(lits.to_vec()));
    }

    /// Appends a clause deletion.
    pub fn push_delete(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.to_vec()));
    }

    /// The recorded steps, in emission order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Total number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of addition steps.
    pub fn num_adds(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, ProofStep::Add(_))).count()
    }

    /// Number of deletion steps.
    pub fn num_deletes(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, ProofStep::Delete(_))).count()
    }

    /// Total literal count across all steps — the proof-size metric of the
    /// run reports.
    pub fn total_literals(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                ProofStep::Add(lits) | ProofStep::Delete(lits) => lits.len(),
            })
            .sum()
    }

    /// Renders the proof in the standard textual DRAT format: one step per
    /// line, `d`-prefixed deletions, 1-based signed literals, `0`
    /// terminators.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let lits = match step {
                ProofStep::Add(lits) => lits,
                ProofStep::Delete(lits) => {
                    out.push_str("d ");
                    lits
                }
            };
            for l in lits {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses the textual DRAT format produced by [`DratProof::to_dimacs`]
    /// (comment lines starting with `c` are skipped).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input
    /// (non-integer token, missing `0` terminator, or a `0` literal).
    pub fn from_dimacs(text: &str) -> Result<Self, String> {
        let mut proof = DratProof::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            let (delete, rest) = match line.strip_prefix('d') {
                Some(rest) => (true, rest),
                None => (false, line),
            };
            let mut lits = Vec::new();
            let mut terminated = false;
            for tok in rest.split_whitespace() {
                let n: i64 =
                    tok.parse().map_err(|_| format!("line {}: bad literal {tok:?}", lineno + 1))?;
                if n == 0 {
                    terminated = true;
                    break;
                }
                lits.push(Lit::from_dimacs(n));
            }
            if !terminated {
                return Err(format!("line {}: missing 0 terminator", lineno + 1));
            }
            proof.steps.push(if delete { ProofStep::Delete(lits) } else { ProofStep::Add(lits) });
        }
        Ok(proof)
    }
}

/// Sink for DRAT steps emitted by a solver.
///
/// Implementations must be `Send`: portfolio workers carry their solvers
/// (and thus any attached logger) across threads.
pub trait ProofLogger: Send {
    /// Records the addition of a derived clause.
    fn log_add(&mut self, lits: &[Lit]);
    /// Records the deletion of a clause.
    fn log_delete(&mut self, lits: &[Lit]);
}

impl ProofLogger for DratProof {
    fn log_add(&mut self, lits: &[Lit]) {
        self.push_add(lits);
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        self.push_delete(lits);
    }
}

/// A cloneable handle to an in-memory proof, for retrieving the steps after
/// the solver (which owns its logger as a `Box<dyn ProofLogger>`) is done.
///
/// # Example
///
/// ```
/// use sbgc_proof::{ProofLogger, SharedProof};
/// use sbgc_formula::Var;
///
/// let shared = SharedProof::new();
/// let mut sink: Box<dyn ProofLogger> = Box::new(shared.clone());
/// sink.log_add(&[Var::from_index(0).positive()]);
/// assert_eq!(shared.take().num_adds(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharedProof {
    inner: Arc<Mutex<DratProof>>,
}

impl SharedProof {
    /// Creates a handle to a fresh empty proof.
    pub fn new() -> Self {
        SharedProof::default()
    }

    /// Takes the accumulated proof, leaving the shared buffer empty.
    pub fn take(&self) -> DratProof {
        std::mem::take(&mut self.inner.lock().expect("proof mutex poisoned"))
    }

    /// Copies the accumulated proof without clearing it.
    pub fn snapshot(&self) -> DratProof {
        self.inner.lock().expect("proof mutex poisoned").clone()
    }
}

impl ProofLogger for SharedProof {
    fn log_add(&mut self, lits: &[Lit]) {
        self.inner.lock().expect("proof mutex poisoned").push_add(lits);
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        self.inner.lock().expect("proof mutex poisoned").push_delete(lits);
    }
}

/// A file-backed logger streaming textual DRAT to any writer; pair with
/// [`DratProof::from_dimacs`] to re-load.
pub struct FileProofLogger<W: Write + Send> {
    out: W,
}

impl FileProofLogger<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a buffered logger writing
    /// textual DRAT to it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(FileProofLogger { out: BufWriter::new(File::create(path)?) })
    }
}

impl<W: Write + Send> FileProofLogger<W> {
    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn new(out: W) -> Self {
        FileProofLogger { out }
    }

    /// Unwraps the underlying writer (flushing it first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn write_step(&mut self, prefix: &str, lits: &[Lit]) {
        let mut line = String::with_capacity(prefix.len() + 6 * lits.len() + 2);
        line.push_str(prefix);
        for l in lits {
            let _ = write!(line, "{} ", l.to_dimacs());
        }
        line.push_str("0\n");
        // Proof logging is advisory; an I/O error degrades to a truncated
        // proof that the checker will reject rather than aborting the solve.
        let _ = self.out.write_all(line.as_bytes());
    }
}

impl<W: Write + Send> ProofLogger for FileProofLogger<W> {
    fn log_add(&mut self, lits: &[Lit]) {
        self.write_step("", lits);
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        self.write_step("d ", lits);
    }
}

/// Renders a clause list in DIMACS CNF format (for dumping certified
/// formulas next to their `.drat` proofs).
pub fn dimacs_cnf(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = format!("p cnf {} {}\n", num_vars, clauses.len());
    for clause in clauses {
        for l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::Var;

    fn lit(i: usize, neg: bool) -> Lit {
        Var::from_index(i).lit(neg)
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut proof = DratProof::new();
        proof.push_add(&[lit(0, false), lit(1, true)]);
        proof.push_delete(&[lit(1, true), lit(2, false)]);
        proof.push_add(&[]);
        let text = proof.to_dimacs();
        assert_eq!(text, "1 -2 0\nd -2 3 0\n0\n");
        assert_eq!(DratProof::from_dimacs(&text).unwrap(), proof);
    }

    #[test]
    fn from_dimacs_rejects_garbage() {
        assert!(DratProof::from_dimacs("1 x 0\n").is_err());
        assert!(DratProof::from_dimacs("1 2\n").is_err());
    }

    #[test]
    fn from_dimacs_skips_comments() {
        let proof = DratProof::from_dimacs("c hello\n1 0\n").unwrap();
        assert_eq!(proof.steps(), &[ProofStep::Add(vec![lit(0, false)])]);
    }

    #[test]
    fn size_metrics() {
        let mut proof = DratProof::new();
        proof.push_add(&[lit(0, false), lit(1, false)]);
        proof.push_delete(&[lit(0, false)]);
        proof.push_add(&[]);
        assert_eq!(proof.num_adds(), 2);
        assert_eq!(proof.num_deletes(), 1);
        assert_eq!(proof.total_literals(), 3);
        assert_eq!(proof.len(), 3);
        assert!(!proof.is_empty());
    }

    #[test]
    fn file_logger_matches_memory_format() {
        let mut logger = FileProofLogger::new(Vec::new());
        logger.log_add(&[lit(0, false), lit(1, true)]);
        logger.log_delete(&[lit(1, true)]);
        let bytes = logger.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let parsed = DratProof::from_dimacs(&text).unwrap();
        assert_eq!(parsed.num_adds(), 1);
        assert_eq!(parsed.num_deletes(), 1);
    }

    #[test]
    fn shared_proof_take_resets() {
        let shared = SharedProof::new();
        let mut h = shared.clone();
        h.log_add(&[lit(0, false)]);
        assert_eq!(shared.snapshot().num_adds(), 1);
        assert_eq!(shared.take().num_adds(), 1);
        assert!(shared.take().is_empty());
    }

    #[test]
    fn dimacs_cnf_header() {
        let cnf = dimacs_cnf(3, &[vec![lit(0, false), lit(2, true)], vec![lit(1, false)]]);
        assert_eq!(cnf, "p cnf 3 2\n1 -3 0\n2 0\n");
    }
}

//! DRAT proof representation and logging sinks.
//!
//! A DRAT proof is a sequence of clause *additions* (each a RUP or RAT
//! consequence of the formula plus the earlier additions) and clause
//! *deletions*, ending — for a refutation — in the empty clause. Solvers
//! emit steps through the [`ProofLogger`] trait; the independent checker in
//! [`crate::checker`] replays them against the original formula.

use sbgc_formula::Lit;
use sbgc_obs::FaultPlan;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// One step of a DRAT proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Addition of a clause derived by the solver (learned clause,
    /// root-simplified clause, or the final empty clause).
    Add(Vec<Lit>),
    /// Deletion of a clause no longer needed (database reduction).
    Delete(Vec<Lit>),
}

/// An in-memory DRAT proof: the ordered list of additions and deletions a
/// solver emitted while refuting a formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DratProof {
    steps: Vec<ProofStep>,
}

impl DratProof {
    /// Creates an empty proof.
    pub fn new() -> Self {
        DratProof::default()
    }

    /// Appends a clause addition.
    pub fn push_add(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Add(lits.to_vec()));
    }

    /// Appends a clause deletion.
    pub fn push_delete(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.to_vec()));
    }

    /// The recorded steps, in emission order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Total number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of addition steps.
    pub fn num_adds(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, ProofStep::Add(_))).count()
    }

    /// Number of deletion steps.
    pub fn num_deletes(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, ProofStep::Delete(_))).count()
    }

    /// Total literal count across all steps — the proof-size metric of the
    /// run reports.
    pub fn total_literals(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                ProofStep::Add(lits) | ProofStep::Delete(lits) => lits.len(),
            })
            .sum()
    }

    /// Renders the proof in the standard textual DRAT format: one step per
    /// line, `d`-prefixed deletions, 1-based signed literals, `0`
    /// terminators.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let lits = match step {
                ProofStep::Add(lits) => lits,
                ProofStep::Delete(lits) => {
                    out.push_str("d ");
                    lits
                }
            };
            for l in lits {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses the textual DRAT format produced by [`DratProof::to_dimacs`]
    /// (comment lines starting with `c` are skipped).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input
    /// (non-integer token, missing `0` terminator, or a `0` literal).
    pub fn from_dimacs(text: &str) -> Result<Self, String> {
        let mut proof = DratProof::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            let (delete, rest) = match line.strip_prefix('d') {
                Some(rest) => (true, rest),
                None => (false, line),
            };
            let mut lits = Vec::new();
            let mut terminated = false;
            for tok in rest.split_whitespace() {
                let n: i64 =
                    tok.parse().map_err(|_| format!("line {}: bad literal {tok:?}", lineno + 1))?;
                if n == 0 {
                    terminated = true;
                    break;
                }
                lits.push(Lit::from_dimacs(n));
            }
            if !terminated {
                return Err(format!("line {}: missing 0 terminator", lineno + 1));
            }
            proof.steps.push(if delete { ProofStep::Delete(lits) } else { ProofStep::Add(lits) });
        }
        Ok(proof)
    }
}

/// Sink for DRAT steps emitted by a solver.
///
/// Implementations must be `Send`: portfolio workers carry their solvers
/// (and thus any attached logger) across threads.
pub trait ProofLogger: Send {
    /// Records the addition of a derived clause.
    fn log_add(&mut self, lits: &[Lit]);
    /// Records the deletion of a clause.
    fn log_delete(&mut self, lits: &[Lit]);
}

impl ProofLogger for DratProof {
    fn log_add(&mut self, lits: &[Lit]) {
        self.push_add(lits);
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        self.push_delete(lits);
    }
}

/// A cloneable handle to an in-memory proof, for retrieving the steps after
/// the solver (which owns its logger as a `Box<dyn ProofLogger>`) is done.
///
/// # Example
///
/// ```
/// use sbgc_proof::{ProofLogger, SharedProof};
/// use sbgc_formula::Var;
///
/// let shared = SharedProof::new();
/// let mut sink: Box<dyn ProofLogger> = Box::new(shared.clone());
/// sink.log_add(&[Var::from_index(0).positive()]);
/// assert_eq!(shared.take().num_adds(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharedProof {
    inner: Arc<Mutex<DratProof>>,
}

impl SharedProof {
    /// Creates a handle to a fresh empty proof.
    pub fn new() -> Self {
        SharedProof::default()
    }

    /// Takes the accumulated proof, leaving the shared buffer empty.
    ///
    /// Poison-tolerant: if a solver thread panicked while holding the
    /// lock, the steps logged so far are still recovered (a partial proof
    /// that the checker will honestly reject, rather than a second panic).
    pub fn take(&self) -> DratProof {
        std::mem::take(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Copies the accumulated proof without clearing it.
    pub fn snapshot(&self) -> DratProof {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

impl ProofLogger for SharedProof {
    fn log_add(&mut self, lits: &[Lit]) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).push_add(lits);
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).push_delete(lits);
    }
}

/// A cloneable, thread-safe record of the first I/O failure a
/// [`FileProofLogger`] hit.
///
/// The logger is moved into the solver as a `Box<dyn ProofLogger>`, so the
/// caller keeps this handle to find out — after the solve — whether the
/// streamed proof file is complete. A set flag means the on-disk proof is
/// truncated and certification must degrade to `Unchecked` instead of
/// presenting the file as checkable.
#[derive(Clone, Debug, Default)]
pub struct ProofErrorFlag {
    inner: Arc<Mutex<Option<String>>>,
}

impl ProofErrorFlag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        ProofErrorFlag::default()
    }

    /// Records an error message; only the first error is kept.
    fn set(&self, message: String) {
        let mut slot = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(message);
        }
    }

    /// The first recorded error, if any.
    pub fn get(&self) -> Option<String> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// `true` once any write has failed.
    pub fn is_set(&self) -> bool {
        self.get().is_some()
    }
}

/// Fans proof steps out to two sinks — typically an in-memory
/// [`SharedProof`] for checking plus a [`FileProofLogger`] for archival.
pub struct TeeProofLogger<A: ProofLogger, B: ProofLogger> {
    a: A,
    b: B,
}

impl<A: ProofLogger, B: ProofLogger> TeeProofLogger<A, B> {
    /// Combines two sinks; every step goes to both, `a` first.
    pub fn new(a: A, b: B) -> Self {
        TeeProofLogger { a, b }
    }
}

impl<A: ProofLogger, B: ProofLogger> ProofLogger for TeeProofLogger<A, B> {
    fn log_add(&mut self, lits: &[Lit]) {
        self.a.log_add(lits);
        self.b.log_add(lits);
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        self.a.log_delete(lits);
        self.b.log_delete(lits);
    }
}

/// Forwards clause additions and *suppresses deletions* — the logging
/// discipline for clause-sharing portfolio races.
///
/// When several workers log into one shared proof, additions compose
/// soundly: RUP is monotone in the clause database, so a clause derivable
/// from one worker's database is derivable from the union the checker
/// replays, and an importer's re-log of an exporter's clause is a
/// duplicate addition (trivially RUP — the pool mutex orders the
/// exporter's add before the importer's). Deletions do **not** compose: a
/// worker deleting a clause from *its* database would strip a clause that
/// a peer's later addition still resolves on, making a sound run fail the
/// check (or trip the checker's missing-deletion error for clauses the
/// log never saw added by *this* worker). Dropping deletions keeps the
/// merged log a valid, if larger, DRAT proof.
pub struct AddsOnlyProofLogger<L: ProofLogger> {
    inner: L,
}

impl<L: ProofLogger> AddsOnlyProofLogger<L> {
    /// Wraps a sink; only `log_add` calls reach it.
    pub fn new(inner: L) -> Self {
        AddsOnlyProofLogger { inner }
    }
}

impl<L: ProofLogger> ProofLogger for AddsOnlyProofLogger<L> {
    fn log_add(&mut self, lits: &[Lit]) {
        self.inner.log_add(lits);
    }

    fn log_delete(&mut self, _lits: &[Lit]) {}
}

/// A file-backed logger streaming textual DRAT to any writer; pair with
/// [`DratProof::from_dimacs`] to re-load.
///
/// I/O failures never abort the solve: the first error is recorded in a
/// [`ProofErrorFlag`] the caller keeps (see
/// [`error_flag`](FileProofLogger::error_flag)), and all later writes are
/// skipped. Downstream certification checks the flag and degrades to an
/// `Unchecked` status when the streamed file is truncated.
pub struct FileProofLogger<W: Write + Send> {
    out: W,
    errors: ProofErrorFlag,
    /// Steps attempted so far, for the injected-failure countdown.
    writes: u64,
    /// 1-based index of the first write forced to fail (fault injection).
    fail_at: Option<u64>,
}

impl FileProofLogger<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a buffered logger writing
    /// textual DRAT to it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(FileProofLogger::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> FileProofLogger<W> {
    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn new(out: W) -> Self {
        FileProofLogger { out, errors: ProofErrorFlag::new(), writes: 0, fail_at: None }
    }

    /// Applies a [`FaultPlan`]: if the plan schedules a proof-write
    /// failure, the K-th and every later [`ProofLogger`] call on this
    /// logger reports a (simulated) I/O error through the error flag
    /// without touching the underlying writer.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Self {
        self.fail_at = plan.proof_write_failure();
        self
    }

    /// A cloneable handle reporting the first I/O failure; keep it before
    /// boxing the logger into a solver.
    pub fn error_flag(&self) -> ProofErrorFlag {
        self.errors.clone()
    }

    /// Unwraps the underlying writer (flushing it first; a flush error is
    /// recorded in the error flag like any write error).
    pub fn into_inner(mut self) -> W {
        if let Err(e) = self.out.flush() {
            self.errors.set(format!("flush failed: {e}"));
        }
        self.out
    }

    fn write_step(&mut self, prefix: &str, lits: &[Lit]) {
        self.writes += 1;
        if let Some(k) = self.fail_at {
            if self.writes >= k {
                self.errors.set(format!("injected I/O failure at proof write {k} (fault plan)"));
                return;
            }
        }
        if self.errors.is_set() {
            // The stream is already known-truncated; writing further steps
            // would produce a gapped proof that looks more complete than
            // it is.
            return;
        }
        let mut line = String::with_capacity(prefix.len() + 6 * lits.len() + 2);
        line.push_str(prefix);
        for l in lits {
            let _ = write!(line, "{} ", l.to_dimacs());
        }
        line.push_str("0\n");
        // Proof logging is advisory: an I/O error degrades to a truncated
        // proof (recorded in the error flag) rather than aborting the
        // solve.
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.errors.set(format!("write failed at proof step {}: {e}", self.writes));
        }
    }
}

impl<W: Write + Send> ProofLogger for FileProofLogger<W> {
    fn log_add(&mut self, lits: &[Lit]) {
        self.write_step("", lits);
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        self.write_step("d ", lits);
    }
}

/// Renders a clause list in DIMACS CNF format (for dumping certified
/// formulas next to their `.drat` proofs).
pub fn dimacs_cnf(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = format!("p cnf {} {}\n", num_vars, clauses.len());
    for clause in clauses {
        for l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::Var;

    fn lit(i: usize, neg: bool) -> Lit {
        Var::from_index(i).lit(neg)
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut proof = DratProof::new();
        proof.push_add(&[lit(0, false), lit(1, true)]);
        proof.push_delete(&[lit(1, true), lit(2, false)]);
        proof.push_add(&[]);
        let text = proof.to_dimacs();
        assert_eq!(text, "1 -2 0\nd -2 3 0\n0\n");
        assert_eq!(DratProof::from_dimacs(&text).unwrap(), proof);
    }

    #[test]
    fn from_dimacs_rejects_garbage() {
        assert!(DratProof::from_dimacs("1 x 0\n").is_err());
        assert!(DratProof::from_dimacs("1 2\n").is_err());
    }

    #[test]
    fn from_dimacs_skips_comments() {
        let proof = DratProof::from_dimacs("c hello\n1 0\n").unwrap();
        assert_eq!(proof.steps(), &[ProofStep::Add(vec![lit(0, false)])]);
    }

    #[test]
    fn size_metrics() {
        let mut proof = DratProof::new();
        proof.push_add(&[lit(0, false), lit(1, false)]);
        proof.push_delete(&[lit(0, false)]);
        proof.push_add(&[]);
        assert_eq!(proof.num_adds(), 2);
        assert_eq!(proof.num_deletes(), 1);
        assert_eq!(proof.total_literals(), 3);
        assert_eq!(proof.len(), 3);
        assert!(!proof.is_empty());
    }

    #[test]
    fn file_logger_matches_memory_format() {
        let mut logger = FileProofLogger::new(Vec::new());
        logger.log_add(&[lit(0, false), lit(1, true)]);
        logger.log_delete(&[lit(1, true)]);
        let bytes = logger.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let parsed = DratProof::from_dimacs(&text).unwrap();
        assert_eq!(parsed.num_adds(), 1);
        assert_eq!(parsed.num_deletes(), 1);
    }

    /// A writer that fails after a fixed number of successful writes.
    struct FlakyWriter {
        ok_writes: usize,
        written: Vec<u8>,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            self.ok_writes -= 1;
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_error_sets_flag_and_stops_writing() {
        let mut logger = FileProofLogger::new(FlakyWriter { ok_writes: 1, written: Vec::new() });
        let flag = logger.error_flag();
        logger.log_add(&[lit(0, false)]);
        assert!(!flag.is_set());
        logger.log_add(&[lit(1, false)]); // write fails here
        assert!(flag.is_set());
        logger.log_add(&[lit(2, false)]); // skipped: stream known-truncated
        let w = logger.into_inner();
        assert_eq!(String::from_utf8(w.written).unwrap(), "1 0\n");
        assert!(flag.get().unwrap().contains("proof step 2"));
    }

    #[test]
    fn fault_plan_fails_kth_write_deterministically() {
        let plan = FaultPlan::new(1).with_proof_write_failure(2);
        let mut logger = FileProofLogger::new(Vec::new()).with_fault_plan(&plan);
        let flag = logger.error_flag();
        logger.log_add(&[lit(0, false)]);
        assert!(!flag.is_set());
        logger.log_delete(&[lit(0, false)]);
        assert!(flag.is_set(), "second write must fail");
        logger.log_add(&[lit(1, false)]);
        let bytes = logger.into_inner();
        assert_eq!(String::from_utf8(bytes).unwrap(), "1 0\n");
        assert!(flag.get().unwrap().contains("injected"));
    }

    #[test]
    fn adds_only_logger_drops_deletions() {
        let shared = SharedProof::new();
        let mut sink = AddsOnlyProofLogger::new(shared.clone());
        sink.log_add(&[lit(0, false), lit(1, true)]);
        sink.log_delete(&[lit(0, false), lit(1, true)]);
        sink.log_add(&[]);
        let proof = shared.take();
        assert_eq!(proof.num_adds(), 2);
        assert_eq!(proof.num_deletes(), 0);
    }

    #[test]
    fn tee_logger_feeds_both_sinks() {
        let shared = SharedProof::new();
        let file = FileProofLogger::new(Vec::new());
        let mut tee = TeeProofLogger::new(shared.clone(), file);
        tee.log_add(&[lit(0, false), lit(1, true)]);
        tee.log_delete(&[lit(1, true)]);
        assert_eq!(shared.snapshot().num_adds(), 1);
        assert_eq!(shared.snapshot().num_deletes(), 1);
    }

    #[test]
    fn shared_proof_tolerates_poisoned_lock() {
        let shared = SharedProof::new();
        let mut h = shared.clone();
        h.log_add(&[lit(0, false)]);
        // Poison the mutex from a panicking thread while it holds the lock.
        let arc = shared.inner.clone();
        let _ = std::thread::spawn(move || {
            let _guard = arc.lock().unwrap();
            panic!("poison");
        })
        .join();
        // All accessors must keep working on the recovered state.
        let mut h2 = shared.clone();
        h2.log_add(&[lit(1, false)]);
        assert_eq!(shared.snapshot().num_adds(), 2);
        assert_eq!(shared.take().num_adds(), 2);
    }

    #[test]
    fn shared_proof_take_resets() {
        let shared = SharedProof::new();
        let mut h = shared.clone();
        h.log_add(&[lit(0, false)]);
        assert_eq!(shared.snapshot().num_adds(), 1);
        assert_eq!(shared.take().num_adds(), 1);
        assert!(shared.take().is_empty());
    }

    #[test]
    fn dimacs_cnf_header() {
        let cnf = dimacs_cnf(3, &[vec![lit(0, false), lit(2, true)], vec![lit(1, false)]]);
        assert_eq!(cnf, "p cnf 3 2\n1 -3 0\n2 0\n");
    }
}

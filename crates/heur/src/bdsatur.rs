//! Backtracking DSATUR (Brélaz 1979 branching inside a branch-and-bound):
//! a small exact solver that is completely independent of the CNF/PB
//! pipeline, used as a cross-check in the agreement suite and as a bounded
//! improver inside the hybrid race.
//!
//! Symmetry handling mirrors the paper's instance-independent argument at
//! heuristic scale: a greedy clique is pre-colored with colors `0..q` (any
//! proper coloring can be renamed to that form), and branching only ever
//! tries the colors used so far plus one fresh color.

use sbgc_graph::{algo, Coloring, Graph};

const UNCOLORED: usize = usize::MAX;

/// Result of a [`backtracking_dsatur`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BdsaturResult {
    /// The search space was exhausted: `chromatic_number` is exact and
    /// `witness` is a proper coloring using exactly that many colors.
    Exact {
        /// The chromatic number of the input graph.
        chromatic_number: usize,
        /// A proper coloring with `chromatic_number` colors.
        witness: Coloring,
    },
    /// The node budget ran out first: only a proven bracket is known.
    Bounded {
        /// Clique-based lower bound on the chromatic number.
        lower: usize,
        /// Best (fewest-colors) proper coloring found so far.
        upper: usize,
        /// The coloring witnessing `upper`.
        witness: Coloring,
    },
}

impl BdsaturResult {
    /// The best upper bound this result proves.
    pub fn upper(&self) -> usize {
        match self {
            BdsaturResult::Exact { chromatic_number, .. } => *chromatic_number,
            BdsaturResult::Bounded { upper, .. } => *upper,
        }
    }

    /// The witness coloring for [`Self::upper`].
    pub fn witness(&self) -> &Coloring {
        match self {
            BdsaturResult::Exact { witness, .. } => witness,
            BdsaturResult::Bounded { witness, .. } => witness,
        }
    }
}

struct Searcher<'g> {
    graph: &'g Graph,
    kmax: usize,
    col: Vec<usize>,
    /// nbc[v * kmax + c]: neighbors of v colored c.
    nbc: Vec<u32>,
    /// sat[v]: number of distinct colors among v's neighbors.
    sat: Vec<u32>,
    best: Vec<usize>,
    best_k: usize,
    nodes_left: u64,
    truncated: bool,
}

impl<'g> Searcher<'g> {
    fn assign(&mut self, v: usize, c: usize) {
        self.col[v] = c;
        for &u in self.graph.neighbors(v) {
            let u = u as usize;
            let slot = u * self.kmax + c;
            self.nbc[slot] += 1;
            if self.nbc[slot] == 1 {
                self.sat[u] += 1;
            }
        }
    }

    fn unassign(&mut self, v: usize, c: usize) {
        self.col[v] = UNCOLORED;
        for &u in self.graph.neighbors(v) {
            let u = u as usize;
            let slot = u * self.kmax + c;
            self.nbc[slot] -= 1;
            if self.nbc[slot] == 0 {
                self.sat[u] -= 1;
            }
        }
    }

    fn search(&mut self, remaining: usize, used: usize) {
        if remaining == 0 {
            // Complete proper coloring with `used` colors; the color cap in
            // the branching loop guarantees used < best_k.
            debug_assert!(used < self.best_k);
            self.best_k = used;
            self.best.copy_from_slice(&self.col);
            return;
        }
        if used >= self.best_k {
            return;
        }
        if self.nodes_left == 0 {
            self.truncated = true;
            return;
        }
        self.nodes_left -= 1;

        // Brélaz choice: max saturation, tie max degree, tie min index.
        let n = self.graph.num_vertices();
        let mut v = usize::MAX;
        let mut key = (0u32, 0usize);
        for u in 0..n {
            if self.col[u] != UNCOLORED {
                continue;
            }
            let ku = (self.sat[u], self.graph.degree(u));
            if v == usize::MAX || ku > key {
                v = u;
                key = ku;
            }
        }
        debug_assert_ne!(v, usize::MAX);

        let mut c = 0;
        // `best_k` can shrink while we recurse, so re-read the cap each turn.
        while c < (used + 1).min(self.best_k.saturating_sub(1)) && c < self.kmax {
            if self.nbc[v * self.kmax + c] == 0 {
                self.assign(v, c);
                self.search(remaining - 1, used.max(c + 1));
                self.unassign(v, c);
                if self.truncated {
                    return;
                }
            }
            c += 1;
        }
    }
}

/// Exact chromatic number by backtracking DSATUR, bounded by `node_limit`
/// branching nodes.
///
/// Fully deterministic (no randomness at all). Returns
/// [`BdsaturResult::Exact`] when the search completes within budget, or a
/// proven [`BdsaturResult::Bounded`] bracket otherwise.
pub fn backtracking_dsatur(graph: &Graph, node_limit: u64) -> BdsaturResult {
    let n = graph.num_vertices();
    if n == 0 {
        return BdsaturResult::Exact { chromatic_number: 0, witness: Coloring::new(Vec::new()) };
    }

    let clique = algo::greedy_clique(graph);
    let lower = clique.len().max(1);
    let greedy = algo::dsatur(graph);
    let best_k = greedy.num_colors();
    if best_k <= lower {
        return BdsaturResult::Exact { chromatic_number: best_k, witness: greedy };
    }

    let kmax = best_k;
    let mut s = Searcher {
        graph,
        kmax,
        col: vec![UNCOLORED; n],
        nbc: vec![0u32; n * kmax],
        sat: vec![0u32; n],
        best: greedy.colors().to_vec(),
        best_k,
        nodes_left: node_limit,
        truncated: false,
    };
    // Pre-color the greedy clique: colors 0..q without loss of generality.
    for (i, &v) in clique.iter().enumerate() {
        s.assign(v, i);
    }
    s.search(n - clique.len(), clique.len());

    let witness = Coloring::new(s.best).compacted();
    debug_assert!(witness.is_proper(graph));
    debug_assert_eq!(witness.num_colors(), s.best_k);
    if s.truncated && s.best_k > lower {
        BdsaturResult::Bounded { lower, upper: s.best_k, witness }
    } else {
        BdsaturResult::Exact { chromatic_number: s.best_k, witness }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::gen;

    #[test]
    fn exact_on_known_graphs() {
        let cases: [(&str, Graph, usize); 6] = [
            ("k4", Graph::complete(4), 4),
            ("c5", Graph::cycle(5), 3),
            ("c6", Graph::cycle(6), 2),
            ("myciel3", gen::mycielski(3), 4),
            ("myciel4", gen::mycielski(4), 5),
            ("queen5_5", gen::queens(5, 5), 5),
        ];
        for (name, graph, chi) in cases {
            match backtracking_dsatur(&graph, 10_000_000) {
                BdsaturResult::Exact { chromatic_number, witness } => {
                    assert_eq!(chromatic_number, chi, "{name}");
                    assert!(witness.is_proper(&graph), "{name}");
                    assert_eq!(witness.num_colors(), chi, "{name}");
                }
                other => panic!("{name}: expected exact, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_budget_yields_proven_bracket() {
        let graph = gen::gnp(20, 0.5, 2);
        match backtracking_dsatur(&graph, 0) {
            BdsaturResult::Exact { chromatic_number, witness } => {
                // Only possible when greedy already met the clique bound.
                assert_eq!(witness.num_colors(), chromatic_number);
            }
            BdsaturResult::Bounded { lower, upper, witness } => {
                assert!(lower <= upper);
                assert!(witness.is_proper(&graph));
                assert_eq!(witness.num_colors(), upper);
            }
        }
    }

    #[test]
    fn agrees_with_itself_under_tight_and_loose_budgets() {
        let graph = gen::gnm(18, 60, 4);
        let loose = backtracking_dsatur(&graph, 10_000_000);
        if let BdsaturResult::Exact { chromatic_number, .. } = loose {
            let tight = backtracking_dsatur(&graph, 500);
            assert!(tight.upper() >= chromatic_number);
            assert!(tight.witness().is_proper(&graph));
        }
    }
}

//! Penalty-driven iterated clique search, after the dynamic-local-search
//! family (Pullan & Hoos 2006): repeated greedy construction with vertex
//! penalties that push successive restarts toward unexplored regions, plus a
//! plateau phase of (1,1)-swaps.
//!
//! In the hybrid race the best clique found lifts the chromatic lower bound,
//! so the caller re-validates pairwise adjacency before trusting the result
//! (see the trust-boundary argument in DESIGN.md §4i).

use crate::rng::SplitMix64;
use sbgc_graph::{algo, Graph};

/// Searches for a large clique in `graph`.
///
/// Runs up to `max_iters` construction restarts, stopping early when
/// `should_stop` reports cancellation. Returns the best clique found, sorted
/// by vertex index; it is never smaller than the deterministic greedy clique.
/// The restart sequence is a pure function of `(graph, seed)`.
pub fn clique_search<F: FnMut() -> bool>(
    graph: &Graph,
    seed: u64,
    max_iters: u64,
    mut should_stop: F,
) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut best = algo::greedy_clique(graph);
    best.sort_unstable();
    if n == 0 || best.len() == n {
        return best;
    }

    let mut rng = SplitMix64::new(seed);
    let mut penalty = vec![0u64; n];
    // missing[v]: members of the current clique NOT adjacent to v.
    let mut missing = vec![0u32; n];
    let mut in_clique = vec![false; n];

    for restart in 0..max_iters {
        if should_stop() {
            break;
        }

        missing.iter_mut().for_each(|m| *m = 0);
        in_clique.iter_mut().for_each(|b| *b = false);
        let mut clique: Vec<usize> = Vec::new();

        // Seed vertex: minimize penalty, tie max degree, tie rng.
        let mut start = 0usize;
        let mut ties = 0u64;
        for v in 0..n {
            let better = penalty[v] < penalty[start]
                || (penalty[v] == penalty[start] && graph.degree(v) > graph.degree(start));
            let equal = penalty[v] == penalty[start] && graph.degree(v) == graph.degree(start);
            if v == 0 || better {
                start = v;
                ties = 1;
            } else if equal {
                ties += 1;
                if rng.below(ties) == 0 {
                    start = v;
                }
            }
        }
        add_vertex(graph, start, &mut clique, &mut in_clique, &mut missing);

        // Greedy growth: among vertices adjacent to the whole clique, pick
        // min penalty, tie max degree, tie rng.
        loop {
            let mut pick: Option<usize> = None;
            let mut ties = 0u64;
            for v in 0..n {
                if in_clique[v] || missing[v] != 0 {
                    continue;
                }
                match pick {
                    None => {
                        pick = Some(v);
                        ties = 1;
                    }
                    Some(p) => {
                        let better = penalty[v] < penalty[p]
                            || (penalty[v] == penalty[p] && graph.degree(v) > graph.degree(p));
                        let equal = penalty[v] == penalty[p] && graph.degree(v) == graph.degree(p);
                        if better {
                            pick = Some(v);
                            ties = 1;
                        } else if equal {
                            ties += 1;
                            if rng.below(ties) == 0 {
                                pick = Some(v);
                            }
                        }
                    }
                }
            }
            match pick {
                Some(v) => add_vertex(graph, v, &mut clique, &mut in_clique, &mut missing),
                None => break,
            }
        }

        // Plateau: a few (1,1)-swaps — exchange a member for an outside
        // vertex missing exactly one adjacency, then regrow.
        for _ in 0..4 {
            let swap_in = (0..n).find(|&v| !in_clique[v] && missing[v] == 1);
            let Some(v) = swap_in else { break };
            let out = clique
                .iter()
                .copied()
                .find(|&u| !graph.has_edge(u, v))
                .expect("missing[v] == 1 implies one non-neighbor in the clique");
            remove_vertex(graph, out, &mut clique, &mut in_clique, &mut missing);
            add_vertex(graph, v, &mut clique, &mut in_clique, &mut missing);
            // Regrow greedily after the swap.
            while let Some(w) = (0..n).find(|&w| !in_clique[w] && missing[w] == 0) {
                add_vertex(graph, w, &mut clique, &mut in_clique, &mut missing);
            }
        }

        if clique.len() > best.len() {
            best = clique.clone();
            best.sort_unstable();
            if best.len() == n {
                break;
            }
        }
        // Penalize the clique just built; decay everything periodically so
        // old penalties fade.
        for &v in &clique {
            penalty[v] += 1;
        }
        if restart % 64 == 63 {
            penalty.iter_mut().for_each(|p| *p /= 2);
        }
    }

    debug_assert!(is_clique(graph, &best));
    best
}

fn add_vertex(
    graph: &Graph,
    v: usize,
    clique: &mut Vec<usize>,
    in_clique: &mut [bool],
    missing: &mut [u32],
) {
    debug_assert!(!in_clique[v] && missing[v] == 0);
    clique.push(v);
    in_clique[v] = true;
    let mut is_neighbor = vec![false; missing.len()];
    for &u in graph.neighbors(v) {
        is_neighbor[u as usize] = true;
    }
    for (w, miss) in missing.iter_mut().enumerate() {
        if w != v && !is_neighbor[w] {
            *miss += 1;
        }
    }
}

fn remove_vertex(
    graph: &Graph,
    v: usize,
    clique: &mut Vec<usize>,
    in_clique: &mut [bool],
    missing: &mut [u32],
) {
    debug_assert!(in_clique[v]);
    clique.retain(|&u| u != v);
    in_clique[v] = false;
    let mut is_neighbor = vec![false; missing.len()];
    for &u in graph.neighbors(v) {
        is_neighbor[u as usize] = true;
    }
    for (w, miss) in missing.iter_mut().enumerate() {
        if w != v && !is_neighbor[w] {
            *miss -= 1;
        }
    }
}

fn is_clique(graph: &Graph, clique: &[usize]) -> bool {
    clique.iter().enumerate().all(|(i, &u)| clique[i + 1..].iter().all(|&v| graph.has_edge(u, v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::gen;

    #[test]
    fn finds_the_whole_clique_in_complete_graphs() {
        let g = Graph::complete(7);
        assert_eq!(clique_search(&g, 1, 50, || false).len(), 7);
    }

    #[test]
    fn output_is_always_a_clique() {
        for seed in 0..4u64 {
            let g = gen::gnp(30, 0.5, seed);
            let c = clique_search(&g, seed, 100, || false);
            assert!(is_clique(&g, &c), "seed {seed}");
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn never_worse_than_greedy() {
        for seed in 0..4u64 {
            let g = gen::gnm(40, 300, seed);
            let greedy = algo::greedy_clique(&g).len();
            let found = clique_search(&g, seed, 100, || false).len();
            assert!(found >= greedy, "seed {seed}: {found} < {greedy}");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let g = gen::gnp(25, 0.6, 8);
        let a = clique_search(&g, 44, 200, || false);
        let b = clique_search(&g, 44, 200, || false);
        assert_eq!(a, b);
    }

    #[test]
    fn queens_six_has_a_six_clique() {
        // Each row of the queens graph is a clique.
        let g = gen::queens(6, 6);
        assert!(clique_search(&g, 3, 200, || false).len() >= 6);
    }
}

//! Deterministic pseudo-randomness for the heuristic workers.
//!
//! Every stochastic choice in this crate flows through [`SplitMix64`], the
//! same generator family the portfolio config ladder uses for worker seeds.
//! There is deliberately no dependency on `std::collections` hash randomness
//! or on any global RNG: two runs with the same seed perform bit-identical
//! move sequences, which is what makes the seeded-replay tests possible.

/// SplitMix64: a tiny, fast, full-period 64-bit generator.
///
/// The constants are the reference ones from Steele, Lea & Flood
/// (*Fast Splittable Pseudorandom Number Generators*, OOPSLA 2014), matching
/// the seeding helper already used by `sbgc-obs::FaultPlan` and the vendored
/// `rand` stand-in.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed, including 0, is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly-enough distributed in `0..n`.
    ///
    /// Plain modulo bias is irrelevant for tie-breaking among at most a few
    /// thousand candidates; determinism matters, statistical perfection does
    /// not.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n.max(1)
    }

    /// Returns a uniformly-enough distributed index into a slice of `len`
    /// elements.
    pub fn index(&mut self, len: usize) -> usize {
        (self.below(len as u64)) as usize
    }
}

/// Derives a decorrelated per-stream seed from a base seed.
///
/// Used by the hybrid race to give every heuristic worker its own
/// deterministic stream: `derive_seed(base, worker_index)`.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut rng = SplitMix64::new(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    // Burn one output so adjacent streams do not share a prefix with the
    // base generator.
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for n in 1..50u64 {
            for _ in 0..20 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        assert_ne!(s0, s1);
        // Deterministic across calls.
        assert_eq!(s0, derive_seed(99, 0));
    }
}

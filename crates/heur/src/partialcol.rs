//! PartialCol (Blöchliger & Zufferey 2008): tabu search over *partial*
//! proper k-assignments, minimizing the number of uncolored vertices.
//!
//! Where TabuCol tolerates conflicts, PartialCol never creates one: a move
//! assigns color `c` to an uncolored vertex `v` and un-colors every neighbor
//! of `v` that currently carries `c`. The two searches have complementary
//! landscapes, which is why both run in the hybrid race.

use crate::rng::SplitMix64;
use sbgc_graph::{Coloring, Graph};

const UNCOLORED: usize = usize::MAX;

/// Searches for a proper `k`-coloring of `graph` via partial assignments.
///
/// Returns `Some(coloring)` once every vertex is colored, or `None` when
/// `max_iters` iterations elapse or `should_stop` reports cancellation. The
/// move sequence is a pure function of `(graph, k, seed)`.
pub fn partialcol<F: FnMut() -> bool>(
    graph: &Graph,
    k: usize,
    seed: u64,
    max_iters: u64,
    mut should_stop: F,
) -> Option<Coloring> {
    let n = graph.num_vertices();
    if n == 0 {
        return Some(Coloring::new(Vec::new()));
    }
    if k == 0 {
        return None;
    }
    let mut rng = SplitMix64::new(seed);

    // Greedy start: random vertex order, first conflict-free color.
    let mut col = vec![UNCOLORED; n];
    // nbc[v * k + c]: colored neighbors of v carrying color c.
    let mut nbc = vec![0u32; n * k];
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        order.swap(i, j);
    }
    let mut uncolored: Vec<usize> = Vec::new();
    for &v in &order {
        match (0..k).find(|&c| nbc[v * k + c] == 0) {
            Some(c) => {
                col[v] = c;
                for &u in graph.neighbors(v) {
                    nbc[u as usize * k + c] += 1;
                }
            }
            None => uncolored.push(v),
        }
    }
    uncolored.sort_unstable();
    if uncolored.is_empty() {
        return Some(Coloring::new(col));
    }

    let mut best_u = uncolored.len();
    let mut tabu = vec![0u64; n * k];

    for iter in 1..=max_iters {
        if iter % 64 == 0 && should_stop() {
            return None;
        }

        // Candidate moves: (delta-|U|, v, c) over uncolored v. Assigning c to
        // v un-colors nbc[v][c] neighbors and colors v itself.
        let mut best: Option<(i64, usize, usize)> = None;
        let mut ties = 0u64;
        for &v in &uncolored {
            for c in 0..k {
                let delta = i64::from(nbc[v * k + c]) - 1;
                let aspires = (uncolored.len() as i64 + delta) < best_u as i64;
                if tabu[v * k + c] > iter && !aspires {
                    continue;
                }
                match best {
                    None => {
                        best = Some((delta, v, c));
                        ties = 1;
                    }
                    Some((bd, _, _)) if delta < bd => {
                        best = Some((delta, v, c));
                        ties = 1;
                    }
                    Some((bd, _, _)) if delta == bd => {
                        ties += 1;
                        if rng.below(ties) == 0 {
                            best = Some((delta, v, c));
                        }
                    }
                    _ => {}
                }
            }
        }
        let (v, c) = match best {
            Some((_, v, c)) => (v, c),
            None => {
                // All moves tabu: pick one anyway, uniformly.
                let v = uncolored[rng.index(uncolored.len())];
                (v, rng.index(k))
            }
        };

        // Apply: color v with c, evict conflicting neighbors.
        let tenure = (6 * uncolored.len() as u64) / 10 + rng.below(10);
        col[v] = c;
        for &u in graph.neighbors(v) {
            nbc[u as usize * k + c] += 1;
        }
        uncolored.retain(|&u| u != v);
        let evicted: Vec<usize> = graph
            .neighbors(v)
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| u != v && col[u] == c)
            .collect();
        for &u in &evicted {
            col[u] = UNCOLORED;
            for &w in graph.neighbors(u) {
                nbc[w as usize * k + c] -= 1;
            }
            // Moving u straight back onto c would undo the move: tabu it.
            tabu[u * k + c] = iter + tenure + 1;
            uncolored.push(u);
        }
        uncolored.sort_unstable();

        if uncolored.is_empty() {
            return Some(Coloring::new(col));
        }
        best_u = best_u.min(uncolored.len());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::gen;

    #[test]
    fn finds_exact_colorings_on_known_graphs() {
        let cases: [(&str, Graph, usize); 4] = [
            ("k5", Graph::complete(5), 5),
            ("c5", Graph::cycle(5), 3),
            ("queen5_5", gen::queens(5, 5), 5),
            ("myciel3", gen::mycielski(3), 4),
        ];
        for (name, graph, chi) in cases {
            let c = partialcol(&graph, chi, 29, 200_000, || false)
                .unwrap_or_else(|| panic!("{name}: partialcol failed at k = chi"));
            assert!(c.is_proper(&graph), "{name}: improper");
            assert!(c.num_colors() <= chi, "{name}: too many colors");
        }
    }

    #[test]
    fn refuses_below_chromatic_number() {
        assert!(partialcol(&Graph::complete(4), 3, 5, 20_000, || false).is_none());
    }

    #[test]
    fn replay_is_deterministic() {
        let g = gen::gnm(30, 140, 9);
        let a = partialcol(&g, 6, 321, 50_000, || false);
        let b = partialcol(&g, 6, 321, 50_000, || false);
        match (a, b) {
            (Some(x), Some(y)) => assert_eq!(x.colors(), y.colors()),
            (None, None) => {}
            _ => panic!("same seed diverged"),
        }
    }
}

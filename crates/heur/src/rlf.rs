//! Recursive Largest First (Leighton 1979): build color classes one at a
//! time, each as a maximal independent set grown to shadow as much of the
//! residual graph as possible.
//!
//! This implementation is fully deterministic — every tie is broken by the
//! smallest vertex index — so it can seed the local-search workers without
//! threatening replay determinism.

use sbgc_graph::{Coloring, Graph};

const UNCOLORED: usize = usize::MAX;

/// Colors `graph` with the Recursive Largest First heuristic.
///
/// For each class: start from the uncolored vertex with the most uncolored
/// neighbors, then repeatedly add the candidate with the most neighbors
/// already excluded from the class (ties: fewest remaining candidate
/// neighbors, then smallest index). Runs in `O(V · E)` worst case, which is
/// ample for the benchmark suite.
pub fn rlf(graph: &Graph) -> Coloring {
    let n = graph.num_vertices();
    let mut color = vec![UNCOLORED; n];
    let mut colored = 0usize;
    let mut current = 0usize;

    // Per-class working state, reused across classes.
    // status: 0 = candidate (can still join the class), 1 = excluded
    // (uncolored but adjacent to the class), 2 = colored in an earlier class
    // or placed in this one.
    let mut status = vec![0u8; n];
    let mut deg_cand = vec![0usize; n]; // neighbors among candidates
    let mut deg_excl = vec![0usize; n]; // neighbors among excluded vertices

    while colored < n {
        for v in 0..n {
            status[v] = if color[v] == UNCOLORED { 0 } else { 2 };
            deg_cand[v] = 0;
            deg_excl[v] = 0;
        }
        for v in 0..n {
            if status[v] != 0 {
                continue;
            }
            deg_cand[v] = graph.neighbors(v).iter().filter(|&&u| status[u as usize] == 0).count();
        }

        loop {
            // Pick the next member of the class.
            let mut pick = None;
            for v in 0..n {
                if status[v] != 0 {
                    continue;
                }
                // Maximize neighbors in the excluded set; break ties by the
                // *most* candidate neighbors for the first vertex (all
                // deg_excl are 0 then, so this selects the max-residual-degree
                // start), and by fewest candidate neighbors afterwards.
                let key = if deg_excl.iter().all(|&d| d == 0) {
                    (deg_excl[v], deg_cand[v], usize::MAX - v)
                } else {
                    (deg_excl[v], usize::MAX - deg_cand[v], usize::MAX - v)
                };
                match pick {
                    None => pick = Some((key, v)),
                    Some((best_key, _)) if key > best_key => pick = Some((key, v)),
                    _ => {}
                }
            }
            let Some((_, v)) = pick else { break };

            color[v] = current;
            status[v] = 2;
            colored += 1;
            // Candidate neighbors of v leave the candidate set.
            let newly_excluded: Vec<usize> = graph
                .neighbors(v)
                .iter()
                .map(|&u| u as usize)
                .filter(|&u| status[u] == 0)
                .collect();
            for &u in &newly_excluded {
                status[u] = 1;
            }
            for &u in &newly_excluded {
                for &w in graph.neighbors(u) {
                    let w = w as usize;
                    if status[w] == 0 {
                        deg_cand[w] -= 1;
                        deg_excl[w] += 1;
                    }
                }
            }
        }
        current += 1;
    }

    Coloring::new(color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::gen;

    #[test]
    fn rlf_is_proper_and_reasonable() {
        for (name, graph, chi) in [
            ("k4", Graph::complete(4), 4),
            ("c5", Graph::cycle(5), 3),
            ("c6", Graph::cycle(6), 2),
            ("petersen-ish", gen::gnp(10, 0.4, 5), 0),
            ("queen5_5", gen::queens(5, 5), 5),
        ] {
            let c = rlf(&graph);
            assert!(c.is_proper(&graph), "{name}: improper RLF coloring");
            if chi > 0 {
                assert!(
                    c.num_colors() >= chi,
                    "{name}: fewer colors than chi, coloring must be wrong"
                );
            }
        }
    }

    #[test]
    fn rlf_matches_optimum_on_easy_graphs() {
        assert_eq!(rlf(&Graph::complete(6)).num_colors(), 6);
        assert_eq!(rlf(&Graph::cycle(8)).num_colors(), 2);
    }

    #[test]
    fn rlf_handles_empty_and_edgeless() {
        let empty = Graph::from_edges(0, std::iter::empty());
        assert_eq!(rlf(&empty).num_colors(), 0);
        let edgeless = Graph::from_edges(5, std::iter::empty());
        let c = rlf(&edgeless);
        assert_eq!(c.num_colors(), 1);
        assert!(c.is_proper(&edgeless));
    }

    #[test]
    fn rlf_is_deterministic() {
        let g = gen::gnm(40, 200, 11);
        let a = rlf(&g);
        let b = rlf(&g);
        assert_eq!(a.colors(), b.colors());
    }
}

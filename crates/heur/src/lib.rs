//! Deterministic local-search heuristics for graph coloring.
//!
//! This crate is the heuristic half of the hybrid solver described in
//! ROADMAP's "primal bounds racing the exact search" item: fast incomplete
//! methods that tighten the `[lower, upper]` bracket before — and while —
//! the exact CDCL/PB portfolio closes it.
//!
//! * [`rlf()`] — Recursive Largest First constructive coloring, the classic
//!   high-quality greedy start;
//! * [`tabucol()`] — Hertz & de Werra tabu search over improper complete
//!   k-assignments (minimizes conflicting edges);
//! * [`partialcol()`] — Blöchliger & Zufferey tabu search over proper partial
//!   assignments (minimizes uncolored vertices);
//! * [`backtracking_dsatur`] — a small independent exact solver with Brélaz
//!   branching and clique pre-coloring, used as a cross-check in the
//!   agreement suite;
//! * [`clique_search`] — penalty-driven iterated clique construction, which
//!   lifts the chromatic lower bound.
//!
//! # Determinism
//!
//! Every function here is a pure function of its arguments: randomness comes
//! only from an explicit [`SplitMix64`] seed, no `std` hash-map iteration
//! order is consulted anywhere, and cancellation hooks can only make a
//! search return *earlier*, never change the moves it makes. The hybrid race
//! in `sbgc-core` relies on this for seeded replay.
//!
//! # Trust boundary
//!
//! Nothing in this crate is trusted by the exact search. Colorings and
//! cliques produced here are re-validated (propriety, color count, pairwise
//! adjacency) by `sbgc-core` before they may touch a proven bound — see
//! DESIGN.md §4i.
//!
//! # Example
//!
//! ```
//! use sbgc_heur::{backtracking_dsatur, tabucol, BdsaturResult};
//! use sbgc_graph::gen::queens;
//!
//! let graph = queens(5, 5);
//! // TabuCol finds a 5-coloring quickly...
//! let c = tabucol(&graph, 5, 1, 100_000, || false).expect("queen5_5 is 5-colorable");
//! assert!(c.is_proper(&graph));
//! // ...and backtracking DSATUR proves it optimal.
//! match backtracking_dsatur(&graph, 1_000_000) {
//!     BdsaturResult::Exact { chromatic_number, .. } => assert_eq!(chromatic_number, 5),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdsatur;
pub mod clique;
pub mod partialcol;
pub mod rlf;
pub mod rng;
pub mod tabucol;

pub use bdsatur::{backtracking_dsatur, BdsaturResult};
pub use clique::clique_search;
pub use partialcol::partialcol;
pub use rlf::rlf;
pub use rng::{derive_seed, SplitMix64};
pub use tabucol::{tabucol, tabucol_from};

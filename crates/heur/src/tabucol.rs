//! TabuCol (Hertz & de Werra 1987): tabu search over complete (possibly
//! improper) k-assignments, minimizing the number of conflicting edges.
//!
//! The neighborhood is the classic one-exchange: recolor one conflicting
//! vertex. Reverse moves are tabu for a dynamic tenure of
//! `0.6 · |conflicting vertices| + rand(10)` iterations (Galinier & Hao's
//! reactive tenure), with the standard aspiration criterion — a tabu move is
//! allowed when it beats the best assignment seen so far.

use crate::rng::SplitMix64;
use sbgc_graph::{Coloring, Graph};

/// Searches for a proper `k`-coloring of `graph`.
///
/// Returns `Some(coloring)` as soon as an assignment with zero conflicting
/// edges is found, or `None` when `max_iters` iterations elapse or
/// `should_stop` reports cancellation first. The move sequence is a pure
/// function of `(graph, k, seed)`.
pub fn tabucol<F: FnMut() -> bool>(
    graph: &Graph,
    k: usize,
    seed: u64,
    max_iters: u64,
    should_stop: F,
) -> Option<Coloring> {
    let mut rng = SplitMix64::new(seed);
    let init = greedy_k_assignment(graph, k, &mut rng);
    tabucol_from(graph, k, init, &mut rng, max_iters, should_stop)
}

/// TabuCol starting from a caller-supplied complete assignment.
///
/// `start[v]` must be in `0..k` for every vertex. This is the entry point
/// the descent driver uses to reuse the previous level's coloring with the
/// top class collapsed.
pub fn tabucol_from<F: FnMut() -> bool>(
    graph: &Graph,
    k: usize,
    start: Vec<usize>,
    rng: &mut SplitMix64,
    max_iters: u64,
    mut should_stop: F,
) -> Option<Coloring> {
    let n = graph.num_vertices();
    if n == 0 {
        return Some(Coloring::new(Vec::new()));
    }
    if k == 0 {
        return None;
    }
    debug_assert_eq!(start.len(), n);
    debug_assert!(start.iter().all(|&c| c < k));

    let mut col = start;
    // nbc[v * k + c]: how many neighbors of v currently carry color c.
    let mut nbc = vec![0u32; n * k];
    // vconf[v]: how many neighbors of v share v's color.
    let mut vconf = vec![0u32; n];
    let mut conflicts: u64 = 0;
    for v in 0..n {
        for &u in graph.neighbors(v) {
            let u = u as usize;
            nbc[v * k + col[u]] += 1;
            if col[u] == col[v] {
                vconf[v] += 1;
                if v < u {
                    conflicts += 1;
                }
            }
        }
    }
    if conflicts == 0 {
        return Some(Coloring::new(col));
    }
    if k == 1 {
        // A conflicting edge can never be repaired with a single color.
        return None;
    }

    let mut best_conflicts = conflicts;
    // tabu[v * k + c]: first iteration at which recoloring v to c is allowed
    // again.
    let mut tabu = vec![0u64; n * k];

    for iter in 1..=max_iters {
        if iter % 64 == 0 && should_stop() {
            return None;
        }

        let conflicted = vconf.iter().filter(|&&c| c > 0).count() as u64;
        // Best admissible move: (delta, v, c). Ties broken by reservoir
        // sampling so the walk does not fixate, yet stays seed-deterministic.
        let mut best: Option<(i64, usize, usize)> = None;
        let mut ties = 0u64;
        for v in 0..n {
            if vconf[v] == 0 {
                continue;
            }
            let old = col[v];
            for c in 0..k {
                if c == old {
                    continue;
                }
                let delta = i64::from(nbc[v * k + c]) - i64::from(nbc[v * k + old]);
                let aspires = (conflicts as i64 + delta) < best_conflicts as i64;
                if tabu[v * k + c] > iter && !aspires {
                    continue;
                }
                match best {
                    None => {
                        best = Some((delta, v, c));
                        ties = 1;
                    }
                    Some((bd, _, _)) if delta < bd => {
                        best = Some((delta, v, c));
                        ties = 1;
                    }
                    Some((bd, _, _)) if delta == bd => {
                        ties += 1;
                        if rng.below(ties) == 0 {
                            best = Some((delta, v, c));
                        }
                    }
                    _ => {}
                }
            }
        }

        let (v, c) = match best {
            Some((_, v, c)) => (v, c),
            None => {
                // Everything tabu: kick a random conflicted vertex.
                let nth = rng.below(conflicted.max(1)) as usize;
                let v = (0..n).filter(|&v| vconf[v] > 0).nth(nth).unwrap_or(0);
                let mut c = rng.index(k);
                if c == col[v] {
                    c = (c + 1) % k;
                }
                (v, c)
            }
        };

        // Apply the move and update incremental structures.
        let old = col[v];
        let tenure = (6 * conflicted) / 10 + rng.below(10);
        tabu[v * k + old] = iter + tenure + 1;
        col[v] = c;
        let mut vc = 0u32;
        for &u in graph.neighbors(v) {
            let u = u as usize;
            nbc[u * k + old] -= 1;
            nbc[u * k + c] += 1;
            if col[u] == old {
                conflicts -= 1;
                vconf[u] -= 1;
            } else if col[u] == c {
                conflicts += 1;
                vconf[u] += 1;
                vc += 1;
            }
        }
        vconf[v] = vc;

        if conflicts == 0 {
            return Some(Coloring::new(col));
        }
        best_conflicts = best_conflicts.min(conflicts);
    }
    None
}

/// Builds a complete min-conflict `k`-assignment greedily, visiting the
/// vertices in a seed-determined random order.
fn greedy_k_assignment(graph: &Graph, k: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates with the worker's own stream.
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        order.swap(i, j);
    }
    let mut col = vec![usize::MAX; n];
    for &v in &order {
        let mut counts = vec![0u32; k];
        for &u in graph.neighbors(v) {
            let cu = col[u as usize];
            if cu != usize::MAX {
                counts[cu] += 1;
            }
        }
        let min = *counts.iter().min().unwrap_or(&0);
        // Random choice among the least-conflicting colors.
        let cands: Vec<usize> = (0..k).filter(|&c| counts[c] == min).collect();
        col[v] = cands[rng.index(cands.len())];
    }
    col
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::gen;

    #[test]
    fn finds_exact_colorings_on_known_graphs() {
        let cases: [(&str, Graph, usize); 4] = [
            ("k5", Graph::complete(5), 5),
            ("c5", Graph::cycle(5), 3),
            ("queen5_5", gen::queens(5, 5), 5),
            ("myciel3", gen::mycielski(3), 4),
        ];
        for (name, graph, chi) in cases {
            let c = tabucol(&graph, chi, 17, 200_000, || false)
                .unwrap_or_else(|| panic!("{name}: tabucol failed at k = chi"));
            assert!(c.is_proper(&graph), "{name}: improper");
            assert!(c.num_colors() <= chi, "{name}: too many colors");
        }
    }

    #[test]
    fn refuses_below_chromatic_number() {
        // K4 cannot be 3-colored; the search must time out, not lie.
        assert!(tabucol(&Graph::complete(4), 3, 5, 20_000, || false).is_none());
    }

    #[test]
    fn replay_is_deterministic() {
        let g = gen::gnm(30, 140, 9);
        let a = tabucol(&g, 6, 123, 50_000, || false);
        let b = tabucol(&g, 6, 123, 50_000, || false);
        match (a, b) {
            (Some(x), Some(y)) => assert_eq!(x.colors(), y.colors()),
            (None, None) => {}
            _ => panic!("same seed diverged"),
        }
    }

    #[test]
    fn respects_cancellation() {
        let g = gen::gnm(40, 400, 3);
        // Cancel immediately: with k far below chi the only exits are the
        // stop hook or the iteration cap; the hook must win fast.
        assert!(tabucol(&g, 2, 1, u64::MAX >> 1, || true).is_none());
    }
}

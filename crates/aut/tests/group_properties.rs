//! Property-based and family tests for the automorphism engine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbgc_aut::{automorphisms, ColoredGraph};

fn random_colored_graph(n: usize, m: usize, colors: usize, seed: u64) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for _ in 0..m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push((a, b));
        }
    }
    let palette: Vec<u32> = (0..n).map(|_| rng.gen_range(0..colors as u32)).collect();
    ColoredGraph::from_edges(n, edges, Some(palette))
}

/// Brute-force automorphism count for tiny graphs.
fn brute_force_order(g: &ColoredGraph) -> u128 {
    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for p in permutations(n - 1) {
            for i in 0..n {
                let mut q = p.clone();
                q.insert(i, n - 1);
                out.push(q);
            }
        }
        out
    }
    let n = g.num_vertices();
    permutations(n)
        .into_iter()
        .filter(|p| {
            let perm = sbgc_aut::Permutation::from_images(p.iter().map(|&v| v as u32).collect())
                .expect("valid");
            g.is_automorphism(&perm)
        })
        .count() as u128
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The stabilizer-chain order matches brute force on tiny graphs.
    #[test]
    fn order_matches_brute_force(n in 1usize..7, m in 0usize..12, seed in any::<u64>()) {
        let g = random_colored_graph(n, m, 2, seed);
        let group = automorphisms(&g);
        prop_assert!(group.is_exact());
        prop_assert_eq!(group.order_u128(), Some(brute_force_order(&g)));
    }

    /// Every returned generator is a genuine automorphism.
    #[test]
    fn generators_are_automorphisms(n in 2usize..10, m in 0usize..20, seed in any::<u64>()) {
        let g = random_colored_graph(n, m, 3, seed);
        let group = automorphisms(&g);
        for p in group.generators() {
            prop_assert!(g.is_automorphism(p));
        }
    }

    /// Composition of generators stays inside the group.
    #[test]
    fn generators_compose(n in 2usize..9, m in 0usize..16, seed in any::<u64>()) {
        let g = random_colored_graph(n, m, 2, seed);
        let group = automorphisms(&g);
        let gens = group.generators();
        for a in gens.iter().take(3) {
            for b in gens.iter().take(3) {
                prop_assert!(g.is_automorphism(&a.compose(b)));
                prop_assert!(g.is_automorphism(&a.inverse()));
            }
        }
    }

    /// Distinct colors on every vertex kill the group.
    #[test]
    fn rainbow_coloring_trivializes(n in 1usize..10, m in 0usize..16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for _ in 0..m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            edges.push((a, b));
        }
        let colors: Vec<u32> = (0..n as u32).collect();
        let g = ColoredGraph::from_edges(n, edges, Some(colors));
        let group = automorphisms(&g);
        prop_assert!(group.is_trivial());
    }
}

#[test]
fn known_families() {
    // Hypercube Q3: |Aut| = 48.
    let q3 = ColoredGraph::from_edges(
        8,
        (0..8usize)
            .flat_map(|v| (0..3).map(move |b| (v, v ^ (1 << b))).filter(move |&(a, b)| a < b)),
        None,
    );
    assert_eq!(automorphisms(&q3).order_u128(), Some(48));

    // Complete bipartite K_{3,3}: |Aut| = 3! * 3! * 2 = 72.
    let k33 = ColoredGraph::from_edges(6, (0..3).flat_map(|a| (3..6).map(move |b| (a, b))), None);
    assert_eq!(automorphisms(&k33).order_u128(), Some(72));

    // Star K_{1,5}: |Aut| = 5!.
    let star = ColoredGraph::from_edges(6, (1..6).map(|v| (0, v)), None);
    assert_eq!(automorphisms(&star).order_u128(), Some(120));
}

#[test]
fn crown_graph_group() {
    // Crown S_n^0 (K_{n,n} minus a perfect matching): |Aut| = 2 * n!
    // (permute the pairs, swap the sides).
    let factorial = |n: u128| (1..=n).product::<u128>();
    for n in [3usize, 4, 5] {
        let g = sbgc_graph_to_colored(&sbgc_graph::gen::crown(n));
        let group = automorphisms(&g);
        assert_eq!(group.order_u128(), Some(2 * factorial(n as u128)), "crown({n})");
    }
}

#[test]
fn complete_multipartite_group() {
    // K_{2,2,2}: parts interchange (3!) and swap within parts (2^3):
    // |Aut| = 48.
    let g = sbgc_graph_to_colored(&sbgc_graph::gen::complete_multipartite(&[2, 2, 2]));
    assert_eq!(automorphisms(&g).order_u128(), Some(48));
    // Distinct part sizes kill the part interchange: 3! * 2! * 1! = 12.
    let g = sbgc_graph_to_colored(&sbgc_graph::gen::complete_multipartite(&[3, 2, 1]));
    assert_eq!(automorphisms(&g).order_u128(), Some(12));
}

#[test]
fn queen_board_symmetries() {
    // The queen graph of a square board has at least the 8 board
    // symmetries (dihedral D4); 5x5 has exactly 8.
    let g = sbgc_graph_to_colored(&sbgc_graph::gen::queens(5, 5));
    let group = automorphisms(&g);
    assert_eq!(group.order_u128(), Some(8));
    // Rectangular boards only flip: 4 symmetries for queens(4, 6)?
    // (horizontal, vertical, 180° — group of order 4).
    let g = sbgc_graph_to_colored(&sbgc_graph::gen::queens(4, 6));
    let group = automorphisms(&g);
    assert_eq!(group.order_u128(), Some(4));
}

fn sbgc_graph_to_colored(g: &sbgc_graph::Graph) -> ColoredGraph {
    ColoredGraph::from_edges(g.num_vertices(), g.edges(), None)
}

//! Graph automorphism detection for vertex-colored graphs.
//!
//! This crate stands in for the Saucy/Nauty automorphism tools the paper's
//! symmetry-breaking flow depends on (Darga et al. 2004; McKay 1990). Given
//! a [`ColoredGraph`], [`automorphisms`] returns a generating set of its
//! color-preserving automorphism group together with the exact group order,
//! computed along a stabilizer chain by the orbit–stabilizer theorem:
//!
//! 1. the vertex partition is refined to equitability (1-dimensional
//!    Weisfeiler–Leman with the input colors as the initial partition);
//! 2. a base point is chosen in the first non-singleton cell; for every
//!    other vertex of its cell not yet known to be in its orbit, a
//!    backtracking search (individualization–refinement on a source/target
//!    partition pair) looks for an automorphism mapping base → candidate;
//! 3. the base point is pinned and the process recurses into its
//!    stabilizer; `|Aut| = Π |orbit(bᵢ)|`.
//!
//! The search is exact by default and can be budgeted (see
//! [`AutomorphismOptions`]); Table 2 of the paper reports group orders as
//! large as 10¹⁶⁸, which we expose as `log10` (plus `u128` when it fits).
//!
//! # Example
//!
//! ```
//! use sbgc_aut::{automorphisms, ColoredGraph};
//!
//! // A 4-cycle: |Aut| = 8 (dihedral group D4).
//! let g = ColoredGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)], None);
//! let group = automorphisms(&g);
//! assert_eq!(group.order_u128(), Some(8));
//! assert!(!group.generators().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod colored_graph;
mod group;
mod perm;
mod refine;
mod search;

pub use colored_graph::ColoredGraph;
pub use group::{automorphisms, automorphisms_with, AutomorphismGroup, AutomorphismOptions};
pub use perm::Permutation;

//! Vertex-colored undirected graphs — the input of the automorphism search.

use std::fmt;

/// An undirected graph with a color (class label) on every vertex.
///
/// Automorphisms must preserve both adjacency and colors. This is the input
/// format of Saucy/Nauty and what the Shatter flow produces from a CNF/PB
/// formula (`sbgc-shatter`).
///
/// # Example
///
/// ```
/// use sbgc_aut::ColoredGraph;
/// let g = ColoredGraph::from_edges(3, [(0, 1), (1, 2)], Some(vec![0, 1, 0]));
/// assert_eq!(g.color(1), 1);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct ColoredGraph {
    offsets: Vec<usize>,
    adj: Vec<u32>,
    colors: Vec<u32>,
    num_edges: usize,
}

impl ColoredGraph {
    /// Builds a colored graph from an edge list; `colors` defaults to all
    /// zeros (uncolored). Self-loops are dropped, duplicate edges merged.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `colors` has wrong length.
    pub fn from_edges<I>(num_vertices: usize, edges: I, colors: Option<Vec<u32>>) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let colors = colors.unwrap_or_else(|| vec![0; num_vertices]);
        assert_eq!(colors.len(), num_vertices, "color vector length mismatch");
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (a, b) in edges {
            assert!(a < num_vertices && b < num_vertices, "edge ({a},{b}) out of range");
            if a == b {
                continue;
            }
            let (lo, hi) = if a < b { (a as u32, b as u32) } else { (b as u32, a as u32) };
            pairs.push((lo, hi));
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut degree = vec![0usize; num_vertices];
        for &(a, b) in &pairs {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut acc = 0;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0u32; acc];
        for &(a, b) in &pairs {
            adj[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            adj[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..num_vertices {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        ColoredGraph { offsets, adj, colors, num_edges: pairs.len() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.colors.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The color of vertex `v`.
    pub fn color(&self, v: usize) -> u32 {
        self.colors[v]
    }

    /// The per-vertex color slice.
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// Sorted neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Edge query, `O(log deg)`.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        if a >= self.num_vertices() || b >= self.num_vertices() || a == b {
            return false;
        }
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Returns `true` if `perm` (an image table) is a color- and
    /// adjacency-preserving automorphism.
    pub fn is_automorphism(&self, perm: &crate::Permutation) -> bool {
        if perm.len() != self.num_vertices() {
            return false;
        }
        for v in 0..self.num_vertices() {
            if self.colors[perm.apply(v)] != self.colors[v] {
                return false;
            }
            if self.degree(perm.apply(v)) != self.degree(v) {
                return false;
            }
            for &w in self.neighbors(v) {
                if !self.has_edge(perm.apply(v), perm.apply(w as usize)) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for ColoredGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let distinct: std::collections::BTreeSet<u32> = self.colors.iter().copied().collect();
        write!(
            f,
            "ColoredGraph(n={}, m={}, colors={})",
            self.num_vertices(),
            self.num_edges,
            distinct.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Permutation;

    #[test]
    fn construction() {
        let g = ColoredGraph::from_edges(3, [(0, 1), (1, 0), (2, 2)], None);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.color(2), 0);
    }

    #[test]
    fn automorphism_check_respects_colors() {
        let swap = Permutation::from_images(vec![1, 0]).expect("valid");
        let same = ColoredGraph::from_edges(2, [(0, 1)], Some(vec![5, 5]));
        assert!(same.is_automorphism(&swap));
        let diff = ColoredGraph::from_edges(2, [(0, 1)], Some(vec![1, 2]));
        assert!(!diff.is_automorphism(&swap));
    }

    #[test]
    fn automorphism_check_respects_edges() {
        let path = ColoredGraph::from_edges(3, [(0, 1), (1, 2)], None);
        let rot = Permutation::from_images(vec![1, 2, 0]).expect("valid");
        assert!(!path.is_automorphism(&rot));
        let rev = Permutation::from_images(vec![2, 1, 0]).expect("valid");
        assert!(path.is_automorphism(&rev));
    }
}

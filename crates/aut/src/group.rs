//! The automorphism group driver: stabilizer chain, generators, order.

use crate::refine::{first_non_singleton, individualize, initial_cells, refine};
use crate::search::{find_automorphism, SearchResult};
use crate::{ColoredGraph, Permutation};
use std::fmt;

/// Options for [`automorphisms_with`].
#[derive(Clone, Copy, Debug)]
pub struct AutomorphismOptions {
    /// Maximum search-tree nodes per single automorphism search. When a
    /// search is cut off the result is flagged inexact
    /// ([`AutomorphismGroup::is_exact`]) and the reported order is a lower
    /// bound.
    pub max_nodes_per_search: u64,
}

impl Default for AutomorphismOptions {
    fn default() -> Self {
        AutomorphismOptions { max_nodes_per_search: 2_000_000 }
    }
}

/// A generating set for the automorphism group of a colored graph, with the
/// group order computed along the stabilizer chain (orbit–stabilizer).
#[derive(Clone)]
pub struct AutomorphismGroup {
    generators: Vec<Permutation>,
    /// Base points of the stabilizer chain, in order.
    base: Vec<usize>,
    /// `level_gens[i]` — indices into `generators` of the generators found
    /// at level `i` (they fix `base[..i]` pointwise).
    level_gens: Vec<Vec<usize>>,
    orbit_sizes: Vec<usize>,
    exact: bool,
}

impl AutomorphismGroup {
    /// The discovered generators (the identity is never included).
    pub fn generators(&self) -> &[Permutation] {
        &self.generators
    }

    /// Number of generators — the `#G` column of the paper's Table 2.
    pub fn num_generators(&self) -> usize {
        self.generators.len()
    }

    /// The orbit size of each base point along the stabilizer chain.
    pub fn orbit_sizes(&self) -> &[usize] {
        &self.orbit_sizes
    }

    /// `log₁₀ |Aut|` — Table 2 reports group orders like `1.1e+168`, so the
    /// order is exposed in log form.
    pub fn order_log10(&self) -> f64 {
        self.orbit_sizes.iter().map(|&s| (s as f64).log10()).sum()
    }

    /// `|Aut|` as `u128` when it fits, `None` otherwise.
    pub fn order_u128(&self) -> Option<u128> {
        let mut order: u128 = 1;
        for &s in &self.orbit_sizes {
            order = order.checked_mul(s as u128)?;
        }
        Some(order)
    }

    /// Returns `true` if the group is trivial (identity only).
    pub fn is_trivial(&self) -> bool {
        self.orbit_sizes.iter().all(|&s| s == 1)
    }

    /// `false` if any search hit its node budget; the reported order is
    /// then a lower bound and the generating set possibly incomplete.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The orbit of `point` under the *discovered generators* (BFS
    /// closure).
    pub fn orbit_of(&self, point: usize) -> Vec<usize> {
        orbit_closure(&self.generators, point)
    }

    /// The base points of the stabilizer chain.
    pub fn base(&self) -> &[usize] {
        &self.base
    }

    /// Group membership test by sifting along the stabilizer chain
    /// (Schreier–Sims). The generators discovered by [`automorphisms`]
    /// form a strong generating set relative to the base (each level's
    /// orbit was established exhaustively), so sifting is exact when
    /// [`AutomorphismGroup::is_exact`] holds.
    ///
    /// # Panics
    ///
    /// Panics if `perm` acts on a different number of points than the
    /// group's generators (when any exist).
    ///
    /// # Example
    ///
    /// ```
    /// use sbgc_aut::{automorphisms, ColoredGraph, Permutation};
    /// let square = ColoredGraph::from_edges(4, [(0,1),(1,2),(2,3),(3,0)], None);
    /// let group = automorphisms(&square);
    /// let rotation = Permutation::from_images(vec![1, 2, 3, 0]).unwrap();
    /// let transpose_adjacent = Permutation::from_images(vec![1, 0, 2, 3]).unwrap();
    /// assert!(group.contains(&rotation));
    /// assert!(!group.contains(&transpose_adjacent)); // not an automorphism
    /// ```
    pub fn contains(&self, perm: &Permutation) -> bool {
        if let Some(g) = self.generators.first() {
            assert_eq!(g.len(), perm.len(), "degree mismatch");
        }
        let mut residue = perm.clone();
        for (level, &b) in self.base.iter().enumerate() {
            if residue.is_identity() {
                return true;
            }
            let target = residue.apply(b);
            if target == b {
                continue;
            }
            // Transversal element u with u(b) = target, from the level's
            // stabilizer generators.
            let gens: Vec<&Permutation> = self
                .level_gens
                .iter()
                .skip(level)
                .flatten()
                .map(|&i| &self.generators[i])
                .collect();
            match transversal_to(&gens, b, target, residue.len()) {
                Some(u) => residue = u.inverse().compose(&residue),
                None => return false,
            }
        }
        residue.is_identity()
    }
}

/// BFS from `b` through the generators, returning a group element mapping
/// `b` to `target` (or `None` if `target` is outside the orbit).
fn transversal_to(
    gens: &[&Permutation],
    b: usize,
    target: usize,
    degree: usize,
) -> Option<Permutation> {
    let mut reached: std::collections::BTreeMap<usize, Permutation> =
        std::collections::BTreeMap::new();
    reached.insert(b, Permutation::identity(degree));
    let mut queue = std::collections::VecDeque::from([b]);
    while let Some(p) = queue.pop_front() {
        if p == target {
            return reached.get(&target).cloned();
        }
        let via = reached[&p].clone();
        for g in gens {
            let q = g.apply(p);
            if let std::collections::btree_map::Entry::Vacant(e) = reached.entry(q) {
                e.insert(g.compose(&via));
                queue.push_back(q);
            }
        }
    }
    reached.get(&target).cloned()
}

impl fmt::Debug for AutomorphismGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AutomorphismGroup(|Aut|=10^{:.2}, generators={}, exact={})",
            self.order_log10(),
            self.generators.len(),
            self.exact
        )
    }
}

fn orbit_closure(generators: &[Permutation], point: usize) -> Vec<usize> {
    let mut orbit = vec![point];
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(point);
    let mut head = 0;
    while head < orbit.len() {
        let p = orbit[head];
        head += 1;
        for g in generators {
            let q = g.apply(p);
            if seen.insert(q) {
                orbit.push(q);
            }
        }
    }
    orbit
}

/// Computes a generating set and the order of the color-preserving
/// automorphism group of `g` with default options.
///
/// See the crate docs for the algorithm; use [`automorphisms_with`] to
/// control the search budget.
pub fn automorphisms(g: &ColoredGraph) -> AutomorphismGroup {
    automorphisms_with(g, &AutomorphismOptions::default())
}

/// Computes the automorphism group with explicit options.
pub fn automorphisms_with(g: &ColoredGraph, opts: &AutomorphismOptions) -> AutomorphismGroup {
    let mut pins: Vec<(usize, usize)> = Vec::new();
    let mut generators: Vec<Permutation> = Vec::new();
    let mut base: Vec<usize> = Vec::new();
    let mut level_gens_table: Vec<Vec<usize>> = Vec::new();
    let mut orbit_sizes: Vec<usize> = Vec::new();
    let mut exact = true;

    loop {
        // Refine under the current base prefix (each base point pinned).
        let mut cells = initial_cells(g);
        for &(b, _) in &pins {
            individualize(&mut cells, b);
        }
        refine(g, &mut cells);
        let Some((_, members)) = first_non_singleton(&cells) else {
            break;
        };
        let base_point = members[0];
        // Generators found at *this* level (they fix all current pins).
        let mut level_gens: Vec<Permutation> = Vec::new();
        let mut orbit: std::collections::BTreeSet<usize> =
            orbit_closure(&level_gens, base_point).into_iter().collect();
        for &w in &members[1..] {
            if orbit.contains(&w) {
                continue;
            }
            let mut search_pins = pins.clone();
            search_pins.push((base_point, w));
            match find_automorphism(g, &search_pins, opts.max_nodes_per_search) {
                SearchResult::Found(p) => {
                    debug_assert!(g.is_automorphism(&p));
                    debug_assert!(pins.iter().all(|&(b, _)| p.apply(b) == b));
                    level_gens.push(p);
                    orbit = orbit_closure(&level_gens, base_point).into_iter().collect();
                }
                SearchResult::None => {}
                SearchResult::Exhausted => {
                    exact = false;
                }
            }
        }
        orbit_sizes.push(orbit.len());
        let start = generators.len();
        generators.extend(level_gens);
        level_gens_table.push((start..generators.len()).collect());
        base.push(base_point);
        pins.push((base_point, base_point));
    }

    AutomorphismGroup { generators, base, level_gens: level_gens_table, orbit_sizes, exact }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> ColoredGraph {
        ColoredGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)), None)
    }

    fn complete(n: usize) -> ColoredGraph {
        ColoredGraph::from_edges(n, (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))), None)
    }

    #[test]
    fn cycle_group_is_dihedral() {
        for n in [3usize, 4, 5, 6, 7] {
            let group = automorphisms(&cycle(n));
            assert!(group.is_exact());
            assert_eq!(group.order_u128(), Some(2 * n as u128), "C{n}");
            for g in group.generators() {
                assert!(cycle(n).is_automorphism(g));
            }
        }
    }

    #[test]
    fn complete_graph_group_is_symmetric() {
        // |Aut(K_n)| = n!
        let factorial = |n: u128| (1..=n).product::<u128>();
        for n in [2usize, 3, 4, 5, 6] {
            let group = automorphisms(&complete(n));
            assert_eq!(group.order_u128(), Some(factorial(n as u128)), "K{n}");
        }
    }

    #[test]
    fn empty_graph_group_is_symmetric() {
        let g = ColoredGraph::from_edges(5, [], None);
        assert_eq!(automorphisms(&g).order_u128(), Some(120));
    }

    #[test]
    fn colors_restrict_the_group() {
        // K3 with one distinguished vertex: only the other two can swap.
        let g = ColoredGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)], Some(vec![1, 0, 0]));
        let group = automorphisms(&g);
        assert_eq!(group.order_u128(), Some(2));
        assert!(group.generators().iter().all(|p| p.apply(0) == 0));
    }

    #[test]
    fn path_group_is_z2() {
        let g = ColoredGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)], None);
        let group = automorphisms(&g);
        assert_eq!(group.order_u128(), Some(2));
        assert_eq!(group.num_generators(), 1);
    }

    #[test]
    fn asymmetric_graph_is_trivial() {
        // The asymmetric 7-vertex tree: a path 0-1-2-3-4-5 with an extra
        // leaf 6 on vertex 2; the three leaves sit at pairwise different
        // distances from the unique degree-3 vertex, so only the identity
        // survives.
        let g = ColoredGraph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6)], None);
        let group = automorphisms(&g);
        assert!(group.is_trivial());
        assert_eq!(group.order_u128(), Some(1));
        assert_eq!(group.num_generators(), 0);
    }

    #[test]
    fn petersen_graph_order_120() {
        let outer = (0..5).map(|i| (i, (i + 1) % 5));
        let spokes = (0..5).map(|i| (i, i + 5));
        let inner = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5));
        let g = ColoredGraph::from_edges(10, outer.chain(spokes).chain(inner), None);
        let group = automorphisms(&g);
        assert_eq!(group.order_u128(), Some(120));
    }

    #[test]
    fn orbit_of_uses_generators() {
        let group = automorphisms(&cycle(5));
        let orbit = group.orbit_of(0);
        assert_eq!(orbit.len(), 5, "cycle is vertex-transitive");
    }

    #[test]
    fn membership_by_sifting() {
        let g = cycle(6);
        let group = automorphisms(&g);
        // Rotations and reflections are members.
        let rot = Permutation::from_images(vec![1, 2, 3, 4, 5, 0]).expect("valid");
        let refl = Permutation::from_images(vec![0, 5, 4, 3, 2, 1]).expect("valid");
        assert!(group.contains(&rot));
        assert!(group.contains(&refl));
        assert!(group.contains(&rot.compose(&refl)));
        assert!(group.contains(&Permutation::identity(6)));
        // A transposition of adjacent vertices is not an automorphism.
        let bad = Permutation::from_images(vec![1, 0, 2, 3, 4, 5]).expect("valid");
        assert!(!group.contains(&bad));
    }

    #[test]
    fn membership_respects_colors() {
        let g = ColoredGraph::from_edges(3, [], Some(vec![0, 0, 1]));
        let group = automorphisms(&g); // only (0 1)
        let swap01 = Permutation::from_images(vec![1, 0, 2]).expect("valid");
        let swap02 = Permutation::from_images(vec![2, 1, 0]).expect("valid");
        assert!(group.contains(&swap01));
        assert!(!group.contains(&swap02));
    }

    #[test]
    fn membership_products_of_generators() {
        let group = automorphisms(&complete(5));
        let gens = group.generators().to_vec();
        assert!(!gens.is_empty());
        let mut product = Permutation::identity(5);
        for g in &gens {
            product = g.compose(&product);
            assert!(group.contains(&product));
            assert!(group.contains(&product.inverse()));
        }
    }

    #[test]
    fn disjoint_union_of_two_edges() {
        // Two disjoint edges: swap within each edge (2×2) and swap the two
        // edges (×2): order 8.
        let g = ColoredGraph::from_edges(4, [(0, 1), (2, 3)], None);
        assert_eq!(automorphisms(&g).order_u128(), Some(8));
    }

    #[test]
    fn log10_matches_u128_when_small() {
        let group = automorphisms(&complete(6));
        let exact = group.order_u128().expect("fits") as f64;
        assert!((group.order_log10() - exact.log10()).abs() < 1e-9);
    }
}

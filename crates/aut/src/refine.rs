//! Equitable partition refinement (1-dimensional Weisfeiler–Leman).
//!
//! Signatures are 64-bit hashes combining a vertex's own cell with the
//! (order-independent) multiset of its neighbors' cells; one refinement
//! step sorts the signatures and renumbers cells densely. A hash collision
//! could only *merge* cells that should split, which costs search time but
//! never soundness: every automorphism candidate is verified at the leaves
//! ([`crate::ColoredGraph::is_automorphism`]).

use crate::ColoredGraph;
use std::collections::BTreeMap;

/// A vertex partition, stored as a dense cell id per vertex.
pub(crate) type Cells = Vec<u32>;

/// Builds the initial partition from the graph's vertex colors, with dense
/// cell ids assigned in ascending color order.
pub(crate) fn initial_cells(g: &ColoredGraph) -> Cells {
    let mut ids: BTreeMap<u32, u32> = BTreeMap::new();
    for &c in g.colors() {
        let next = ids.len() as u32;
        ids.entry(c).or_insert(next);
    }
    g.colors().iter().map(|c| ids[c]).collect()
}

/// SplitMix64 finalizer — a cheap, well-mixing 64-bit hash.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-vertex refinement signature under `cells`: own cell + multiset of
/// neighbor cells (commutative sum of mixed neighbor ids).
fn signatures(g: &ColoredGraph, cells: &Cells, out: &mut Vec<u64>) {
    out.clear();
    for v in 0..g.num_vertices() {
        let mut acc: u64 = 0;
        for &w in g.neighbors(v) {
            acc = acc.wrapping_add(mix(cells[w as usize] as u64 + 1));
        }
        out.push(mix(acc ^ mix((cells[v] as u64) << 32)));
    }
}

/// Renumbers `sigs` densely (ids in ascending signature order) into
/// `cells`; `scratch` is the sorted unique signature table. Returns the
/// number of cells.
fn renumber(sigs: &[u64], table: &[u64], cells: &mut Cells) -> usize {
    for (v, &s) in sigs.iter().enumerate() {
        let id = table.binary_search(&s).expect("signature present in table");
        cells[v] = id as u32;
    }
    table.len()
}

fn num_cells(cells: &Cells) -> usize {
    cells.iter().copied().max().map_or(0, |m| m as usize + 1)
}

/// Refines a single partition to equitability. Returns the final number of
/// cells.
pub(crate) fn refine(g: &ColoredGraph, cells: &mut Cells) -> usize {
    let mut count = num_cells(cells);
    let mut sigs = Vec::with_capacity(g.num_vertices());
    loop {
        signatures(g, cells, &mut sigs);
        let mut table = sigs.clone();
        table.sort_unstable();
        table.dedup();
        let new_count = renumber(&sigs, &table, cells);
        if new_count == count {
            return count;
        }
        count = new_count;
    }
}

/// Refines a source/target partition pair in lockstep, sharing one
/// signature → cell-id table so cells correspond across the two
/// partitions.
///
/// Returns `false` if the partitions diverge (different signature
/// multisets), proving no color-preserving isomorphism can respect the
/// current individualization.
pub(crate) fn refine_pair(g: &ColoredGraph, a: &mut Cells, b: &mut Cells) -> bool {
    let mut count = num_cells(a);
    let n = g.num_vertices();
    let mut sigs_a = Vec::with_capacity(n);
    let mut sigs_b = Vec::with_capacity(n);
    loop {
        signatures(g, a, &mut sigs_a);
        signatures(g, b, &mut sigs_b);
        // The two sides must have identical signature *multisets*.
        let mut sorted_a = sigs_a.clone();
        let mut sorted_b = sigs_b.clone();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        if sorted_a != sorted_b {
            return false;
        }
        sorted_a.dedup();
        let table = sorted_a;
        let new_count = renumber(&sigs_a, &table, a);
        let _ = renumber(&sigs_b, &table, b);
        if new_count == count {
            return true;
        }
        count = new_count;
    }
}

/// Finds the non-singleton cell with the smallest id, returning
/// `(cell_id, members)`; `None` when the partition is discrete.
pub(crate) fn first_non_singleton(cells: &Cells) -> Option<(u32, Vec<usize>)> {
    let n = num_cells(cells);
    let mut size = vec![0u32; n];
    for &c in cells.iter() {
        size[c as usize] += 1;
    }
    let target = size.iter().position(|&s| s > 1)? as u32;
    let members = cells.iter().enumerate().filter(|&(_, &c)| c == target).map(|(v, _)| v).collect();
    Some((target, members))
}

/// Individualizes `v`: gives it a fresh singleton cell id.
pub(crate) fn individualize(cells: &mut Cells, v: usize) {
    let fresh = num_cells(cells) as u32;
    cells[v] = fresh;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refine_splits_by_degree() {
        // Path 0-1-2: endpoints vs middle.
        let g = ColoredGraph::from_edges(3, [(0, 1), (1, 2)], None);
        let mut cells = initial_cells(&g);
        let count = refine(&g, &mut cells);
        assert_eq!(count, 2);
        assert_eq!(cells[0], cells[2]);
        assert_ne!(cells[0], cells[1]);
    }

    #[test]
    fn refine_respects_initial_colors() {
        let g = ColoredGraph::from_edges(2, [], Some(vec![7, 9]));
        let mut cells = initial_cells(&g);
        assert_eq!(refine(&g, &mut cells), 2);
    }

    #[test]
    fn cycle_stays_one_cell() {
        let g = ColoredGraph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)), None);
        let mut cells = initial_cells(&g);
        assert_eq!(refine(&g, &mut cells), 1);
        assert!(first_non_singleton(&cells).is_some());
    }

    #[test]
    fn refinement_distinguishes_distance_classes() {
        // Star plus a pendant path: 0 center; leaves 1,2,3; path 3-4.
        let g = ColoredGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)], None);
        let mut cells = initial_cells(&g);
        let count = refine(&g, &mut cells);
        // Cells: {0}, {1,2}, {3}, {4}.
        assert_eq!(count, 4);
        assert_eq!(cells[1], cells[2]);
    }

    #[test]
    fn pair_refinement_diverges_on_individualization_mismatch() {
        // Path 0-1-2: individualizing endpoint on one side and the middle
        // on the other must diverge.
        let g = ColoredGraph::from_edges(3, [(0, 1), (1, 2)], None);
        let mut a = initial_cells(&g);
        let mut b = initial_cells(&g);
        individualize(&mut a, 0);
        individualize(&mut b, 1);
        assert!(!refine_pair(&g, &mut a, &mut b));
    }

    #[test]
    fn pair_refinement_succeeds_on_symmetric_choice() {
        let g = ColoredGraph::from_edges(3, [(0, 1), (1, 2)], None);
        let mut a = initial_cells(&g);
        let mut b = initial_cells(&g);
        individualize(&mut a, 0);
        individualize(&mut b, 2);
        assert!(refine_pair(&g, &mut a, &mut b));
        // Both partitions are now discrete and correspond.
        assert!(first_non_singleton(&a).is_none());
        assert!(first_non_singleton(&b).is_none());
    }

    #[test]
    fn individualize_creates_singleton() {
        let g = ColoredGraph::from_edges(4, (0..4).map(|i| (i, (i + 1) % 4)), None);
        let mut cells = initial_cells(&g);
        refine(&g, &mut cells);
        individualize(&mut cells, 2);
        let (_, members) = first_non_singleton(&cells).expect("cycle still symmetric");
        assert!(!members.contains(&2));
    }
}

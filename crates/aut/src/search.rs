//! Backtracking individualization–refinement search for a single
//! automorphism subject to pinned points.

use crate::refine::{first_non_singleton, individualize, initial_cells, refine_pair, Cells};
use crate::{ColoredGraph, Permutation};

/// Outcome of a pinned search.
pub(crate) enum SearchResult {
    /// An automorphism honoring the pins.
    Found(Permutation),
    /// Exhaustively proven that none exists.
    None,
    /// Node budget ran out before the subtree was exhausted.
    Exhausted,
}

/// Searches for a color-preserving automorphism `γ` of `g` with
/// `γ(source) = target` for every pin, exploring at most `max_nodes` search
/// nodes.
///
/// Pins must be injective on both sides; a pin whose endpoints have
/// different colors makes the search trivially fail.
pub(crate) fn find_automorphism(
    g: &ColoredGraph,
    pins: &[(usize, usize)],
    max_nodes: u64,
) -> SearchResult {
    let mut a = initial_cells(g);
    let mut b = initial_cells(g);
    for &(s, t) in pins {
        if g.color(s) != g.color(t) {
            return SearchResult::None;
        }
        // Matching fresh ids on both sides (partitions have identical cell
        // counts before each individualization).
        individualize(&mut a, s);
        individualize(&mut b, t);
    }
    let mut nodes = 0u64;
    recurse(g, a, b, &mut nodes, max_nodes)
}

fn recurse(
    g: &ColoredGraph,
    mut a: Cells,
    mut b: Cells,
    nodes: &mut u64,
    max_nodes: u64,
) -> SearchResult {
    *nodes += 1;
    if *nodes > max_nodes {
        return SearchResult::Exhausted;
    }
    if !refine_pair(g, &mut a, &mut b) {
        return SearchResult::None;
    }
    match first_non_singleton(&a) {
        None => {
            // Both partitions discrete: cells correspond one-to-one.
            let perm = extract_bijection(&a, &b);
            match perm {
                Some(p) if g.is_automorphism(&p) => SearchResult::Found(p),
                _ => SearchResult::None,
            }
        }
        Some((cell_id, members_a)) => {
            let members_b: Vec<usize> =
                (0..g.num_vertices()).filter(|&v| b[v] == cell_id).collect();
            debug_assert_eq!(members_a.len(), members_b.len());
            let v = members_a[0];
            let mut exhausted = false;
            for &w in &members_b {
                let mut a2 = a.clone();
                let mut b2 = b.clone();
                individualize(&mut a2, v);
                individualize(&mut b2, w);
                match recurse(g, a2, b2, nodes, max_nodes) {
                    SearchResult::Found(p) => return SearchResult::Found(p),
                    SearchResult::None => {}
                    SearchResult::Exhausted => {
                        exhausted = true;
                        break;
                    }
                }
            }
            if exhausted {
                SearchResult::Exhausted
            } else {
                SearchResult::None
            }
        }
    }
}

/// Builds the vertex bijection induced by two corresponding discrete
/// partitions: the vertex in cell `c` of `a` maps to the vertex in cell `c`
/// of `b`.
fn extract_bijection(a: &Cells, b: &Cells) -> Option<Permutation> {
    let n = a.len();
    let mut by_cell_b = vec![u32::MAX; n];
    for (v, &c) in b.iter().enumerate() {
        let slot = by_cell_b.get_mut(c as usize)?;
        if *slot != u32::MAX {
            return None; // not discrete
        }
        *slot = v as u32;
    }
    let mut images = vec![0u32; n];
    for (v, &c) in a.iter().enumerate() {
        let img = *by_cell_b.get(c as usize)?;
        if img == u32::MAX {
            return None;
        }
        images[v] = img;
    }
    Permutation::from_images(images)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> ColoredGraph {
        ColoredGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)), None)
    }

    #[test]
    fn finds_rotation_of_cycle() {
        let g = cycle(5);
        match find_automorphism(&g, &[(0, 1)], 10_000) {
            SearchResult::Found(p) => {
                assert_eq!(p.apply(0), 1);
                assert!(g.is_automorphism(&p));
            }
            _ => panic!("rotation must exist"),
        }
    }

    #[test]
    fn respects_multiple_pins() {
        let g = cycle(6);
        // Fix 0 and map 1 -> 5: the reflection through vertex 0.
        match find_automorphism(&g, &[(0, 0), (1, 5)], 10_000) {
            SearchResult::Found(p) => {
                assert_eq!(p.apply(0), 0);
                assert_eq!(p.apply(1), 5);
                assert!(g.is_automorphism(&p));
            }
            _ => panic!("reflection must exist"),
        }
    }

    #[test]
    fn proves_absence_on_path() {
        // Path 0-1-2-3: no automorphism maps an endpoint to an inner vertex.
        let g = ColoredGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)], None);
        assert!(matches!(find_automorphism(&g, &[(0, 1)], 10_000), SearchResult::None));
        // 0 -> 3 (the flip) exists.
        assert!(matches!(find_automorphism(&g, &[(0, 3)], 10_000), SearchResult::Found(_)));
    }

    #[test]
    fn color_mismatch_fails_fast() {
        let g = ColoredGraph::from_edges(2, [(0, 1)], Some(vec![0, 1]));
        assert!(matches!(find_automorphism(&g, &[(0, 1)], 10_000), SearchResult::None));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = cycle(12);
        assert!(matches!(find_automorphism(&g, &[(0, 6)], 0), SearchResult::Exhausted));
    }

    #[test]
    fn asymmetric_graph_has_only_identity() {
        // The asymmetric 7-vertex tree: a path 0-1-2-3-4-5 with an extra
        // leaf 6 on vertex 2; the three leaves sit at pairwise different
        // distances from the unique degree-3 vertex, so only the identity
        // survives.
        let g = ColoredGraph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6)], None);
        match find_automorphism(&g, &[], 100_000) {
            SearchResult::Found(p) => assert!(p.is_identity()),
            _ => panic!("identity always exists"),
        }
    }
}

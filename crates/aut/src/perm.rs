//! Permutations of `0..n`.

use std::fmt;

/// A permutation of `0..n`, stored as an image table.
///
/// # Example
///
/// ```
/// use sbgc_aut::Permutation;
/// let p = Permutation::from_images(vec![1, 2, 0]).expect("valid");
/// assert_eq!(p.apply(0), 1);
/// assert_eq!(p.compose(&p).apply(0), 2);
/// assert_eq!(p.inverse().apply(1), 0);
/// assert!(p.compose(&p).compose(&p).is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    images: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` points.
    pub fn identity(n: usize) -> Self {
        Permutation { images: (0..n as u32).collect() }
    }

    /// Builds a permutation from an image table; returns `None` if the
    /// table is not a bijection of `0..len`.
    pub fn from_images(images: Vec<u32>) -> Option<Self> {
        let n = images.len();
        let mut seen = vec![false; n];
        for &img in &images {
            let i = img as usize;
            if i >= n || seen[i] {
                return None;
            }
            seen[i] = true;
        }
        Some(Permutation { images })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Returns `true` for the empty permutation (on zero points).
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The image of `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point >= len()`.
    pub fn apply(&self, point: usize) -> usize {
        self.images[point] as usize
    }

    /// The image table.
    pub fn images(&self) -> &[u32] {
        &self.images
    }

    /// Returns `true` if every point is fixed.
    pub fn is_identity(&self) -> bool {
        self.images.iter().enumerate().all(|(i, &img)| i == img as usize)
    }

    /// Functional composition: `(self.compose(other)).apply(x) ==
    /// self.apply(other.apply(x))`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "length mismatch");
        Permutation { images: other.images.iter().map(|&m| self.images[m as usize]).collect() }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.images.len()];
        for (i, &img) in self.images.iter().enumerate() {
            inv[img as usize] = i as u32;
        }
        Permutation { images: inv }
    }

    /// The points moved by this permutation (its support), ascending.
    pub fn support(&self) -> Vec<usize> {
        self.images
            .iter()
            .enumerate()
            .filter(|&(i, &img)| i != img as usize)
            .map(|(i, _)| i)
            .collect()
    }

    /// The cycle decomposition, omitting fixed points; each cycle starts at
    /// its smallest element, cycles sorted by first element.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.images.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if seen[start] || self.apply(start) == start {
                seen[start] = true;
                continue;
            }
            let mut cycle = vec![start];
            seen[start] = true;
            let mut cur = self.apply(start);
            while cur != start {
                seen[cur] = true;
                cycle.push(cur);
                cur = self.apply(cur);
            }
            cycles.push(cycle);
        }
        cycles
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{}", self)
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cycles = self.cycles();
        if cycles.is_empty() {
            return write!(f, "()");
        }
        for cycle in cycles {
            write!(f, "(")?;
            for (i, v) in cycle.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_bijections() {
        assert!(Permutation::from_images(vec![0, 0]).is_none());
        assert!(Permutation::from_images(vec![0, 5]).is_none());
        assert!(Permutation::from_images(vec![1, 0]).is_some());
    }

    #[test]
    fn compose_and_inverse() {
        let p = Permutation::from_images(vec![1, 2, 0, 3]).expect("valid");
        let q = Permutation::from_images(vec![0, 1, 3, 2]).expect("valid");
        let pq = p.compose(&q);
        for x in 0..4 {
            assert_eq!(pq.apply(x), p.apply(q.apply(x)));
        }
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn cycle_decomposition() {
        let p = Permutation::from_images(vec![1, 0, 3, 4, 2]).expect("valid");
        assert_eq!(p.cycles(), vec![vec![0, 1], vec![2, 3, 4]]);
        assert_eq!(p.support(), vec![0, 1, 2, 3, 4]);
        assert_eq!(p.to_string(), "(0 1)(2 3 4)");
    }

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(5);
        assert!(id.is_identity());
        assert!(id.cycles().is_empty());
        assert!(id.support().is_empty());
        assert_eq!(id.to_string(), "()");
    }
}

//! The reduction of K-coloring to 0-1 ILP (paper Section 2.5).

use sbgc_formula::{Assignment, Lit, Objective, PbFormula, Var};
use sbgc_graph::{Coloring, Graph};

/// The 0-1 ILP encoding of a K-coloring instance.
///
/// For a graph with `n` vertices and `m` edges and a color bound `K`, the
/// formula has `nK + K` variables and, per the paper, `K·(m + n + 1)` CNF
/// clauses plus `n` PB equality constraints (stored as `2n` normalized
/// inequalities) and the `MIN Σ yⱼ` objective:
///
/// * indicator `x[i][j]` — vertex `i` has color `j`;
/// * per vertex: `Σⱼ x[i][j] = 1`;
/// * per edge `(a, b)`, per color `j`: `(¬x[a][j] ∨ ¬x[b][j])`;
/// * usage indicator `y[j]` with `yⱼ ⇔ ⋁ᵢ x[i][j]`, as `nK` binary
///   clauses `x[i][j] ⇒ y[j]` and `K` long clauses `y[j] ⇒ ⋁ᵢ x[i][j]`.
///
/// # Example
///
/// ```
/// use sbgc_core::ColoringEncoding;
/// use sbgc_graph::Graph;
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let enc = ColoringEncoding::new(&g, 3);
/// let stats = enc.formula().stats();
/// assert_eq!(stats.vars, 3 * 3 + 3);
/// assert_eq!(stats.clauses, 3 * (2 + 3 + 1));
/// ```
#[derive(Clone, Debug)]
pub struct ColoringEncoding {
    formula: PbFormula,
    num_vertices: usize,
    num_colors: usize,
}

impl ColoringEncoding {
    /// Encodes the K-coloring optimization problem for `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(graph: &Graph, k: usize) -> Self {
        assert!(k > 0, "at least one color is required");
        let n = graph.num_vertices();
        let mut formula = PbFormula::with_vars(n * k + k);
        let enc = ColoringEncoding { formula: PbFormula::new(), num_vertices: n, num_colors: k };

        // Exactly one color per vertex.
        for i in 0..n {
            let lits: Vec<Lit> = (0..k).map(|j| enc.x(i, j).positive()).collect();
            formula.add_exactly_one(&lits);
        }
        // Conflict clauses per edge and color.
        for (a, b) in graph.edges() {
            for j in 0..k {
                formula.add_clause([enc.x(a, j).negative(), enc.x(b, j).negative()]);
            }
        }
        // Usage indicators: x[i][j] ⇒ y[j] and y[j] ⇒ ⋁ᵢ x[i][j].
        for j in 0..k {
            let y = enc.y(j).positive();
            for i in 0..n {
                formula.add_implication(enc.x(i, j).positive(), y);
            }
            let mut clause: Vec<Lit> = vec![!y];
            clause.extend((0..n).map(|i| enc.x(i, j).positive()));
            formula.add_clause(clause);
        }
        // Objective: minimize the number of used colors.
        formula.set_objective(Objective::minimize((0..k).map(|j| (1, enc.y(j).positive()))));

        ColoringEncoding { formula, ..enc }
    }

    /// The encoded formula.
    pub fn formula(&self) -> &PbFormula {
        &self.formula
    }

    /// Mutable access to the formula, for appending SBPs.
    pub fn formula_mut(&mut self) -> &mut PbFormula {
        &mut self.formula
    }

    /// Consumes the encoding, returning the formula.
    pub fn into_formula(self) -> PbFormula {
        self.formula
    }

    /// Number of graph vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The color bound K.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// The indicator variable `x[i][j]` (vertex `i` gets color `j`).
    ///
    /// # Panics
    ///
    /// Panics if `vertex` or `color` is out of range.
    pub fn x(&self, vertex: usize, color: usize) -> Var {
        assert!(vertex < self.num_vertices, "vertex out of range");
        assert!(color < self.num_colors, "color out of range");
        Var::from_index(vertex * self.num_colors + color)
    }

    /// The usage variable `y[j]` (color `j` is used by some vertex).
    ///
    /// # Panics
    ///
    /// Panics if `color` is out of range.
    pub fn y(&self, color: usize) -> Var {
        assert!(color < self.num_colors, "color out of range");
        Var::from_index(self.num_vertices * self.num_colors + color)
    }

    /// Decodes a satisfying model into a vertex coloring.
    ///
    /// Returns `None` if the assignment does not give every vertex exactly
    /// one color (which would indicate a solver bug; the exactly-one
    /// constraints forbid it).
    pub fn decode(&self, model: &Assignment) -> Option<Coloring> {
        let mut colors = Vec::with_capacity(self.num_vertices);
        for i in 0..self.num_vertices {
            let mut chosen = None;
            for j in 0..self.num_colors {
                if model.satisfies(self.x(i, j).positive()) {
                    if chosen.is_some() {
                        return None;
                    }
                    chosen = Some(j);
                }
            }
            colors.push(chosen?);
        }
        Some(Coloring::new(colors))
    }

    /// Encodes a coloring back into a total assignment (useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if the coloring does not fit this encoding (wrong vertex
    /// count or a color ≥ K).
    pub fn assignment_for(&self, coloring: &Coloring) -> Assignment {
        assert_eq!(coloring.num_vertices(), self.num_vertices, "vertex count mismatch");
        assert!(coloring.max_color_bound() <= self.num_colors, "color out of range");
        let mut asg = Assignment::new(self.formula.num_vars());
        for i in 0..self.num_vertices {
            for j in 0..self.num_colors {
                asg.assign(self.x(i, j), coloring.color(i) == j);
            }
        }
        let used: Vec<bool> =
            (0..self.num_colors).map(|j| coloring.colors().contains(&j)).collect();
        for (j, &u) in used.iter().enumerate() {
            asg.assign(self.y(j), u);
        }
        // Any SBP auxiliary variables beyond the base encoding are left
        // unassigned; callers that appended SBPs should not use this
        // helper for satisfaction checks on the extended formula.
        asg
    }
}

/// The pure-CNF K-colorability *decision* encoding used for certification.
///
/// Unlike [`ColoringEncoding`], which mixes CNF clauses with PB exactly-one
/// constraints and an objective, this encoding is deliberately restricted to
/// plain clauses so that a refutation of it can be checked as a DRAT proof
/// (`sbgc-proof` speaks only CNF):
///
/// * indicator `x[i][j] = Var(i·k + j)` — vertex `i` has color `j`;
/// * per vertex: at-least-one clause `(x[i][0] ∨ … ∨ x[i][k−1])` plus
///   pairwise at-most-one clauses `(¬x[i][j₁] ∨ ¬x[i][j₂])`;
/// * per edge `(a, b)`, per color `j`: `(¬x[a][j] ∨ ¬x[b][j])`.
///
/// There are no color-usage `y` variables and no objective: the formula is
/// satisfiable iff the graph is k-colorable. It also carries no symmetry-
/// breaking predicates of either kind — SBP soundness is exactly what a
/// certificate must not assume.
///
/// Returns `(num_vars, clauses)` with `num_vars = n·k`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn cnf_decision_formula(graph: &Graph, k: usize) -> (usize, Vec<Vec<Lit>>) {
    assert!(k > 0, "at least one color is required");
    let n = graph.num_vertices();
    let x = |i: usize, j: usize| Var::from_index(i * k + j);
    let mut clauses = Vec::with_capacity(n * (1 + k * (k - 1) / 2) + graph.num_edges() * k);
    for i in 0..n {
        clauses.push((0..k).map(|j| x(i, j).positive()).collect());
        for j1 in 0..k {
            for j2 in j1 + 1..k {
                clauses.push(vec![x(i, j1).negative(), x(i, j2).negative()]);
            }
        }
    }
    for (a, b) in graph.edges() {
        for j in 0..k {
            clauses.push(vec![x(a, j).negative(), x(b, j).negative()]);
        }
    }
    (n * k, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::complete(3)
    }

    #[test]
    fn formula_sizes_match_paper_formulas() {
        // K(m + n + 1) clauses, nK + K variables, 2n normalized PBs.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let k = 4;
        let enc = ColoringEncoding::new(&g, k);
        let stats = enc.formula().stats();
        assert_eq!(stats.vars, 4 * k + k);
        assert_eq!(stats.clauses, k * (5 + 4 + 1));
        assert_eq!(stats.pb_constraints(), 2 * 4);
        assert!(enc.formula().objective().is_some());
    }

    #[test]
    fn proper_coloring_satisfies() {
        let g = triangle();
        let enc = ColoringEncoding::new(&g, 3);
        let good = Coloring::new(vec![0, 1, 2]);
        assert!(enc.formula().is_satisfied_by(&enc.assignment_for(&good)));
    }

    #[test]
    fn improper_coloring_violates() {
        let g = triangle();
        let enc = ColoringEncoding::new(&g, 3);
        let bad = Coloring::new(vec![0, 0, 2]);
        assert!(!enc.formula().is_satisfied_by(&enc.assignment_for(&bad)));
    }

    #[test]
    fn decode_roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let enc = ColoringEncoding::new(&g, 3);
        let c = Coloring::new(vec![0, 1, 0, 2]);
        let asg = enc.assignment_for(&c);
        let decoded = enc.decode(&asg).expect("valid assignment");
        assert_eq!(decoded.colors(), c.colors());
    }

    #[test]
    fn decode_rejects_corrupt_models() {
        use sbgc_formula::Assignment;
        let g = Graph::from_edges(2, [(0, 1)]);
        let enc = ColoringEncoding::new(&g, 2);
        // Vertex 0 claims two colors at once.
        let mut two = Assignment::new(enc.formula().num_vars());
        two.assign(enc.x(0, 0), true);
        two.assign(enc.x(0, 1), true);
        two.assign(enc.x(1, 0), true);
        two.assign(enc.x(1, 1), false);
        assert!(enc.decode(&two).is_none(), "double color must be rejected");
        // Vertex 1 has no color at all.
        let mut none = Assignment::new(enc.formula().num_vars());
        none.assign(enc.x(0, 0), true);
        none.assign(enc.x(0, 1), false);
        none.assign(enc.x(1, 0), false);
        none.assign(enc.x(1, 1), false);
        assert!(enc.decode(&none).is_none(), "missing color must be rejected");
    }

    #[test]
    fn objective_counts_used_colors() {
        let g = Graph::empty(3);
        let enc = ColoringEncoding::new(&g, 3);
        let c = Coloring::new(vec![0, 0, 0]);
        let asg = enc.assignment_for(&c);
        let value = enc.formula().objective().expect("objective").value(&asg);
        assert_eq!(value, Some(1));
    }

    #[test]
    fn variable_indexing_is_dense_and_disjoint() {
        let g = Graph::empty(3);
        let enc = ColoringEncoding::new(&g, 2);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..3 {
            for j in 0..2 {
                assert!(seen.insert(enc.x(i, j).index()));
            }
        }
        for j in 0..2 {
            assert!(seen.insert(enc.y(j).index()));
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(*seen.iter().max().expect("non-empty"), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_bounds_checked() {
        let enc = ColoringEncoding::new(&Graph::empty(2), 2);
        let _ = enc.x(2, 0);
    }

    #[test]
    fn decision_formula_is_pure_cnf_with_expected_size() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let k = 3;
        let (num_vars, clauses) = cnf_decision_formula(&g, k);
        assert_eq!(num_vars, 4 * k);
        // n ALO + n·C(k,2) AMO + m·k conflict clauses.
        assert_eq!(clauses.len(), 4 + 4 * 3 + 5 * k);
        assert!(clauses.iter().all(|c| c.iter().all(|l| l.var().index() < num_vars)));
    }

    #[test]
    fn decision_formula_sat_iff_colorable() {
        use sbgc_formula::Assignment;
        let g = triangle(); // χ = 3
        let (num_vars, clauses) = cnf_decision_formula(&g, 3);
        // The coloring 0,1,2 satisfies every clause.
        let mut asg = Assignment::new(num_vars);
        for (i, &c) in [0usize, 1, 2].iter().enumerate() {
            for j in 0..3 {
                asg.assign(Var::from_index(i * 3 + j), c == j);
            }
        }
        for clause in &clauses {
            assert!(clause.iter().any(|&l| asg.satisfies(l)));
        }
        // At k = 2 the formula is unsatisfiable (checked exhaustively).
        let (nv, cl) = cnf_decision_formula(&g, 2);
        for bits in 0..(1u32 << nv) {
            let asg = Assignment::from_bools((0..nv).map(|v| bits >> v & 1 == 1));
            assert!(cl.iter().any(|c| c.iter().all(|&l| !asg.satisfies(l))));
        }
    }
}

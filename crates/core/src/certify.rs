//! Verified optimality certificates for chromatic numbers.
//!
//! A claim "χ(G) = k" decomposes into two independently checkable halves:
//!
//! 1. **Feasibility** — a proper k-coloring of `G`, verified syntactically
//!    against the edge list ([`Coloring::is_proper`]);
//! 2. **Optimality** — a refutation of (k−1)-colorability, verified by
//!    replaying a DRAT proof against the *pure-CNF decision encoding*
//!    ([`crate::encode::cnf_decision_formula`]) with the independent
//!    checker in `sbgc-proof`.
//!
//! The refutation is always produced on a formula with no symmetry-breaking
//! predicates and no PB constraints: SBP soundness and the PB inference
//! rules are exactly what a certificate must not take on faith. When the
//! solved formula cannot be proof-checked (it carries PB constraints, e.g.
//! the CA construction's cardinality chain), the certificate says
//! [`ProofStatus::Unchecked`] with a reason rather than pretending.
//!
//! The incremental ladder changes nothing here, deliberately. A ladder
//! step's UNSAT is *assumption-relative* (the formula refutes
//! `¬y[target..K]`, not `⊥`) and is solved against an SBP-augmented,
//! possibly unit-committed formula — none of which a DRAT refutation of
//! the original instance may rely on. So certification ignores the
//! session's clause database entirely and re-derives the χ−1 refutation
//! from scratch on the SBP-free pure-CNF encoding below.

use crate::chromatic::{chromatic_number, ChromaticResult};
use crate::encode::cnf_decision_formula;
use crate::flow::SolveOptions;
use sbgc_formula::{Lit, PbFormula};
use sbgc_graph::{Coloring, Graph};
use sbgc_pb::Budget;
use sbgc_proof::{
    check_drat, AddsOnlyProofLogger, DratProof, FileProofLogger, ProofLogger, SharedProof,
    TeeProofLogger,
};
use sbgc_sat::{
    CancelToken, RestartPolicy, SatSolver, SharedClausePool, SharingConfig, SolveOutcome,
};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Outcome of the UNSAT half of a certificate.
#[derive(Clone, Debug, PartialEq)]
pub enum ProofStatus {
    /// A DRAT refutation was produced and accepted by the independent
    /// checker.
    Checked {
        /// Proof steps replayed (additions + deletions).
        steps: usize,
        /// Lemma additions verified RUP/RAT.
        adds: usize,
        /// Deletions applied.
        deletes: usize,
        /// Total literals across all proof steps (a size proxy).
        literals: usize,
        /// Wall-clock seconds spent producing the refutation.
        solve_seconds: f64,
        /// Wall-clock seconds spent checking it.
        check_seconds: f64,
    },
    /// No proof is needed: the claim holds by definition (e.g. χ ≤ 1, where
    /// no smaller color count exists to refute).
    Trivial {
        /// Why no proof is required.
        reason: String,
    },
    /// No checked proof is available — the formula was not checkable (PB
    /// constraints present) or the proving budget ran out. The chromatic
    /// number may still be correct; it is just not *certified*.
    Unchecked {
        /// Why checking was not possible.
        reason: String,
    },
    /// A proof was produced but the checker rejected it, or the certifying
    /// solve contradicted the claimed optimum. This indicates a solver or
    /// logger bug and must fail loudly downstream.
    Rejected {
        /// The checker's error, or the contradiction found.
        error: String,
    },
}

impl ProofStatus {
    /// `true` when optimality is established without trusting any solver:
    /// either an accepted DRAT refutation or a by-definition case.
    pub fn is_verified(&self) -> bool {
        matches!(self, ProofStatus::Checked { .. } | ProofStatus::Trivial { .. })
    }
}

impl std::fmt::Display for ProofStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofStatus::Checked { steps, adds, deletes, .. } => {
                write!(f, "checked ({steps} steps: {adds} adds, {deletes} deletes)")
            }
            ProofStatus::Trivial { reason } => write!(f, "trivial ({reason})"),
            ProofStatus::Unchecked { reason } => write!(f, "unchecked ({reason})"),
            ProofStatus::Rejected { error } => write!(f, "REJECTED ({error})"),
        }
    }
}

/// A machine-checkable certificate that `chromatic_number` colors suffice
/// and `chromatic_number − 1` do not.
#[derive(Clone, Debug)]
pub struct OptimalityCertificate {
    /// The certified chromatic number.
    pub chromatic_number: usize,
    /// The witness coloring at χ colors.
    pub witness: Coloring,
    /// Whether the witness passed independent verification: proper on the
    /// input graph and using exactly χ colors.
    pub witness_verified: bool,
    /// Status of the (χ−1)-uncolorability proof.
    pub unsat: ProofStatus,
    /// The DRAT refutation itself, when one was produced (checked or
    /// rejected). `None` for trivial/unchecked certificates.
    pub proof: Option<DratProof>,
}

impl OptimalityCertificate {
    /// `true` when both halves hold: the witness verified syntactically and
    /// optimality is [`ProofStatus::is_verified`].
    pub fn is_certified(&self) -> bool {
        self.witness_verified && self.unsat.is_verified()
    }
}

/// Attempts to produce a checked DRAT refutation of `formula`.
///
/// Returns [`ProofStatus::Unchecked`] without solving when the formula
/// carries PB constraints (the DRAT calculus speaks only CNF — this is the
/// honest answer for e.g. CA-encoded instances), when the budget runs out,
/// or when the formula turns out satisfiable.
pub fn certify_unsat_formula(
    formula: &PbFormula,
    budget: &Budget,
) -> (ProofStatus, Option<DratProof>) {
    certify_unsat_formula_parallel(formula, budget, 1)
}

/// [`certify_unsat_formula`] racing `workers` diversified CDCL solvers
/// with learned-clause sharing; the first definitive answer cancels the
/// rest.
///
/// All workers log clause additions into one shared DRAT log through
/// adds-only loggers, so the combined log stays checkable whichever
/// worker wins — deletions are suppressed because one worker's deletion
/// could strip a clause a peer's later addition resolves on, and RUP
/// checking is monotone in the clause database. `workers ≤ 1` is
/// exactly the sequential [`certify_unsat_formula`].
pub fn certify_unsat_formula_parallel(
    formula: &PbFormula,
    budget: &Budget,
    workers: usize,
) -> (ProofStatus, Option<DratProof>) {
    if !formula.is_pure_cnf() {
        let status = ProofStatus::Unchecked {
            reason: format!(
                "formula has {} PB constraints; DRAT checking covers only pure CNF",
                formula.pb_constraints().len()
            ),
        };
        return (status, None);
    }
    let clauses: Vec<Vec<Lit>> =
        formula.clauses().iter().map(|c| c.iter().copied().collect()).collect();
    refute_and_check(formula.num_vars(), &clauses, budget, workers)
}

/// Owns the archive logger behind a shared slot so it can be reclaimed
/// (and flushed, with errors captured) after the solver is done with its
/// boxed copy of the handle.
struct StreamHandle<W: std::io::Write + Send>(Arc<Mutex<Option<FileProofLogger<W>>>>);

impl<W: std::io::Write + Send> ProofLogger for StreamHandle<W> {
    fn log_add(&mut self, lits: &[Lit]) {
        if let Some(l) = self.0.lock().unwrap_or_else(PoisonError::into_inner).as_mut() {
            l.log_add(lits);
        }
    }

    fn log_delete(&mut self, lits: &[Lit]) {
        if let Some(l) = self.0.lock().unwrap_or_else(PoisonError::into_inner).as_mut() {
            l.log_delete(lits);
        }
    }
}

/// [`certify_unsat_formula`] that *also* streams the DRAT proof into a
/// file-backed logger while solving, so an archived copy exists outside
/// the process.
///
/// The in-memory proof is still replayed through the independent checker;
/// the stream is the archival artifact. If any write (or the final flush)
/// of the archive fails, a would-be [`ProofStatus::Checked`] result
/// degrades to [`ProofStatus::Unchecked`] naming the I/O error — a
/// certificate whose artifact of record is corrupt must not claim full
/// verification. [`ProofStatus::Rejected`] is never masked by an I/O
/// failure.
pub fn certify_unsat_formula_streamed<W: std::io::Write + Send + 'static>(
    formula: &PbFormula,
    budget: &Budget,
    archive: FileProofLogger<W>,
) -> (ProofStatus, Option<DratProof>) {
    if !formula.is_pure_cnf() {
        let status = ProofStatus::Unchecked {
            reason: format!(
                "formula has {} PB constraints; DRAT checking covers only pure CNF",
                formula.pb_constraints().len()
            ),
        };
        return (status, None);
    }
    let clauses: Vec<Vec<Lit>> =
        formula.clauses().iter().map(|c| c.iter().copied().collect()).collect();
    let num_vars = formula.num_vars();

    let flag = archive.error_flag();
    let slot = Arc::new(Mutex::new(Some(archive)));
    let shared = SharedProof::new();
    let mut solver = SatSolver::new(num_vars);
    solver.set_proof_logger(Box::new(TeeProofLogger::new(
        shared.clone(),
        StreamHandle(slot.clone()),
    )));
    for c in &clauses {
        solver.add_clause(c.iter().copied());
    }
    let solve_start = Instant::now();
    let outcome = solver.solve_with_budget(budget);
    let solve_seconds = solve_start.elapsed().as_secs_f64();
    let proof = shared.take();
    // Reclaim and flush the archive; flush failures land in the error flag
    // like write failures.
    if let Some(logger) = slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
        let _ = logger.into_inner();
    }

    let (status, proof) = match outcome {
        SolveOutcome::Unsat => {
            let check_start = Instant::now();
            let checked = check_drat(num_vars, &clauses, &proof);
            let check_seconds = check_start.elapsed().as_secs_f64();
            let status = match checked {
                Ok(stats) => ProofStatus::Checked {
                    steps: stats.steps,
                    adds: stats.adds,
                    deletes: stats.deletes,
                    literals: proof.total_literals(),
                    solve_seconds,
                    check_seconds,
                },
                Err(e) => ProofStatus::Rejected { error: e.to_string() },
            };
            (status, Some(proof))
        }
        SolveOutcome::Sat(_) => {
            (ProofStatus::Unchecked { reason: "formula is satisfiable".into() }, None)
        }
        SolveOutcome::Unknown => {
            let status = ProofStatus::Unchecked {
                reason: "budget exhausted before a refutation was found".into(),
            };
            (status, None)
        }
    };
    let status = match (flag.get(), status) {
        (Some(err), ProofStatus::Checked { .. }) => {
            ProofStatus::Unchecked { reason: format!("proof stream failed: {err}") }
        }
        (_, status) => status,
    };
    (status, proof)
}

/// Applies the modern-CDCL diversification ladder to a certifying worker:
/// worker 0 is the stock solver, further workers enable adaptive-LBD
/// restarts, chronological backtracking, rephasing and tiered clause
/// reduction in distinct combinations (the same ladder as
/// [`sbgc_pb::portfolio_configs`]).
fn diversify_certifier(solver: &mut SatSolver, index: usize) {
    match index {
        0 => {}
        1 => {
            solver.set_restart_policy(RestartPolicy::AdaptiveLbd { min_interval: 100 });
            solver.set_chrono(true);
            solver.set_rephase(true);
            solver.set_tiered_reduce(true);
        }
        2 => {
            solver.set_rephase(true);
            solver.set_tiered_reduce(true);
        }
        3 => {
            solver.set_restart_policy(RestartPolicy::AdaptiveLbd { min_interval: 50 });
            solver.set_chrono(true);
            solver.set_tiered_reduce(true);
        }
        _ => {
            solver.set_restart_policy(RestartPolicy::Luby { base: 50 << ((index / 4).min(10)) });
            solver.set_tiered_reduce(true);
        }
    }
}

/// Solves `clauses` expecting UNSAT, then replays the logged proof through
/// the independent checker.
///
/// With `workers > 1` this races that many diversified solvers that share
/// learned clauses through a [`SharedClausePool`]; the first definitive
/// answer cancels the rest. The combined DRAT log stays checkable because
/// every worker appends *additions only* (deletions are suppressed by
/// [`AddsOnlyProofLogger`] — one worker's deletion could strip a clause a
/// peer's later addition resolves on) into the same [`SharedProof`], an
/// exporter logs its clause before publishing it to the pool, and an
/// importer re-logs what it attaches: every addition is RUP with respect
/// to the log prefix it lands after, whichever interleaving the race
/// produces, and the checker stops at the first derived empty clause.
fn refute_and_check(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    budget: &Budget,
    workers: usize,
) -> (ProofStatus, Option<DratProof>) {
    let shared = SharedProof::new();
    let solve_start = Instant::now();
    let outcome = if workers <= 1 {
        let mut solver = SatSolver::new(num_vars);
        solver.set_proof_logger(Box::new(shared.clone()));
        for c in clauses {
            solver.add_clause(c.iter().copied());
        }
        solver.solve_with_budget(budget)
    } else {
        race_refutation(num_vars, clauses, budget, workers, &shared)
    };
    let solve_seconds = solve_start.elapsed().as_secs_f64();
    let proof = shared.take();
    match outcome {
        SolveOutcome::Unsat => {
            let check_start = Instant::now();
            let checked = check_drat(num_vars, clauses, &proof);
            let check_seconds = check_start.elapsed().as_secs_f64();
            let status = match checked {
                Ok(stats) => ProofStatus::Checked {
                    steps: stats.steps,
                    adds: stats.adds,
                    deletes: stats.deletes,
                    literals: proof.total_literals(),
                    solve_seconds,
                    check_seconds,
                },
                Err(e) => ProofStatus::Rejected { error: e.to_string() },
            };
            (status, Some(proof))
        }
        SolveOutcome::Sat(_) => {
            (ProofStatus::Unchecked { reason: "formula is satisfiable".into() }, None)
        }
        SolveOutcome::Unknown => {
            let status = ProofStatus::Unchecked {
                reason: "budget exhausted before a refutation was found".into(),
            };
            (status, None)
        }
    }
}

/// The racing half of [`refute_and_check`]: `workers` diversified solvers,
/// one clause pool, adds-only proof logging into `shared`.
fn race_refutation(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    budget: &Budget,
    workers: usize,
    shared: &SharedProof,
) -> SolveOutcome {
    let budget = budget.started();
    let race = CancelToken::new();
    let pool = SharedClausePool::new();
    let first: Mutex<Option<SolveOutcome>> = Mutex::new(None);
    std::thread::scope(|s| {
        for index in 0..workers {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let handle = pool.handle(index, SharingConfig::default());
            let logger = AddsOnlyProofLogger::new(shared.clone());
            let (race, first) = (&race, &first);
            s.spawn(move || {
                let mut solver = SatSolver::new(num_vars);
                solver.set_proof_logger(Box::new(logger));
                solver.set_sharing(handle);
                diversify_certifier(&mut solver, index);
                for c in clauses {
                    solver.add_clause(c.iter().copied());
                }
                let out = solver.solve_with_budget(&worker_budget);
                if matches!(out, SolveOutcome::Sat(_) | SolveOutcome::Unsat) {
                    let mut w = first.lock().unwrap_or_else(PoisonError::into_inner);
                    if w.is_none() {
                        *w = Some(out);
                        race.cancel();
                    }
                }
            });
        }
    });
    first.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or(SolveOutcome::Unknown)
}

/// Certifies an exact chromatic-number result.
///
/// Returns `None` when `result` is only a bound (there is no optimum to
/// certify). For an exact result this verifies the witness syntactically
/// and attempts a checked refutation of (χ−1)-colorability on the SBP-free
/// pure-CNF decision encoding — independent of whatever encoding and solver
/// produced `result`.
///
/// A [`ProofStatus::Rejected`] status (checker refused the proof, or the
/// certifying solver *satisfied* the χ−1 formula) means the claimed optimum
/// is unsupported and should be treated as a bug.
pub fn certify_result(
    graph: &Graph,
    result: &ChromaticResult,
    budget: &Budget,
) -> Option<OptimalityCertificate> {
    certify_result_parallel(graph, result, budget, 1)
}

/// [`certify_result`] with the refutation raced across `workers`
/// clause-sharing CDCL solvers (see [`certify_unsat_formula_parallel`]).
/// `workers ≤ 1` is exactly the sequential [`certify_result`].
pub fn certify_result_parallel(
    graph: &Graph,
    result: &ChromaticResult,
    budget: &Budget,
    workers: usize,
) -> Option<OptimalityCertificate> {
    let (chi, witness) = match result {
        ChromaticResult::Exact { chromatic_number, witness } => (*chromatic_number, witness),
        ChromaticResult::Bounded { .. } => return None,
    };
    let witness_verified = witness.is_proper(graph) && witness.num_colors() == chi;
    let (unsat, proof) = if chi <= 1 {
        let status = ProofStatus::Trivial {
            reason: "χ ≤ 1: there is no smaller color count to refute".into(),
        };
        (status, None)
    } else {
        let (num_vars, clauses) = cnf_decision_formula(graph, chi - 1);
        match refute_and_check(num_vars, &clauses, budget, workers) {
            (ProofStatus::Unchecked { reason }, p) if reason == "formula is satisfiable" => {
                let error =
                    format!("graph is ({})-colorable — claimed χ = {chi} is not optimal", chi - 1);
                (ProofStatus::Rejected { error }, p)
            }
            other => other,
        }
    };
    Some(OptimalityCertificate {
        chromatic_number: chi,
        witness: witness.clone(),
        witness_verified,
        unsat,
        proof,
    })
}

/// Computes the chromatic number and certifies it in one call.
///
/// Runs [`chromatic_number`] with `options`, then [`certify_result`] under
/// the same budget — raced across [`SolveOptions::portfolio_workers`]
/// clause-sharing solvers when the options ask for a portfolio, sequential
/// otherwise. The certificate is `None` exactly when the search only
/// bounded χ.
///
/// # Panics
///
/// Panics if `graph` has no vertices or `options.k == 0` (as
/// [`chromatic_number`] does).
pub fn chromatic_number_certified(
    graph: &Graph,
    options: &SolveOptions,
) -> (ChromaticResult, Option<OptimalityCertificate>) {
    let result = chromatic_number(graph, options);
    let workers = options.portfolio_workers().unwrap_or(1);
    let certificate = certify_result_parallel(graph, &result, &options.budget, workers);
    (result, certificate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbp::SbpMode;
    use sbgc_graph::gen::{mycielski, queens};

    fn certify(graph: &Graph, k: usize) -> OptimalityCertificate {
        let (result, cert) = chromatic_number_certified(graph, &SolveOptions::new(k));
        assert!(result.exact().is_some(), "expected an exact result");
        cert.expect("exact result must yield a certificate")
    }

    #[test]
    fn complete_graph_certificate_checks() {
        let cert = certify(&Graph::complete(4), 6);
        assert_eq!(cert.chromatic_number, 4);
        assert!(cert.witness_verified);
        assert!(matches!(cert.unsat, ProofStatus::Checked { .. }), "{}", cert.unsat);
        assert!(cert.is_certified());
        assert!(cert.proof.is_some());
    }

    #[test]
    fn odd_cycle_certificate_checks() {
        let cert = certify(&Graph::cycle(7), 4);
        assert_eq!(cert.chromatic_number, 3);
        assert!(cert.is_certified());
    }

    #[test]
    fn mycielski_certificate_checks() {
        let cert = certify(&mycielski(3), 6);
        assert_eq!(cert.chromatic_number, 4);
        assert!(cert.is_certified());
        if let ProofStatus::Checked { adds, .. } = cert.unsat {
            assert!(adds > 0, "a nontrivial refutation must contain lemmas");
        }
    }

    #[test]
    fn queens5_certificate_checks() {
        let cert = certify(&queens(5, 5), 6);
        assert_eq!(cert.chromatic_number, 5);
        assert!(cert.is_certified());
    }

    #[test]
    fn edgeless_graph_is_trivially_certified() {
        let cert = certify(&Graph::empty(3), 3);
        assert_eq!(cert.chromatic_number, 1);
        assert!(matches!(cert.unsat, ProofStatus::Trivial { .. }));
        assert!(cert.is_certified());
        assert!(cert.proof.is_none());
    }

    #[test]
    fn certificate_is_independent_of_sbp_mode() {
        // Whatever (possibly SBP-heavy) flow produced the result, the
        // certificate re-derives optimality on the SBP-free encoding.
        let g = mycielski(3);
        for mode in [SbpMode::Li, SbpMode::NuSc] {
            let opts = SolveOptions::new(6).with_sbp_mode(mode);
            let (result, cert) = chromatic_number_certified(&g, &opts);
            assert_eq!(result.exact(), Some(4), "{mode}");
            assert!(cert.expect("certificate").is_certified(), "{mode}");
        }
    }

    #[test]
    fn bounded_results_yield_no_certificate() {
        let g = queens(6, 6);
        let opts = SolveOptions::new(7).with_budget(Budget::unlimited().with_max_conflicts(1));
        let (result, cert) = chromatic_number_certified(&g, &opts);
        if result.exact().is_none() {
            assert!(cert.is_none());
        }
    }

    #[test]
    fn overclaimed_optimum_is_rejected() {
        // Claim χ = 4 for an even cycle (true χ = 2): the certifying solver
        // finds a 3-coloring of the "χ−1" formula and must flag the claim.
        let g = Graph::cycle(6);
        let bogus = ChromaticResult::Exact {
            chromatic_number: 4,
            witness: Coloring::new(vec![0, 1, 2, 3, 0, 1]),
        };
        let cert = certify_result(&g, &bogus, &Budget::unlimited()).expect("exact claim");
        assert!(matches!(cert.unsat, ProofStatus::Rejected { .. }), "{}", cert.unsat);
        assert!(!cert.is_certified());
    }

    #[test]
    fn pb_bearing_formula_reports_unchecked() {
        // The optimization encoding keeps per-vertex exactly-one PB pairs,
        // so its refutations cannot be DRAT-checked; the honest answer is
        // Unchecked with a reason, not a fake pass.
        let enc = crate::ColoringEncoding::new(&Graph::complete(4), 2);
        let (status, proof) = certify_unsat_formula(enc.formula(), &Budget::unlimited());
        match status {
            ProofStatus::Unchecked { reason } => assert!(reason.contains("PB")),
            other => panic!("expected Unchecked, got {other}"),
        }
        assert!(proof.is_none());
    }

    #[test]
    fn pure_cnf_formula_certifies() {
        let (num_vars, clauses) = cnf_decision_formula(&Graph::complete(4), 3);
        let mut f = PbFormula::with_vars(num_vars);
        for c in &clauses {
            f.add_clause(c.iter().copied());
        }
        let (status, proof) = certify_unsat_formula(&f, &Budget::unlimited());
        assert!(matches!(status, ProofStatus::Checked { .. }), "{status}");
        assert!(proof.is_some());
    }

    /// A `Write` whose buffer outlives the logger, so tests can inspect
    /// what was streamed after `into_inner` consumed the writer.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn unsat_cnf(graph: &Graph, k: usize) -> PbFormula {
        let (num_vars, clauses) = cnf_decision_formula(graph, k);
        let mut f = PbFormula::with_vars(num_vars);
        for c in &clauses {
            f.add_clause(c.iter().copied());
        }
        f
    }

    #[test]
    fn streamed_certificate_archives_the_proof() {
        let f = unsat_cnf(&Graph::complete(4), 3);
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let logger = FileProofLogger::new(buf.clone());
        let (status, proof) = certify_unsat_formula_streamed(&f, &Budget::unlimited(), logger);
        assert!(matches!(status, ProofStatus::Checked { .. }), "{status}");
        let proof = proof.expect("refutation");
        let streamed = String::from_utf8(
            buf.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone(),
        )
        .expect("utf8 drat");
        assert!(!streamed.is_empty(), "the archive must receive the proof");
        // Every proof step is one archived line ending in the DRAT "0".
        assert_eq!(streamed.lines().count(), proof.steps().len());
        assert!(streamed.lines().all(|l| l.ends_with(" 0") || l == "0"));
    }

    #[test]
    fn failed_proof_stream_degrades_certificate() {
        use sbgc_obs::FaultPlan;
        let f = unsat_cnf(&Graph::complete(4), 3);
        // Fail the very first archive write.
        let plan = FaultPlan::new(1).with_proof_write_failure(1);
        let logger = FileProofLogger::new(std::io::sink()).with_fault_plan(&plan);
        let (status, proof) = certify_unsat_formula_streamed(&f, &Budget::unlimited(), logger);
        match status {
            ProofStatus::Unchecked { reason } => {
                assert!(reason.contains("proof stream failed"), "{reason}");
            }
            other => panic!("a corrupt archive must degrade the status, got {other}"),
        }
        assert!(proof.is_some(), "the in-memory proof is still produced");
    }

    #[test]
    fn streamed_sat_formula_stays_unchecked_not_rejected() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_clause([a]);
        let logger = FileProofLogger::new(std::io::sink());
        let (status, proof) = certify_unsat_formula_streamed(&f, &Budget::unlimited(), logger);
        assert!(matches!(status, ProofStatus::Unchecked { .. }), "{status}");
        assert!(proof.is_none());
    }

    #[test]
    fn racing_certificate_checks_with_sharing() {
        // Four diversified, clause-sharing workers append into one
        // adds-only DRAT log; the interleaved proof must still replay
        // through the independent checker, whichever worker won.
        let f = unsat_cnf(&queens(5, 5), 4);
        let (status, proof) = certify_unsat_formula_parallel(&f, &Budget::unlimited(), 4);
        match status {
            ProofStatus::Checked { adds, .. } => {
                assert!(adds > 0, "a nontrivial refutation must contain lemmas");
            }
            other => panic!("expected Checked, got {other}"),
        }
        let proof = proof.expect("refutation");
        assert_eq!(proof.num_deletes(), 0, "racing proofs are adds-only");
    }

    #[test]
    fn racing_certificate_agrees_with_sequential() {
        let f = unsat_cnf(&mycielski(3), 3);
        for workers in [1, 2, 3] {
            let (status, _) = certify_unsat_formula_parallel(&f, &Budget::unlimited(), workers);
            assert!(matches!(status, ProofStatus::Checked { .. }), "workers={workers}: {status}");
        }
    }

    #[test]
    fn racing_sat_formula_stays_unchecked() {
        // A satisfiable formula must come back "satisfiable", not a bogus
        // refutation, no matter how many workers race it.
        let f = unsat_cnf(&Graph::cycle(6), 3); // even cycle IS 3-colorable
        let (status, proof) = certify_unsat_formula_parallel(&f, &Budget::unlimited(), 3);
        match status {
            ProofStatus::Unchecked { reason } => assert!(reason.contains("satisfiable")),
            other => panic!("expected Unchecked, got {other}"),
        }
        assert!(proof.is_none());
    }

    #[test]
    fn portfolio_options_race_the_certificate() {
        // chromatic_number_certified with parallelism > 1 must route the
        // refutation through the racing path and still certify.
        let g = mycielski(3);
        let opts = SolveOptions::new(6).with_parallelism(3);
        let (result, cert) = chromatic_number_certified(&g, &opts);
        assert_eq!(result.exact(), Some(4));
        let cert = cert.expect("certificate");
        assert!(cert.is_certified(), "{}", cert.unsat);
    }

    #[test]
    fn budget_exhaustion_reports_unchecked() {
        let (num_vars, clauses) = cnf_decision_formula(&queens(6, 6), 6);
        let mut f = PbFormula::with_vars(num_vars);
        for c in &clauses {
            f.add_clause(c.iter().copied());
        }
        let (status, _) = certify_unsat_formula(&f, &Budget::unlimited().with_max_conflicts(0));
        match status {
            ProofStatus::Unchecked { reason } => assert!(reason.contains("budget")),
            other => panic!("expected Unchecked, got {other}"),
        }
    }
}

//! Heuristic primal/dual bounds racing the exact search.
//!
//! The paper's K-selection procedure (Section 4.1) brackets χ with a
//! one-shot greedy pass: a greedy clique for the lower bound and DSATUR
//! for the upper bound. That bracket is what the exact ladder then has to
//! walk down rung by rung — every rung between DSATUR and χ is a full
//! incremental SAT query. This module tightens the bracket *before* the
//! first query by racing three local-search workers from `sbgc-heur`:
//!
//! * **TabuCol** — reactive tabu search descending one color at a time
//!   from the DSATUR witness;
//! * **PartialCol** — the partial-coloring variant of the same descent,
//!   attacking the identical targets from a different neighborhood;
//! * **clique search** — penalty-driven multi-restart clique growth that
//!   lifts the lower bound beyond the one-shot greedy clique.
//!
//! The workers run on scoped threads under the same discipline as the
//! CDCL portfolio (`sbgc-pb`): each body is wrapped in `catch_unwind` so
//! a panicking heuristic dies alone, shared state is locked
//! poison-tolerantly, and a [`CancelToken`] stops the survivors as soon
//! as the bracket collapses (`lower == upper` proves χ without any SAT
//! query at all).
//!
//! # Trust boundary
//!
//! Heuristic results are *suggestions*, not proofs. Everything a worker
//! offers is re-validated against the graph before it can touch the
//! shared bracket: colorings must be proper, cover every vertex, and use
//! exactly the claimed number of colors; cliques must be duplicate-free
//! and pairwise adjacent. A result that fails validation is rejected,
//! counted in [`HeuristicOutcome::rejected_witnesses`], and kills its
//! worker (an implementation that emits one improper coloring cannot be
//! trusted for the next one either). This matters because the validated
//! upper bound is later committed into the solver as root-level units
//! ([`crate::session::ColoringSession::commit_upper_bound`]) — an
//! unchecked bound would strengthen the formula unsoundly (see
//! `DESIGN.md` §4i).
//!
//! # Determinism
//!
//! Every worker is seeded by [`sbgc_heur::derive_seed`] from a fixed
//! stream constant and its worker index, runs a fixed iteration budget,
//! and uses no timing- or hash-order-dependent state. Cancellation can
//! only stop a worker *earlier*, and fires only once the bracket is
//! collapsed — a state no further offer can improve — so the final
//! `(lower, upper)` pair is identical across runs on the same input.

use crate::chromatic::ChromaticBounds;
use crate::flow::SolveOptions;
use sbgc_graph::{Coloring, Graph};
use sbgc_heur::{clique_search, derive_seed, partialcol, tabucol_from, SplitMix64};
use sbgc_obs::{FaultPlan, HeuristicsTelemetry, SearchCounters, WorkerTelemetry};
use sbgc_sat::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Base of the per-worker seed derivation. The heuristic race has no
/// user-facing seed knob: reproducibility of the *default* configuration
/// is the point, so the base is a constant and workers differ only by
/// their index stream (see the module docs on determinism).
const SEED_BASE: u64 = 0x5bc0_c01a_b0a7_ed01;

/// Iterations each descent worker may spend per target k.
fn iters_per_level(graph: &Graph) -> u64 {
    20_000 + 400 * graph.num_vertices() as u64
}

/// Restarts the clique worker may spend in total.
fn clique_restarts(graph: &Graph) -> u64 {
    64 + graph.num_vertices() as u64
}

/// The tightened bracket produced by [`race_heuristics`], together with
/// the fault-tolerance tallies the caller folds into telemetry.
#[derive(Clone, Debug)]
pub struct HeuristicOutcome {
    /// Best validated lower bound (size of `clique`).
    pub lower: usize,
    /// Best validated upper bound (colors used by `witness`).
    pub upper: usize,
    /// A re-validated proper coloring using exactly `upper` colors.
    pub witness: Coloring,
    /// A re-validated clique of size `lower` witnessing the lower bound.
    pub clique: Vec<usize>,
    /// Workers that died — by panic or by offering an invalid result.
    pub failed_workers: usize,
    /// Offers rejected at the trust boundary (improper colorings,
    /// non-cliques). Always `0` unless a worker is buggy or a
    /// [`FaultPlan`] injected a corruption.
    pub rejected_witnesses: u64,
}

/// Shared bracket the workers race on. Invariant between lock
/// acquisitions: `witness` is proper with `upper` colors, `clique` is a
/// real clique of size `lower`, and `lower <= upper` (both sides are
/// validated against the same graph, and a clique never exceeds the size
/// of any proper coloring).
struct SharedBracket {
    lower: usize,
    upper: usize,
    witness: Coloring,
    clique: Vec<usize>,
    upper_by: Option<usize>,
    lower_by: Option<usize>,
    rejected: u64,
}

fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Corrupts a coloring the way a buggy heuristic would: merge the two
/// endpoints of the first edge into one class, producing a monochromatic
/// edge. Used only under [`FaultPlan::improper_witness`] to prove the
/// trust boundary rejects it. Edge-free graphs are returned unchanged
/// (there is no way to make their colorings improper).
fn corrupt_coloring(graph: &Graph, coloring: Coloring) -> Coloring {
    let mut colors = coloring.colors().to_vec();
    for u in 0..graph.num_vertices() {
        if let Some(&v) = graph.neighbors(u).first() {
            colors[u] = colors[v as usize];
            return Coloring::new(colors);
        }
    }
    coloring
}

/// Re-validates a clique offer: in-range, duplicate-free, pairwise
/// adjacent.
fn is_valid_clique(graph: &Graph, clique: &[usize]) -> bool {
    let n = graph.num_vertices();
    if clique.iter().any(|&v| v >= n) {
        return false;
    }
    let mut sorted = clique.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != clique.len() {
        return false;
    }
    for (i, &u) in clique.iter().enumerate() {
        for &v in &clique[i + 1..] {
            if !graph.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Collapses a proper coloring onto `k` classes to seed the next descent
/// level: vertices in classes `>= k` are reassigned uniformly at random.
/// The result is usually improper — that is the starting point TabuCol
/// repairs.
fn collapse_to_k(colors: &[usize], k: usize, rng: &mut SplitMix64) -> Vec<usize> {
    colors.iter().map(|&c| if c < k { c } else { rng.below(k as u64) as usize }).collect()
}

/// Races the heuristic workers against each other to tighten `seed`
/// (the one-shot greedy bracket from [`crate::chromatic::bounds`]).
/// Equivalent to [`race_heuristics_instrumented`] without fault
/// injection.
pub fn race_heuristics(
    graph: &Graph,
    options: &SolveOptions,
    seed: &ChromaticBounds,
) -> HeuristicOutcome {
    race_heuristics_instrumented(graph, options, seed, None)
}

/// [`race_heuristics`] with a deterministic [`FaultPlan`], used by the
/// chaos suite to prove that panicking workers and improper witnesses
/// are contained (see `docs/ROBUSTNESS.md`). Worker indices for the
/// plan: `0` = TabuCol, `1` = PartialCol, `2` = clique search.
pub fn race_heuristics_instrumented(
    graph: &Graph,
    options: &SolveOptions,
    seed: &ChromaticBounds,
    fault: Option<&FaultPlan>,
) -> HeuristicOutcome {
    let start = Instant::now();
    let token = CancelToken::new();
    let shared = Mutex::new(SharedBracket {
        lower: seed.lower,
        upper: seed.upper,
        witness: seed.witness.clone(),
        clique: Vec::new(),
        upper_by: None,
        lower_by: None,
        rejected: 0,
    });
    if seed.lower >= seed.upper {
        token.cancel();
    }

    // Offers a coloring to the shared bracket. Validation happens here,
    // at the boundary between untrusted worker output and trusted state;
    // an invalid offer is counted and reported back as a fatal error.
    let offer_coloring = |worker: usize, coloring: Coloring| -> Result<(), String> {
        let coloring = match fault {
            Some(plan) if plan.improper_witness(worker) => corrupt_coloring(graph, coloring),
            _ => coloring,
        };
        let coloring = coloring.compacted();
        if coloring.num_vertices() != graph.num_vertices() || !coloring.is_proper(graph) {
            lock_tolerant(&shared).rejected += 1;
            return Err("improper coloring rejected at the trust boundary".to_string());
        }
        let colors = coloring.num_colors();
        let mut s = lock_tolerant(&shared);
        if colors < s.upper {
            s.upper = colors;
            s.witness = coloring;
            s.upper_by = Some(worker);
            if s.upper <= s.lower {
                token.cancel();
            }
        }
        Ok(())
    };

    // Offers a clique, same contract as `offer_coloring`.
    let offer_clique = |worker: usize, clique: Vec<usize>| -> Result<(), String> {
        if !is_valid_clique(graph, &clique) {
            lock_tolerant(&shared).rejected += 1;
            return Err("non-clique rejected at the trust boundary".to_string());
        }
        let mut s = lock_tolerant(&shared);
        if clique.len() > s.lower {
            s.lower = clique.len();
            s.clique = clique;
            s.lower_by = Some(worker);
            if s.upper <= s.lower {
                token.cancel();
            }
        }
        Ok(())
    };

    // Descent loop shared by both coloring workers: repeatedly attack one
    // color below the best validated upper bound until a level resists.
    let descend =
        |worker: usize, attempt: &mut dyn FnMut(usize) -> Option<Coloring>| -> Result<(), String> {
            loop {
                let (lower, upper) = {
                    let s = lock_tolerant(&shared);
                    (s.lower, s.upper)
                };
                if upper <= 1 || upper - 1 < lower || token.is_cancelled() {
                    return Ok(());
                }
                let target = upper - 1;
                match attempt(target) {
                    Some(coloring) => offer_coloring(worker, coloring)?,
                    None => return Ok(()),
                }
            }
        };

    let iters = iters_per_level(graph);
    let mut telemetry: Vec<WorkerTelemetry> = Vec::new();
    let mut failed_workers = 0usize;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (index, kind) in ["tabucol", "partialcol", "clique"].iter().enumerate() {
            let token = token.clone();
            let shared = &shared;
            let offer_clique = &offer_clique;
            let descend = &descend;
            let witness = seed.witness.clone();
            let worker_seed = derive_seed(SEED_BASE, index as u64);
            let handle = scope.spawn(move || {
                let run_start = Instant::now();
                let body = catch_unwind(AssertUnwindSafe(|| match index {
                    0 => {
                        let mut rng = SplitMix64::new(worker_seed);
                        let mut current = witness.colors().to_vec();
                        descend(index, &mut |target| {
                            if let Some(plan) = fault {
                                if plan.worker_panic(index).is_some() {
                                    panic!("fault injection: heuristic worker {index} panics");
                                }
                            }
                            let start = collapse_to_k(&current, target, &mut rng);
                            let found =
                                tabucol_from(graph, target, start, &mut rng, iters, || {
                                    token.is_cancelled()
                                })?;
                            current = found.colors().to_vec();
                            Some(found)
                        })
                    }
                    1 => {
                        let mut stream = 0u64;
                        descend(index, &mut |target| {
                            if let Some(plan) = fault {
                                if plan.worker_panic(index).is_some() {
                                    panic!("fault injection: heuristic worker {index} panics");
                                }
                            }
                            let level_seed = derive_seed(worker_seed, stream);
                            stream += 1;
                            partialcol(graph, target, level_seed, iters, || token.is_cancelled())
                        })
                    }
                    _ => {
                        if let Some(plan) = fault {
                            if plan.worker_panic(index).is_some() {
                                panic!("fault injection: heuristic worker {index} panics");
                            }
                        }
                        let clique =
                            clique_search(graph, worker_seed, clique_restarts(graph), || {
                                token.is_cancelled()
                            });
                        offer_clique(index, clique)
                    }
                }));
                let failed = match body {
                    Ok(Ok(())) => None,
                    Ok(Err(message)) => Some(message),
                    Err(payload) => Some(panic_summary(payload.as_ref())),
                };
                let won = {
                    let s = lock_tolerant(shared);
                    s.upper_by == Some(index) || s.lower_by == Some(index)
                };
                WorkerTelemetry {
                    index,
                    kind: kind.to_string(),
                    seed: worker_seed,
                    config: format!("{kind} (heuristic race)"),
                    search: SearchCounters::default(),
                    won,
                    cancel_latency: None,
                    run_time: run_start.elapsed(),
                    failed,
                    query: None,
                }
            });
            handles.push(handle);
        }
        for handle in handles {
            match handle.join() {
                Ok(record) => {
                    if record.failed.is_some() {
                        failed_workers += 1;
                    }
                    telemetry.push(record);
                }
                // `catch_unwind` already contains worker panics; a join
                // error would mean the telemetry assembly itself died.
                Err(_) => failed_workers += 1,
            }
        }
    });

    let s = lock_tolerant(&shared);
    let outcome = HeuristicOutcome {
        lower: s.lower,
        upper: s.upper,
        witness: s.witness.clone(),
        clique: s.clique.clone(),
        failed_workers,
        rejected_witnesses: s.rejected,
    };
    drop(s);

    if options.recorder.is_enabled() {
        for record in telemetry {
            options.recorder.record_worker(record);
        }
        options.recorder.record_heuristics(HeuristicsTelemetry {
            dsatur_upper: seed.upper,
            greedy_clique_lower: seed.lower,
            upper: outcome.upper,
            lower: outcome.lower,
            rungs_skipped: seed.upper - outcome.upper,
            workers: 3,
            rejected_witnesses: outcome.rejected_witnesses,
            failed_workers: outcome.failed_workers as u64,
            seconds: start.elapsed().as_secs_f64(),
        });
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromatic::bounds;
    use sbgc_graph::gen;

    fn options() -> SolveOptions {
        SolveOptions::new(8)
    }

    fn complete(n: usize) -> Graph {
        gen::complete_multipartite(&vec![1; n])
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// Mycielski graphs keep the gap open (triangle-free, so clique
    /// search is stuck at 2-3 while χ grows), which makes the race fully
    /// deterministic: no cancellation can fire.
    #[test]
    fn race_tightens_the_dsatur_bracket_on_mycielski() {
        let g = gen::mycielski(4);
        let b = bounds(&g);
        let out = race_heuristics(&g, &options(), &b);
        assert!(out.upper <= b.upper, "heuristics must never loosen the bound");
        assert!(out.lower >= b.lower);
        assert!(out.lower <= out.upper);
        assert!(out.witness.is_proper(&g));
        assert_eq!(out.witness.num_colors(), out.upper);
        assert!(is_valid_clique(&g, &out.clique));
        assert_eq!(out.failed_workers, 0);
        assert_eq!(out.rejected_witnesses, 0);
        // χ(M4) = 5: TabuCol reliably lands the optimum on 23 vertices.
        assert_eq!(out.upper, 5);
    }

    #[test]
    fn race_closes_the_gap_on_complete_graphs() {
        let g = complete(7);
        let b = bounds(&g);
        // Greedy already closes K7; feed the race an artificially loose
        // bracket to prove it re-closes the gap from both sides.
        let loose = ChromaticBounds { lower: 2, upper: b.upper, witness: b.witness.clone() };
        let out = race_heuristics(&g, &options(), &loose);
        assert_eq!(out.lower, 7, "clique search must find K7 itself");
        assert_eq!(out.upper, 7);
        assert_eq!(out.clique.len(), 7);
    }

    #[test]
    fn race_is_deterministic_across_runs() {
        let g = gen::mycielski(3);
        let b = bounds(&g);
        let a = race_heuristics(&g, &options(), &b);
        let c = race_heuristics(&g, &options(), &b);
        assert_eq!(a.lower, c.lower);
        assert_eq!(a.upper, c.upper);
        assert_eq!(a.rejected_witnesses, c.rejected_witnesses);
        assert_eq!(a.failed_workers, c.failed_workers);
    }

    #[test]
    fn improper_witness_is_rejected_and_counted() {
        // A deliberately loose bracket on C5 (χ = 3, one color per vertex
        // as the witness) forces the TabuCol worker to find and offer an
        // improvement — which the fault plan then corrupts in flight.
        let g = cycle(5);
        let b = ChromaticBounds { lower: 2, upper: 5, witness: Coloring::new((0..5).collect()) };
        assert!(b.witness.is_proper(&g));
        let plan = FaultPlan::new(7).with_improper_witness(0);
        let out = race_heuristics_instrumented(&g, &options(), &b, Some(&plan));
        assert!(out.rejected_witnesses >= 1, "the corrupted offer must be rejected");
        assert!(out.failed_workers >= 1, "an untrustworthy worker is retired");
        // The bracket stays sound: the surviving workers' bounds hold.
        assert!(out.witness.is_proper(&g));
        assert_eq!(out.witness.num_colors(), out.upper);
        assert!(out.lower <= out.upper);
    }

    #[test]
    fn panicking_worker_dies_alone() {
        let g = gen::mycielski(3);
        let b = bounds(&g);
        let plan = FaultPlan::new(3).with_worker_panic(2, 1);
        let out = race_heuristics_instrumented(&g, &options(), &b, Some(&plan));
        assert_eq!(out.failed_workers, 1);
        assert!(out.witness.is_proper(&g), "coloring workers keep racing");
        assert!(out.upper <= b.upper);
    }

    #[test]
    fn collapsed_seed_bracket_short_circuits() {
        let g = complete(5);
        let b = bounds(&g);
        assert_eq!(b.lower, b.upper);
        let out = race_heuristics(&g, &options(), &b);
        assert_eq!(out.lower, 5);
        assert_eq!(out.upper, 5);
    }

    #[test]
    fn corrupt_coloring_makes_a_monochromatic_edge() {
        let g = cycle(5);
        let proper = sbgc_graph::algo::dsatur(&g);
        assert!(proper.is_proper(&g));
        let bad = corrupt_coloring(&g, proper);
        assert!(!bad.is_proper(&g));
    }

    #[test]
    fn clique_validation_rejects_non_cliques() {
        let g = cycle(6);
        assert!(is_valid_clique(&g, &[0, 1]));
        assert!(!is_valid_clique(&g, &[0, 1, 2]), "a path is not a triangle");
        assert!(!is_valid_clique(&g, &[0, 0]), "duplicates are rejected");
        assert!(!is_valid_clique(&g, &[0, 99]), "out-of-range is rejected");
    }
}

//! Exact chromatic numbers via the paper's K-selection procedure.
//!
//! Since the persistent-session refactor, the default path for every
//! CDCL-backed configuration (including the portfolio) is the
//! *incremental ladder*: encode once at `K = min(options.k, DSATUR)`,
//! then walk the upper bound down with assumption queries against
//! long-lived solver state ([`crate::session::ColoringSession`]). Learned
//! clauses survive from one ladder step to the next instead of being
//! re-derived per K. The one-shot optimization run remains for the CPLEX
//! baseline and for instance-dependent (Shatter) SBPs, which the session
//! cannot drive soundly (see `DESIGN.md` §4g).

use crate::error::SolveError;
use crate::flow::{try_solve_coloring, ColoringOutcome, SolveOptions};
use crate::session::{ColoringSession, SessionAnswer};
use sbgc_graph::{algo, Coloring, Graph};
use sbgc_pb::ExhaustReason;

/// Cheap combinatorial bounds on the chromatic number.
#[derive(Clone, Debug)]
pub struct ChromaticBounds {
    /// Clique lower bound (greedy max clique).
    pub lower: usize,
    /// DSATUR upper bound.
    pub upper: usize,
    /// The DSATUR coloring that witnesses the upper bound.
    pub witness: Coloring,
}

/// Computes the clique lower bound and DSATUR upper bound — step 1 of the
/// paper's per-instance K-selection procedure (Section 4.1).
pub fn bounds(graph: &Graph) -> ChromaticBounds {
    let witness = algo::dsatur(graph);
    let lower = algo::greedy_clique(graph).len().max(usize::from(graph.num_vertices() > 0));
    ChromaticBounds { lower, upper: witness.num_colors(), witness }
}

/// The bracket the exact search actually starts from: the one-shot greedy
/// [`bounds`], tightened by the heuristic race of [`crate::heuristics`]
/// when `options.heuristics` allows it (the default). The race's TabuCol
/// and PartialCol descents cap the upper bound below DSATUR and its
/// clique search lifts the lower bound beyond the greedy clique; every
/// heuristic result is re-validated against the graph before it may
/// tighten the bracket (see `DESIGN.md` §4i).
///
/// # Errors
///
/// [`SolveError::BoundContradiction`] if the tightened bracket crosses
/// (`upper < lower`) — impossible while both validators are sound, so it
/// is surfaced instead of being clamped away.
pub fn initial_bounds(
    graph: &Graph,
    options: &SolveOptions,
) -> Result<ChromaticBounds, SolveError> {
    let b = bounds(graph);
    if !options.heuristics || b.lower >= b.upper {
        return Ok(b);
    }
    let h = crate::heuristics::race_heuristics(graph, options, &b);
    if h.upper < h.lower {
        return Err(SolveError::BoundContradiction {
            lower: h.lower,
            upper: h.upper,
            detail: "heuristic race produced a crossed bracket".to_string(),
        });
    }
    Ok(ChromaticBounds { lower: h.lower, upper: h.upper, witness: h.witness })
}

/// Result of [`chromatic_number`].
#[derive(Clone, Debug)]
pub enum ChromaticResult {
    /// Chromatic number determined exactly, with a witness coloring.
    Exact {
        /// χ(G).
        chromatic_number: usize,
        /// A proper coloring using χ(G) colors.
        witness: Coloring,
    },
    /// The budget ran out; χ is within the given (inclusive) bounds.
    Bounded {
        /// Best known lower bound.
        lower: usize,
        /// Best known upper bound, witnessed by `witness`.
        upper: usize,
        /// A proper coloring using `upper` colors.
        witness: Coloring,
    },
}

impl ChromaticResult {
    /// The exact chromatic number, if determined.
    pub fn exact(&self) -> Option<usize> {
        match self {
            ChromaticResult::Exact { chromatic_number, .. } => Some(*chromatic_number),
            ChromaticResult::Bounded { .. } => None,
        }
    }

    /// The best witness coloring available.
    pub fn witness(&self) -> &Coloring {
        match self {
            ChromaticResult::Exact { witness, .. } | ChromaticResult::Bounded { witness, .. } => {
                witness
            }
        }
    }

    /// The proven inclusive bracket `[lower, upper]` on χ — collapsed to a
    /// point for exact results. Even a budget-starved run returns an
    /// honest bracket: the lower bound is proven (clique or refutation),
    /// the upper bound is witnessed by a verified coloring.
    pub fn bracket(&self) -> (usize, usize) {
        match self {
            ChromaticResult::Exact { chromatic_number, .. } => {
                (*chromatic_number, *chromatic_number)
            }
            ChromaticResult::Bounded { lower, upper, .. } => (*lower, *upper),
        }
    }
}

/// Result of [`chromatic_number_outcome`]: the chromatic answer plus the
/// reason the search stopped when it did not finish. Degrading gracefully
/// means a budget-starved query still returns everything it proved — the
/// bracket, the witness, and *which* limit stopped it.
#[derive(Clone, Debug)]
pub struct ChromaticOutcome {
    /// The chromatic answer (exact or bracketed).
    pub result: ChromaticResult,
    /// Why the search stopped early, when `result` is bounded because a
    /// limit was hit; `None` for exact results and for brackets that are
    /// final for other reasons (e.g. a K-cap below χ).
    pub exhaust: Option<ExhaustReason>,
}

impl ChromaticOutcome {
    /// The exact chromatic number, if determined.
    pub fn exact(&self) -> Option<usize> {
        self.result.exact()
    }

    /// The best witness coloring available.
    pub fn witness(&self) -> &Coloring {
        self.result.witness()
    }

    /// The proven inclusive bracket `[lower, upper]` on χ.
    pub fn bracket(&self) -> (usize, usize) {
        self.result.bracket()
    }
}

/// Computes the chromatic number exactly, following the paper's procedure:
/// take the DSATUR upper bound as K (clamped by `options.k` if smaller),
/// then search. By default the greedy bracket is first tightened by the
/// heuristic race of [`initial_bounds`] (disable with
/// [`SolveOptions::without_heuristics`] for the pure paper procedure). For every CDCL-backed configuration the search is the
/// incremental ladder of [`chromatic_number_incremental`] (encode once,
/// reuse learned clauses across queries); the CPLEX baseline and
/// instance-dependent SBPs use one exact-optimization run. The clique
/// bound can certify optimality without search.
///
/// `options.k` acts as a cap (like the paper's K = 20 application bound);
/// the effective K is `min(options.k, DSATUR bound − 1)` — the
/// largest color count any ladder query can ask for.
///
/// # Panics
///
/// Panics if `options.k == 0` or the graph has no vertices. Use
/// [`chromatic_number_outcome`] for the non-panicking form (which also
/// reports why a bounded search stopped).
pub fn chromatic_number(graph: &Graph, options: &SolveOptions) -> ChromaticResult {
    chromatic_number_outcome(graph, options).unwrap_or_else(|e| panic!("{e}")).result
}

/// [`chromatic_number`] with typed errors and graceful degradation: input
/// failures (empty graph, zero K) become [`SolveError`]s, and when the
/// budget runs out the returned [`ChromaticOutcome`] carries both the
/// proven `[lower, upper]` bracket and the [`ExhaustReason`] that stopped
/// the search.
pub fn chromatic_number_outcome(
    graph: &Graph,
    options: &SolveOptions,
) -> Result<ChromaticOutcome, SolveError> {
    if graph.num_vertices() == 0 {
        return Err(SolveError::EmptyGraph);
    }
    if options.k == 0 {
        return Err(SolveError::ZeroColorBound);
    }
    let b = initial_bounds(graph, options)?;
    if b.lower >= b.upper {
        // The bracket is already collapsed (DSATUR met the clique bound,
        // or the heuristic race closed the gap): provably optimal without
        // any exact search.
        return Ok(ChromaticOutcome {
            result: ChromaticResult::Exact { chromatic_number: b.upper, witness: b.witness },
            exhaust: None,
        });
    }
    if ColoringSession::supports(options) {
        return chromatic_ladder(graph, options, b);
    }
    chromatic_number_via_optimization(graph, options, b)
}

/// The pre-session path: one `try_solve_coloring` optimization run at
/// `K = min(options.k, DSATUR)`. Still the only option for the CPLEX
/// baseline and for instance-dependent SBPs.
fn chromatic_number_via_optimization(
    graph: &Graph,
    options: &SolveOptions,
    b: ChromaticBounds,
) -> Result<ChromaticOutcome, SolveError> {
    let k = b.upper.min(options.k);
    // When the cap is below the known-feasible bound, the search below can
    // still determine χ exactly if χ ≤ k.
    let mut opts = options.clone();
    opts.k = k;
    let report = try_solve_coloring(graph, &opts)?;
    let exhaust = report.exhaust;
    let result = match report.outcome {
        ColoringOutcome::Optimal { coloring, colors } => {
            if colors < b.lower {
                return Err(SolveError::BoundContradiction {
                    lower: b.lower,
                    upper: colors,
                    detail: "optimal witness below the proven clique bound".to_string(),
                });
            }
            ChromaticResult::Exact { chromatic_number: colors, witness: coloring }
        }
        ColoringOutcome::InfeasibleAtK => {
            // χ > k; DSATUR's bound stands as the upper bound. When the
            // cap was below the clique bound, k + 1 would *regress* the
            // already-known lower bound — keep the max of the two.
            ChromaticResult::Bounded {
                lower: (k + 1).max(b.lower),
                upper: b.upper,
                witness: b.witness,
            }
        }
        ColoringOutcome::Feasible { coloring, colors } => {
            collapse_feasible(graph, b.lower, coloring, colors)?
        }
        ColoringOutcome::Unknown => {
            ChromaticResult::Bounded { lower: b.lower, upper: b.upper, witness: b.witness }
        }
    };
    // An exact answer supersedes any limit hit along the way.
    let exhaust = if result.exact().is_some() { None } else { exhaust };
    Ok(ChromaticOutcome { result, exhaust })
}

/// Collapses a budget-starved *feasible* answer onto the proven bracket.
///
/// A witness that meets the clique lower bound proves optimality even
/// though the solver ran out of budget — but only after re-validation.
/// The previous behavior treated `colors <= lower` as `Exact`, which
/// would have laundered two distinct invariant violations into a fake
/// proof: a witness *below* a proven lower bound (one of the two
/// "proofs" must be wrong) and an improper witness whose color count
/// coincidentally matched. Both now surface as
/// [`SolveError::BoundContradiction`] (see `DESIGN.md` §4i).
fn collapse_feasible(
    graph: &Graph,
    lower: usize,
    coloring: Coloring,
    colors: usize,
) -> Result<ChromaticResult, SolveError> {
    if colors < lower {
        return Err(SolveError::BoundContradiction {
            lower,
            upper: colors,
            detail: "feasible witness below the proven clique bound".to_string(),
        });
    }
    if colors > lower {
        return Ok(ChromaticResult::Bounded { lower, upper: colors, witness: coloring });
    }
    // colors == lower: re-validate before promoting the bracket collapse
    // into an `Exact` claim.
    if coloring.num_vertices() == graph.num_vertices()
        && coloring.is_proper(graph)
        && coloring.num_colors() == colors
    {
        Ok(ChromaticResult::Exact { chromatic_number: colors, witness: coloring })
    } else {
        Err(SolveError::BoundContradiction {
            lower,
            upper: colors,
            detail: "feasible witness failed re-validation at bracket collapse".to_string(),
        })
    }
}

/// The incremental ladder: one [`ColoringSession`] answers every
/// decision query `[lower, upper)` needs, against persistent solver
/// state. Records one [`sbgc_obs::LadderStepTelemetry`] entry per query
/// when the options carry an enabled recorder.
///
/// Callers guarantee `graph` is nonempty, `options.k >= 1`,
/// `b.lower < b.upper`, and [`ColoringSession::supports`]`(options)`.
fn chromatic_ladder(
    graph: &Graph,
    options: &SolveOptions,
    b: ChromaticBounds,
) -> Result<ChromaticOutcome, SolveError> {
    use sbgc_obs::LadderStepTelemetry;
    use std::time::Instant;

    let mut session = ColoringSession::new(graph, options)?;
    let k = session.k();
    // The session encoded at the one-shot DSATUR width. When the
    // heuristic race already capped the bracket below it, retire the gap
    // as root-level units before the first query — these are the ladder
    // rungs the race let us skip. `b.upper` is witnessed by a coloring
    // that `initial_bounds` re-validated, so the commit is sound.
    session.commit_upper_bound(b.upper);
    // One wall-clock for the whole ladder: arming the deadline here (it
    // arms once) makes every step share it. Conflict caps need no special
    // handling — persistent engines count cumulatively, so a cap bounds
    // the session's *total* work.
    let budget = options.budget.started();
    let recorder = &options.recorder;
    let mut lower = b.lower;
    let mut upper = b.upper;
    let mut witness = b.witness;
    let mut step: u64 = 0;
    while lower < upper {
        let target = (upper - 1).min(k);
        let started = Instant::now();
        let s = session.query(target, &budget);
        recorder.record_ladder_step(LadderStepTelemetry {
            step,
            target,
            outcome: match &s.answer {
                SessionAnswer::Colorable(_) => "sat",
                SessionAnswer::NotColorable { .. } => "unsat",
                SessionAnswer::Unknown => "unknown",
            }
            .to_string(),
            seconds: started.elapsed().as_secs_f64(),
            retained_clauses: s.retained_clauses,
            workers: s.workers,
        });
        step += 1;
        match s.answer {
            SessionAnswer::Colorable(c) => {
                let colors = c.num_colors().min(target);
                if colors < lower {
                    // A verified witness below a proven lower bound is an
                    // invariant violation, not progress (§4i).
                    return Err(SolveError::BoundContradiction {
                        lower,
                        upper: colors,
                        detail: format!("ladder witness at target {target} beat the lower bound"),
                    });
                }
                upper = colors;
                witness = c;
                // The bound is monotone; retire the colors above it as
                // permanent units so later queries run on a formula as
                // tight as a fresh encoding at their own width.
                session.commit_upper_bound(upper);
            }
            SessionAnswer::NotColorable { .. } => {
                lower = (target + 1).max(lower);
                if target == k && lower < upper {
                    // The encoding cannot express more than k colors; the
                    // remaining gap to the DSATUR witness is a final
                    // K-cap bracket, not budget exhaustion.
                    return Ok(ChromaticOutcome {
                        result: ChromaticResult::Bounded { lower, upper, witness },
                        exhaust: None,
                    });
                }
            }
            SessionAnswer::Unknown => {
                return Ok(ChromaticOutcome {
                    result: ChromaticResult::Bounded { lower, upper, witness },
                    exhaust: s.exhaust,
                });
            }
        }
    }
    Ok(ChromaticOutcome {
        result: ChromaticResult::Exact { chromatic_number: upper, witness },
        exhaust: None,
    })
}

/// How [`chromatic_number_by_decision`] walks the K range — the two
/// options of the paper's Section 4.1 procedure ("perform linear search by
/// incrementally tightening the color constraint, otherwise perform binary
/// search").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SearchStrategy {
    /// Tighten K one color at a time from the DSATUR bound downwards.
    Linear,
    /// Bisect between the clique bound and the DSATUR bound.
    Binary,
}

/// Computes the chromatic number with repeated *decision* queries ("is G
/// K-colorable?"), the way a pure CNF-SAT solver would be driven (paper
/// Section 2.3 / 4.1), instead of one optimization run.
///
/// Uses `options` for the per-query SBP/solver/budget configuration; the
/// objective is dropped from each query. Returns bounds if the budget runs
/// out mid-search.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn chromatic_number_by_decision(
    graph: &Graph,
    options: &SolveOptions,
    strategy: SearchStrategy,
) -> ChromaticResult {
    use crate::encode::ColoringEncoding;
    use crate::sbp::add_instance_independent_sbps;
    use sbgc_obs::Phase;
    use sbgc_pb::solve_decision_recorded;

    assert!(graph.num_vertices() > 0, "chromatic number of the empty graph is undefined here");
    let recorder = &options.recorder;
    let b = bounds(graph);
    if b.lower >= b.upper {
        return ChromaticResult::Exact { chromatic_number: b.upper, witness: b.witness };
    }
    // Query: is the graph k-colorable? Some(witness) / None, or Err on
    // budget exhaustion.
    let query = |k: usize| -> Result<Option<Coloring>, ()> {
        let mut enc = {
            let _span = recorder.span(Phase::Encode);
            ColoringEncoding::new(graph, k)
        };
        enc.formula_mut().clear_objective();
        {
            let _span = recorder.span(Phase::Sbp);
            let _ = add_instance_independent_sbps(&mut enc, graph, options.sbp_mode);
        }
        if matches!(options.symmetry, crate::flow::SymmetryHandling::WithInstanceDependent) {
            let _span = recorder.span(Phase::Detect);
            let _ = sbgc_shatter::shatter(enc.formula_mut(), &options.shatter);
        }
        // Each K-query is an independent decision problem, so parallelism
        // applies per query: race a diversified portfolio when requested.
        let out = {
            let _span = recorder.span(Phase::Solve);
            match options.portfolio_workers() {
                Some(n) => {
                    let configs = sbgc_pb::portfolio_configs(n);
                    sbgc_pb::solve_portfolio_recorded(
                        enc.formula(),
                        &configs,
                        &options.budget,
                        recorder,
                    )
                    .unwrap_or_else(|e| panic!("{e}"))
                    .outcome
                }
                None => solve_decision_recorded(
                    enc.formula(),
                    options.solver,
                    &options.budget,
                    recorder,
                ),
            }
        };
        let _span = recorder.span(Phase::Verify);
        match out {
            out if out.is_unsat() => Ok(None),
            out => match out.model() {
                Some(m) => {
                    let c = enc.decode(m).filter(|c| c.is_proper(graph)).ok_or(())?;
                    Ok(Some(c.compacted()))
                }
                None => Err(()),
            },
        }
    };

    let mut lo = b.lower; // known: χ >= lo
    let mut hi = b.upper; // known: χ <= hi, witnessed
    let mut witness = b.witness;
    loop {
        if lo >= hi {
            return ChromaticResult::Exact { chromatic_number: hi, witness };
        }
        let k = match strategy {
            SearchStrategy::Linear => hi - 1,
            SearchStrategy::Binary => (lo + hi - 1) / 2,
        };
        match query(k) {
            Ok(Some(c)) => {
                hi = c.num_colors().min(k);
                witness = c;
            }
            Ok(None) => lo = k + 1,
            Err(()) => return ChromaticResult::Bounded { lower: lo, upper: hi, witness },
        }
    }
}

/// Computes the chromatic number *incrementally*: one solver instance is
/// built at `K = min(options.k, DSATUR bound − 1)` and the color budget is
/// tightened by **assuming** the usage indicators `y[target..K]` false,
/// one step at a time — so clauses learned while proving "not
/// (target)-colorable-with-these-assumptions" are reused by every later
/// query (the incremental-SAT refinement of the paper's Section 4.1
/// procedure).
///
/// Uses `options.sbp_mode` (instance-independent SBPs are compatible with
/// the suffix assumptions: they only ever *prefer* low color indices).
/// [`sbgc_pb::SolverKind::Portfolio`] runs a *persistent* portfolio — one
/// long-lived engine per worker thread, all racing each ladder query with
/// clause sharing — rather than falling back to one-shot optimization.
/// Only the CPLEX baseline (no incremental interface) and
/// instance-dependent (Shatter) SBPs fall back to [`chromatic_number`]'s
/// optimization path.
///
/// Since the session refactor this *is* [`chromatic_number`]'s default
/// path; the function remains as the explicit entry point and for its
/// fallback contract.
///
/// # Panics
///
/// Panics if the graph has no vertices or `options.k == 0`. Use
/// [`chromatic_number_incremental_outcome`] for the non-panicking form.
pub fn chromatic_number_incremental(graph: &Graph, options: &SolveOptions) -> ChromaticResult {
    chromatic_number_incremental_outcome(graph, options).unwrap_or_else(|e| panic!("{e}")).result
}

/// [`chromatic_number_incremental`] with typed errors and graceful
/// degradation, mirroring [`chromatic_number_outcome`]: degenerate inputs
/// become [`SolveError`]s instead of panics, and budget-starved runs
/// return the proven bracket plus the [`ExhaustReason`] that stopped
/// them. Configurations without an incremental interface (CPLEX,
/// instance-dependent SBPs) fall back to the one-shot optimization run —
/// a fallback, not an error, so callers can use this unconditionally.
pub fn chromatic_number_incremental_outcome(
    graph: &Graph,
    options: &SolveOptions,
) -> Result<ChromaticOutcome, SolveError> {
    if graph.num_vertices() == 0 {
        return Err(SolveError::EmptyGraph);
    }
    if options.k == 0 {
        return Err(SolveError::ZeroColorBound);
    }
    let b = initial_bounds(graph, options)?;
    if b.lower >= b.upper {
        return Ok(ChromaticOutcome {
            result: ChromaticResult::Exact { chromatic_number: b.upper, witness: b.witness },
            exhaust: None,
        });
    }
    if ColoringSession::supports(options) {
        chromatic_ladder(graph, options, b)
    } else {
        chromatic_number_via_optimization(graph, options, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbp::SbpMode;
    use sbgc_graph::gen::{mycielski, queens};
    use sbgc_pb::Budget;

    #[test]
    fn known_chromatic_numbers() {
        let cases: [(&str, Graph, usize); 5] = [
            ("K4", Graph::complete(4), 4),
            ("C5", Graph::cycle(5), 3),
            ("C6", Graph::cycle(6), 2),
            ("myciel3", mycielski(3), 4),
            ("queen5_5", queens(5, 5), 5),
        ];
        for (name, g, expected) in cases {
            let result = chromatic_number(&g, &SolveOptions::new(20));
            assert_eq!(result.exact(), Some(expected), "{name}");
            assert!(result.witness().is_proper(&g), "{name}");
        }
    }

    #[test]
    fn clique_certificate_avoids_search() {
        // Complete graphs: clique bound == DSATUR bound, no solver needed.
        let g = Graph::complete(6);
        let result = chromatic_number(
            &g,
            &SolveOptions::new(20).with_budget(Budget::unlimited().with_max_conflicts(0)),
        );
        assert_eq!(result.exact(), Some(6));
    }

    #[test]
    fn cap_below_chi_reports_bounds() {
        // bounds() certifies K5 without search, so use a graph where
        // DSATUR overshoots: Mycielski-3 has clique 2 but χ = 4. A K-cap
        // of 3 refutes 3-colorability, so the lower bound must rise to 4;
        // whether that closes the bracket depends on the DSATUR witness
        // (4 colors → exact; more → a [4, upper] bracket).
        let g2 = mycielski(3);
        let result = chromatic_number(&g2, &SolveOptions::new(3));
        match result {
            ChromaticResult::Bounded { lower, upper, ref witness } => {
                assert_eq!(lower, 4);
                assert!(witness.is_proper(&g2));
                assert!(upper >= 4);
            }
            ChromaticResult::Exact { chromatic_number, ref witness } => {
                assert_eq!(chromatic_number, 4);
                assert!(witness.is_proper(&g2));
                assert_eq!(witness.num_colors(), 4);
            }
        }
    }

    #[test]
    fn infeasible_cap_keeps_clique_lower_bound() {
        // queens(6,6): clique bound 6, DSATUR bound 9. A cap of 4 is below
        // the clique bound; proving "not 4-colorable" must not *regress*
        // the reported lower bound to 5.
        let g = queens(6, 6);
        let b = bounds(&g);
        assert!(b.lower >= 6, "test premise: clique bound is {}", b.lower);
        match chromatic_number(&g, &SolveOptions::new(4)) {
            ChromaticResult::Bounded { lower, upper, .. } => {
                assert!(lower >= b.lower, "lower bound regressed: {lower} < {}", b.lower);
                assert!(upper >= lower);
            }
            ChromaticResult::Exact { .. } => panic!("cap 4 cannot certify χ of queens(6,6)"),
        }
    }

    #[test]
    fn sbp_modes_do_not_change_chi() {
        let g = queens(5, 5);
        for mode in SbpMode::ALL {
            let result = chromatic_number(&g, &SolveOptions::new(20).with_sbp_mode(mode));
            assert_eq!(result.exact(), Some(5), "{mode}");
        }
    }

    #[test]
    fn decision_search_agrees_with_optimization() {
        for g in [Graph::cycle(5), mycielski(3), queens(4, 4), Graph::complete(4)] {
            let expected = chromatic_number(&g, &SolveOptions::new(20)).exact();
            for strategy in [SearchStrategy::Linear, SearchStrategy::Binary] {
                let result = chromatic_number_by_decision(&g, &SolveOptions::new(20), strategy);
                assert_eq!(result.exact(), expected, "{strategy:?}");
                assert!(result.witness().is_proper(&g));
            }
        }
    }

    #[test]
    fn decision_search_with_sbps_and_shatter() {
        let g = queens(5, 5);
        let opts =
            SolveOptions::new(20).with_sbp_mode(SbpMode::NuSc).with_instance_dependent_sbps();
        let result = chromatic_number_by_decision(&g, &opts, SearchStrategy::Binary);
        assert_eq!(result.exact(), Some(5));
    }

    #[test]
    fn decision_search_budget_exhaustion_gives_bounds() {
        use sbgc_pb::Budget;
        let g = mycielski(4);
        let opts = SolveOptions::new(20).with_budget(Budget::unlimited().with_max_conflicts(1));
        let result = chromatic_number_by_decision(&g, &opts, SearchStrategy::Linear);
        match result {
            ChromaticResult::Bounded { lower, upper, ref witness } => {
                assert!(lower <= 5 && upper >= 5);
                assert!(witness.is_proper(&g));
            }
            ChromaticResult::Exact { chromatic_number, .. } => {
                assert_eq!(chromatic_number, 5)
            }
        }
    }

    #[test]
    fn incremental_agrees_with_optimization() {
        for g in [Graph::cycle(5), mycielski(3), queens(4, 4), Graph::cycle(6)] {
            let expected = chromatic_number(&g, &SolveOptions::new(20)).exact();
            for mode in [SbpMode::None, SbpMode::Nu, SbpMode::NuSc] {
                let opts = SolveOptions::new(20).with_sbp_mode(mode);
                let result = chromatic_number_incremental(&g, &opts);
                assert_eq!(result.exact(), expected, "{mode}");
                assert!(result.witness().is_proper(&g), "{mode}");
            }
        }
    }

    #[test]
    fn incremental_on_queens() {
        let g = queens(5, 5);
        let result =
            chromatic_number_incremental(&g, &SolveOptions::new(20).with_sbp_mode(SbpMode::Nu));
        assert_eq!(result.exact(), Some(5));
    }

    #[test]
    fn incremental_cplex_falls_back() {
        use sbgc_pb::SolverKind;
        let g = mycielski(3);
        let opts = SolveOptions::new(20).with_solver(SolverKind::Cplex);
        let result = chromatic_number_incremental(&g, &opts);
        assert_eq!(result.exact(), Some(4));
    }

    #[test]
    fn incremental_portfolio_runs_in_session() {
        // The portfolio must drive the persistent session, not fall back
        // to one-shot optimization: the recorder's ladder telemetry only
        // exists on the session path, and it must show multiple workers.
        use sbgc_graph::gen::gnp;
        use sbgc_obs::Recorder;
        use sbgc_pb::SolverKind;
        // χ = 7 with clique bound 6 and DSATUR bound 8: search needed.
        let g = gnp(24, 0.5, 3);
        let recorder = Recorder::new();
        // Heuristics off: the race could close the bracket by itself and
        // leave no ladder step for the assertions below.
        let opts = SolveOptions::new(20)
            .with_solver(SolverKind::Portfolio)
            .with_recorder(recorder.clone())
            .without_heuristics();
        let out = chromatic_number_incremental_outcome(&g, &opts).expect("valid inputs");
        assert_eq!(out.exact(), Some(7));
        let steps = recorder.ladder_steps();
        assert!(!steps.is_empty(), "session path must record ladder telemetry");
        assert!(steps.iter().all(|s| s.workers > 1), "portfolio session must race workers");
    }

    #[test]
    fn ladder_retains_clauses_across_steps() {
        use sbgc_graph::gen::gnp;
        use sbgc_obs::Recorder;
        // χ = 7, clique bound 6, DSATUR bound 8: the ladder runs a SAT
        // query at 7 and then an UNSAT query at 6 through the same engine.
        let g = gnp(24, 0.5, 3);
        let recorder = Recorder::new();
        // Heuristics off: a TabuCol incumbent at 7 would collapse the
        // ladder to a single UNSAT query and leave nothing to retain.
        let opts = SolveOptions::new(20).with_recorder(recorder.clone()).without_heuristics();
        let out = chromatic_number_outcome(&g, &opts).expect("valid inputs");
        assert_eq!(out.exact(), Some(7));
        let steps = recorder.ladder_steps();
        assert!(steps.len() >= 2, "expected a multi-step ladder, got {}", steps.len());
        assert_eq!(steps[0].retained_clauses, 0, "nothing to retain on the first query");
        assert!(
            steps[1..].iter().any(|s| s.retained_clauses > 0),
            "later ladder steps must reuse learned clauses: {steps:?}"
        );
    }

    #[test]
    fn incremental_empty_graph_is_a_typed_error() {
        let g = Graph::empty(0);
        let err = chromatic_number_incremental_outcome(&g, &SolveOptions::new(5)).unwrap_err();
        assert_eq!(err, SolveError::EmptyGraph);
    }

    #[test]
    fn incremental_zero_k_is_a_typed_error() {
        let g = Graph::cycle(5);
        let err = chromatic_number_incremental_outcome(&g, &SolveOptions::new(0)).unwrap_err();
        assert_eq!(err, SolveError::ZeroColorBound);
    }

    #[test]
    fn empty_graph_is_a_typed_error() {
        let g = Graph::empty(0);
        let err = chromatic_number_outcome(&g, &SolveOptions::new(5)).unwrap_err();
        assert_eq!(err, SolveError::EmptyGraph);
    }

    #[test]
    fn zero_k_is_a_typed_error() {
        let g = Graph::cycle(5);
        let err = chromatic_number_outcome(&g, &SolveOptions::new(0)).unwrap_err();
        assert_eq!(err, SolveError::ZeroColorBound);
    }

    #[test]
    fn exhausted_search_returns_proven_bracket_and_reason() {
        // Mycielski-4: clique 2, χ = 5, DSATUR overshoots — search needed.
        let g = mycielski(4);
        let opts = SolveOptions::new(20).with_budget(Budget::unlimited().with_max_conflicts(1));
        let out = chromatic_number_outcome(&g, &opts).expect("valid inputs");
        match out.result {
            ChromaticResult::Bounded { lower, upper, ref witness } => {
                let (lo, hi) = out.bracket();
                assert_eq!((lo, hi), (lower, upper));
                assert!(lo <= 5 && hi >= 5, "bracket [{lo}, {hi}] must contain χ=5");
                assert!(witness.is_proper(&g), "upper bound must stay witnessed");
                assert_eq!(witness.num_colors(), hi);
                assert_eq!(out.exhaust, Some(ExhaustReason::Conflicts));
            }
            // A 1-conflict budget conceivably still decides; then no reason.
            ChromaticResult::Exact { chromatic_number, .. } => {
                assert_eq!(chromatic_number, 5);
                assert_eq!(out.exhaust, None);
            }
        }
    }

    #[test]
    fn exact_outcome_has_point_bracket_and_no_exhaust() {
        let g = queens(5, 5);
        let out = chromatic_number_outcome(&g, &SolveOptions::new(20)).expect("valid inputs");
        assert_eq!(out.exact(), Some(5));
        assert_eq!(out.bracket(), (5, 5));
        assert_eq!(out.exhaust, None);
        assert!(out.witness().is_proper(&g));
    }

    #[test]
    fn bounds_are_consistent() {
        for g in [Graph::cycle(7), mycielski(4), queens(4, 4)] {
            let b = bounds(&g);
            assert!(b.lower <= b.upper);
            assert!(b.witness.is_proper(&g));
            assert_eq!(b.witness.num_colors(), b.upper);
        }
    }

    #[test]
    fn initial_bounds_tighten_the_bracket_and_respect_the_flag() {
        let g = mycielski(4); // χ = 5; DSATUR may overshoot, greedy clique is 2.
        let base = bounds(&g);
        let off = initial_bounds(&g, &SolveOptions::new(20).without_heuristics())
            .expect("greedy bounds never contradict");
        assert_eq!(off.upper, base.upper, "the flag must restore the pure paper procedure");
        assert_eq!(off.lower, base.lower);
        let on = initial_bounds(&g, &SolveOptions::new(20)).expect("validated bounds");
        assert!(on.lower >= base.lower);
        assert!(on.upper <= base.upper, "heuristics must never loosen the bracket");
        assert_eq!(on.upper, 5, "TabuCol reliably lands χ(M4) = 5 on 23 vertices");
        assert!(on.witness.is_proper(&g));
        assert_eq!(on.witness.num_colors(), on.upper);
    }

    #[test]
    fn hybrid_search_agrees_and_records_heuristic_telemetry() {
        use sbgc_graph::gen::gnp;
        use sbgc_obs::Recorder;
        // χ = 7, greedy clique 6, DSATUR 8: the race has a rung to skip.
        let g = gnp(24, 0.5, 3);
        let base = bounds(&g);
        let exact_only = chromatic_number_outcome(&g, &SolveOptions::new(20).without_heuristics())
            .expect("valid inputs");
        let recorder = Recorder::new();
        let hybrid =
            chromatic_number_outcome(&g, &SolveOptions::new(20).with_recorder(recorder.clone()))
                .expect("valid inputs");
        assert_eq!(hybrid.exact(), exact_only.exact(), "hybrid must prove the same χ");
        assert!(hybrid.witness().is_proper(&g));
        let h = recorder.heuristics().expect("hybrid run records heuristics telemetry");
        assert_eq!(h.dsatur_upper, base.upper);
        assert_eq!(h.greedy_clique_lower, base.lower);
        assert!(h.upper <= base.upper);
        assert_eq!(h.rungs_skipped, base.upper - h.upper);
        assert_eq!(h.workers, 3);
        assert_eq!(h.failed_workers, 0);
        assert_eq!(h.rejected_witnesses, 0);
        // Every exact query ran strictly below the heuristic cap.
        assert!(recorder.ladder_steps().iter().all(|s| s.target < h.upper));
    }

    #[test]
    fn feasible_collapse_validates_the_witness() {
        let g = Graph::cycle(5); // χ = 3
        let proper = sbgc_graph::algo::dsatur(&g);
        assert_eq!(proper.num_colors(), 3);
        match collapse_feasible(&g, 3, proper.clone(), 3).expect("validated collapse") {
            ChromaticResult::Exact { chromatic_number, .. } => assert_eq!(chromatic_number, 3),
            other => panic!("expected exact, got {other:?}"),
        }
        match collapse_feasible(&g, 2, proper, 3).expect("honest bracket") {
            ChromaticResult::Bounded { lower, upper, .. } => assert_eq!((lower, upper), (2, 3)),
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn feasible_collapse_below_lower_bound_is_a_contradiction() {
        // The old behavior reported `Exact { chromatic_number: 3 }` here:
        // a witness below a proven lower bound was laundered into a fake
        // optimality proof instead of being surfaced as an invariant
        // violation.
        let g = Graph::cycle(5);
        let proper = sbgc_graph::algo::dsatur(&g);
        let err = collapse_feasible(&g, 4, proper, 3).unwrap_err();
        assert!(matches!(err, SolveError::BoundContradiction { lower: 4, upper: 3, .. }), "{err}");
    }

    #[test]
    fn feasible_collapse_rejects_improper_and_miscounted_witnesses() {
        let g = Graph::cycle(5);
        // Improper witness whose color count matches the lower bound.
        let improper = Coloring::new(vec![0; 5]);
        let err = collapse_feasible(&g, 1, improper, 1).unwrap_err();
        assert!(matches!(err, SolveError::BoundContradiction { .. }), "{err}");
        // Proper witness whose actual color count contradicts the claim.
        let proper = sbgc_graph::algo::dsatur(&g); // 3 colors
        let err = collapse_feasible(&g, 2, proper, 2).unwrap_err();
        assert!(matches!(err, SolveError::BoundContradiction { .. }), "{err}");
    }
}

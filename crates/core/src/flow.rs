//! End-to-end coloring flows: encode → SBPs → (Shatter) → solve → decode
//! → verify.
//!
//! These are the *one-shot* flows: encode at a fixed K and run a single
//! optimization. Since the persistent-session refactor, the chromatic
//! searches in [`crate::chromatic`] route every CDCL-backed
//! configuration through the incremental ladder of
//! [`crate::session::ColoringSession`] instead; the flows here remain
//! the driver for single fixed-K solves, for the CPLEX baseline, and
//! for instance-dependent (Shatter) SBPs, which the session cannot
//! drive soundly (see `DESIGN.md` §4g).

use crate::encode::ColoringEncoding;
use crate::error::SolveError;
use crate::sbp::{add_instance_independent_sbps, SbpMode, SbpSizeStats};
use sbgc_formula::FormulaStats;
use sbgc_graph::{Coloring, Graph};
use sbgc_obs::{Phase, Recorder};
use sbgc_pb::{optimize_recorded_with_stats, Budget, ExhaustReason, OptOutcome, SolverKind};
use sbgc_shatter::{shatter, ShatterOptions, ShatterReport};
use std::time::{Duration, Instant};

/// Whether to run the instance-dependent (Shatter) symmetry-breaking flow
/// after the instance-independent constructions — the "w/ i.-d. SBPs"
/// column split of Tables 3–5.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SymmetryHandling {
    /// Instance-independent SBPs only (the `Orig.` columns).
    #[default]
    InstanceIndependentOnly,
    /// Also detect and break instance-dependent symmetries.
    WithInstanceDependent,
}

/// Options for [`solve_coloring`].
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// The color bound K (the paper uses 20 and 30).
    pub k: usize,
    /// Instance-independent SBP construction.
    pub sbp_mode: SbpMode,
    /// Instance-dependent symmetry handling.
    pub symmetry: SymmetryHandling,
    /// Which 0-1 ILP solver to run.
    pub solver: SolverKind,
    /// Search budget.
    pub budget: Budget,
    /// Options of the Shatter flow (used only with
    /// [`SymmetryHandling::WithInstanceDependent`]).
    pub shatter: ShatterOptions,
    /// Number of parallel solver workers. `1` (the default) runs exactly
    /// the sequential path of the paper reproduction; larger values race a
    /// diversified portfolio of that many CDCL workers with cooperative
    /// cancellation (see [`sbgc_pb::solve_portfolio`]). Ignored by the
    /// branch-and-bound [`SolverKind::Cplex`] baseline.
    pub parallelism: usize,
    /// Observability sink: an enabled [`Recorder`] receives phase spans
    /// (encode/sbp/detect/solve/verify), solver counters, and per-worker
    /// portfolio telemetry. The default disabled recorder adds only
    /// stride-boundary branches to the hot paths.
    pub recorder: Recorder,
    /// Whether the chromatic searches may race the `sbgc-heur` local-search
    /// workers (TabuCol/PartialCol descents and clique search) to tighten
    /// the initial `[lower, upper]` bracket before the exact ladder runs.
    /// On by default; affects only chromatic-number entry points, never
    /// fixed-K [`solve_coloring`] runs. Every heuristic bound is
    /// re-validated at the trust boundary, so this flag trades wall-clock,
    /// not soundness (see `DESIGN.md` §4i).
    pub heuristics: bool,
}

impl SolveOptions {
    /// Defaults: the given K, no SBPs of either kind, the PBS II analogue,
    /// unlimited budget.
    pub fn new(k: usize) -> Self {
        SolveOptions {
            k,
            sbp_mode: SbpMode::None,
            symmetry: SymmetryHandling::InstanceIndependentOnly,
            solver: SolverKind::PbsII,
            budget: Budget::unlimited(),
            shatter: ShatterOptions::default(),
            parallelism: 1,
            recorder: Recorder::disabled(),
            heuristics: true,
        }
    }

    /// Sets the instance-independent SBP mode.
    pub fn with_sbp_mode(mut self, mode: SbpMode) -> Self {
        self.sbp_mode = mode;
        self
    }

    /// Enables instance-dependent (Shatter) symmetry breaking.
    pub fn with_instance_dependent_sbps(mut self) -> Self {
        self.symmetry = SymmetryHandling::WithInstanceDependent;
        self
    }

    /// Sets the solver.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the number of parallel solver workers (clamped to ≥ 1).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Attaches an observability [`Recorder`]; the flow and the solvers
    /// it runs will log phase spans and search counters into it.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Enables or disables the heuristic primal-bound race in the
    /// chromatic searches.
    pub fn with_heuristics(mut self, enabled: bool) -> Self {
        self.heuristics = enabled;
        self
    }

    /// Disables the heuristic primal-bound race — exact-only search, as
    /// before the hybrid. Shorthand for `with_heuristics(false)`.
    pub fn without_heuristics(self) -> Self {
        self.with_heuristics(false)
    }

    /// The portfolio worker count implied by these options: `Some(n)` when
    /// the solve should race a portfolio (explicit
    /// [`SolverKind::Portfolio`], or `parallelism > 1` with a CDCL
    /// solver), `None` for the sequential path. The CPLEX baseline never
    /// uses the portfolio — it is the paper's non-CDCL control.
    pub fn portfolio_workers(&self) -> Option<usize> {
        match self.solver {
            SolverKind::Portfolio => Some(if self.parallelism > 1 {
                self.parallelism
            } else {
                SolverKind::DEFAULT_PORTFOLIO_WORKERS
            }),
            SolverKind::Cplex => None,
            _ if self.parallelism > 1 => Some(self.parallelism),
            _ => None,
        }
    }
}

/// Outcome of a coloring run.
#[derive(Clone, Debug)]
pub enum ColoringOutcome {
    /// A provably minimum coloring within the K bound.
    Optimal {
        /// The verified coloring.
        coloring: Coloring,
        /// Number of colors it uses (the chromatic number when ≤ K).
        colors: usize,
    },
    /// Budget ran out with a feasible (possibly suboptimal) coloring.
    Feasible {
        /// The best verified coloring found.
        coloring: Coloring,
        /// Number of colors it uses.
        colors: usize,
    },
    /// Proven not K-colorable (χ > K).
    InfeasibleAtK,
    /// Budget ran out with no answer.
    Unknown,
}

impl ColoringOutcome {
    /// `true` when the run was decided (optimal or infeasible) — the
    /// "solved" criterion of the paper's tables.
    pub fn is_decided(&self) -> bool {
        matches!(self, ColoringOutcome::Optimal { .. } | ColoringOutcome::InfeasibleAtK)
    }

    /// The coloring, if one was found.
    pub fn coloring(&self) -> Option<&Coloring> {
        match self {
            ColoringOutcome::Optimal { coloring, .. }
            | ColoringOutcome::Feasible { coloring, .. } => Some(coloring),
            _ => None,
        }
    }

    /// The number of colors, if a coloring was found.
    pub fn colors(&self) -> Option<usize> {
        match self {
            ColoringOutcome::Optimal { colors, .. } | ColoringOutcome::Feasible { colors, .. } => {
                Some(*colors)
            }
            _ => None,
        }
    }
}

/// Full report of a [`solve_coloring`] run.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The outcome, with the coloring verified against the input graph.
    pub outcome: ColoringOutcome,
    /// Formula size before SBPs.
    pub base_stats: FormulaStats,
    /// Formula size actually solved (after all SBPs).
    pub final_stats: FormulaStats,
    /// Size of the instance-independent SBPs added.
    pub sbp_stats: SbpSizeStats,
    /// Report of the Shatter stage, when it ran.
    pub shatter: Option<ShatterReport>,
    /// Wall-clock time of the solver stage only.
    pub solve_time: Duration,
    /// Wall-clock time of the whole flow (encode + SBPs + detect + solve).
    pub total_time: Duration,
    /// Why the search stopped early when the outcome is undecided
    /// (conflict cap, deadline, memory budget, or cancellation); `None`
    /// when the run was decided or never hit a limit.
    pub exhaust: Option<ExhaustReason>,
}

/// A prepared (encoded + symmetry-broken) coloring instance that can be
/// solved several times — e.g. once per solver in the experiment grid —
/// without repeating encoding or symmetry detection.
#[derive(Clone, Debug)]
pub struct PreparedColoring {
    encoding: ColoringEncoding,
    base_stats: FormulaStats,
    final_stats: FormulaStats,
    sbp_stats: SbpSizeStats,
    shatter: Option<ShatterReport>,
    prepare_time: Duration,
    /// Recorder captured at prepare time; solve calls log into it too.
    recorder: Recorder,
}

impl PreparedColoring {
    /// Encodes `graph` at `options.k`, adds the configured
    /// instance-independent SBPs and (optionally) the Shatter
    /// instance-dependent SBPs. `options.solver`/`options.budget` are not
    /// used here.
    ///
    /// # Panics
    ///
    /// Panics if `options.k == 0`.
    pub fn new(graph: &Graph, options: &SolveOptions) -> Self {
        let recorder = options.recorder.clone();
        let start = Instant::now();
        let mut encoding = {
            let _span = recorder.span(Phase::Encode);
            ColoringEncoding::new(graph, options.k)
        };
        let base_stats = encoding.formula().stats();
        let sbp_stats = {
            let _span = recorder.span(Phase::Sbp);
            add_instance_independent_sbps(&mut encoding, graph, options.sbp_mode)
        };
        let shatter_report = match options.symmetry {
            SymmetryHandling::InstanceIndependentOnly => None,
            SymmetryHandling::WithInstanceDependent => {
                let _span = recorder.span(Phase::Detect);
                Some(shatter(encoding.formula_mut(), &options.shatter))
            }
        };
        let final_stats = encoding.formula().stats();
        PreparedColoring {
            encoding,
            base_stats,
            final_stats,
            sbp_stats,
            shatter: shatter_report,
            prepare_time: start.elapsed(),
            recorder,
        }
    }

    /// The prepared formula (with all SBPs appended).
    pub fn formula(&self) -> &sbgc_formula::PbFormula {
        self.encoding.formula()
    }

    /// Report of the Shatter stage, when it ran.
    pub fn shatter_report(&self) -> Option<&ShatterReport> {
        self.shatter.as_ref()
    }

    /// Time spent encoding + adding SBPs (+ symmetry detection).
    pub fn prepare_time(&self) -> Duration {
        self.prepare_time
    }

    /// Solves the prepared instance with `solver` under `budget`, decoding
    /// and independently verifying the result against `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is not the graph this instance was prepared from
    /// (detected via vertex count).
    pub fn solve(&self, graph: &Graph, solver: SolverKind, budget: &Budget) -> SolveReport {
        self.solve_with_parallelism(graph, solver, budget, 1)
    }

    /// Like [`PreparedColoring::solve`], but racing `parallelism`
    /// diversified portfolio workers when `parallelism > 1` (or when
    /// `solver` is [`SolverKind::Portfolio`], which uses
    /// [`SolverKind::DEFAULT_PORTFOLIO_WORKERS`] if `parallelism ≤ 1`).
    /// With `parallelism = 1` and a non-portfolio solver this is exactly
    /// the sequential path.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is not the graph this instance was prepared from
    /// (detected via vertex count), or if the portfolio race could not
    /// start. Use [`PreparedColoring::try_solve_with_parallelism`] for the
    /// non-panicking form.
    pub fn solve_with_parallelism(
        &self,
        graph: &Graph,
        solver: SolverKind,
        budget: &Budget,
        parallelism: usize,
    ) -> SolveReport {
        self.try_solve_with_parallelism(graph, solver, budget, parallelism)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`PreparedColoring::solve_with_parallelism`], but reporting
    /// pipeline misuse as a typed [`SolveError`] instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is not the graph this instance was prepared from
    /// (detected via vertex count) — that is a programming error of the
    /// caller, not an input failure.
    pub fn try_solve_with_parallelism(
        &self,
        graph: &Graph,
        solver: SolverKind,
        budget: &Budget,
        parallelism: usize,
    ) -> Result<SolveReport, SolveError> {
        assert_eq!(
            graph.num_vertices(),
            self.encoding.num_vertices(),
            "graph does not match the prepared encoding"
        );
        let workers = match solver {
            SolverKind::Portfolio if parallelism <= 1 => {
                Some(SolverKind::DEFAULT_PORTFOLIO_WORKERS)
            }
            SolverKind::Portfolio => Some(parallelism),
            SolverKind::Cplex => None,
            _ if parallelism > 1 => Some(parallelism),
            _ => None,
        };
        let start = Instant::now();
        let (result, exhaust) = {
            let _span = self.recorder.span(Phase::Solve);
            match workers {
                Some(n) => {
                    let configs = sbgc_pb::portfolio_configs(n);
                    let race = sbgc_pb::optimize_portfolio_recorded(
                        self.encoding.formula(),
                        &configs,
                        budget,
                        &self.recorder,
                    )?;
                    (race.outcome, race.stats.exhaust)
                }
                None => {
                    let (outcome, stats) = optimize_recorded_with_stats(
                        self.encoding.formula(),
                        solver,
                        budget,
                        &self.recorder,
                    );
                    (outcome, stats.exhaust)
                }
            }
        };
        let solve_time = start.elapsed();
        // A decided run's answer supersedes any limit an earlier
        // strengthening iteration may have touched.
        let exhaust = if result.is_decided() { None } else { exhaust };

        let decode_verified = |value: u64, model: &sbgc_formula::Assignment| {
            let coloring = self.encoding.decode(model)?;
            if !coloring.is_proper(graph) {
                return None;
            }
            if coloring.num_colors() as u64 != value {
                return None;
            }
            Some(coloring)
        };

        let outcome = {
            let _span = self.recorder.span(Phase::Verify);
            match result {
                OptOutcome::Optimal { value, model } => match decode_verified(value, &model) {
                    Some(coloring) => ColoringOutcome::Optimal { coloring, colors: value as usize },
                    None => ColoringOutcome::Unknown,
                },
                OptOutcome::Feasible { value, model } => match decode_verified(value, &model) {
                    Some(coloring) => {
                        ColoringOutcome::Feasible { coloring, colors: value as usize }
                    }
                    None => ColoringOutcome::Unknown,
                },
                OptOutcome::Infeasible => ColoringOutcome::InfeasibleAtK,
                OptOutcome::Unknown => ColoringOutcome::Unknown,
            }
        };

        Ok(SolveReport {
            outcome,
            base_stats: self.base_stats,
            final_stats: self.final_stats,
            sbp_stats: self.sbp_stats,
            shatter: self.shatter.clone(),
            solve_time,
            total_time: self.prepare_time + solve_time,
            exhaust,
        })
    }
}

/// Encodes, optionally breaks symmetries, solves, decodes and verifies.
///
/// The returned coloring is always re-verified against `graph`
/// independently of the solver ([`Coloring::is_proper`]); a solver model
/// that fails verification is reported as [`ColoringOutcome::Unknown`]
/// (this "trust but verify" step has never fired in our test suite — it
/// exists to keep the experiment harness honest).
///
/// To solve one instance with several solvers, prepare once with
/// [`PreparedColoring::new`] and call [`PreparedColoring::solve`] per
/// solver.
///
/// # Panics
///
/// Panics if `options.k == 0`. Use [`try_solve_coloring`] for the
/// non-panicking form.
pub fn solve_coloring(graph: &Graph, options: &SolveOptions) -> SolveReport {
    try_solve_coloring(graph, options).unwrap_or_else(|e| panic!("{e}"))
}

/// [`solve_coloring`] with typed errors: a zero color bound or a failed
/// portfolio start is reported as a [`SolveError`] instead of a panic.
/// Budget exhaustion is still *not* an error — it yields an
/// [`ColoringOutcome::Unknown`]/[`ColoringOutcome::Feasible`] report whose
/// [`SolveReport::exhaust`] says which limit was hit.
pub fn try_solve_coloring(
    graph: &Graph,
    options: &SolveOptions,
) -> Result<SolveReport, SolveError> {
    if options.k == 0 {
        return Err(SolveError::ZeroColorBound);
    }
    PreparedColoring::new(graph, options).try_solve_with_parallelism(
        graph,
        options.solver,
        &options.budget,
        options.parallelism,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::gen::{mycielski, queens};

    #[test]
    fn triangle_needs_three_colors() {
        let g = Graph::complete(3);
        let report = solve_coloring(&g, &SolveOptions::new(4));
        match report.outcome {
            ColoringOutcome::Optimal { ref coloring, colors } => {
                assert_eq!(colors, 3);
                assert!(coloring.is_proper(&g));
            }
            ref other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_when_k_too_small() {
        let g = Graph::complete(4);
        let report = solve_coloring(&g, &SolveOptions::new(3));
        assert!(matches!(report.outcome, ColoringOutcome::InfeasibleAtK));
    }

    #[test]
    fn every_sbp_mode_preserves_the_optimum() {
        let g = mycielski(3); // χ = 4, plenty of symmetry
        for mode in SbpMode::EXTENDED {
            let report = solve_coloring(&g, &SolveOptions::new(6).with_sbp_mode(mode));
            match report.outcome {
                ColoringOutcome::Optimal { ref coloring, colors } => {
                    assert_eq!(colors, 4, "{mode}");
                    assert!(coloring.is_proper(&g), "{mode}");
                }
                ref other => panic!("{mode}: expected optimal, got {other:?}"),
            }
        }
    }

    #[test]
    fn instance_dependent_sbps_preserve_the_optimum() {
        let g = queens(5, 5);
        for mode in [SbpMode::None, SbpMode::Nu, SbpMode::Sc] {
            let opts = SolveOptions::new(6).with_sbp_mode(mode).with_instance_dependent_sbps();
            let report = solve_coloring(&g, &opts);
            assert_eq!(report.outcome.colors(), Some(5), "{mode}");
            assert!(report.shatter.is_some());
        }
    }

    #[test]
    fn all_solvers_agree_on_small_instance() {
        let g = mycielski(3);
        for solver in SolverKind::MAIN {
            let report = solve_coloring(&g, &SolveOptions::new(5).with_solver(solver));
            assert_eq!(report.outcome.colors(), Some(4), "{solver}");
            assert!(report.outcome.is_decided(), "{solver}");
        }
    }

    #[test]
    fn parallel_solve_agrees_with_sequential() {
        let g = mycielski(3);
        for n in [2, 4] {
            let report = solve_coloring(&g, &SolveOptions::new(5).with_parallelism(n));
            assert_eq!(report.outcome.colors(), Some(4), "n={n}");
            assert!(report.outcome.is_decided(), "n={n}");
        }
    }

    #[test]
    fn portfolio_solver_kind_solves() {
        let g = queens(5, 5);
        let report = solve_coloring(&g, &SolveOptions::new(6).with_solver(SolverKind::Portfolio));
        assert_eq!(report.outcome.colors(), Some(5));
        assert!(report.outcome.is_decided());
    }

    #[test]
    fn parallelism_is_ignored_by_cplex() {
        // The non-CDCL control stays sequential whatever the parallelism.
        let g = mycielski(3);
        let opts = SolveOptions::new(5).with_solver(SolverKind::Cplex).with_parallelism(4);
        assert_eq!(opts.portfolio_workers(), None);
        let report = solve_coloring(&g, &opts);
        assert_eq!(report.outcome.colors(), Some(4));
    }

    #[test]
    fn report_tracks_formula_growth() {
        let g = Graph::complete(3);
        let report = solve_coloring(&g, &SolveOptions::new(4).with_sbp_mode(SbpMode::Li));
        assert!(report.final_stats.vars > report.base_stats.vars);
        assert!(report.final_stats.clauses > report.base_stats.clauses);
        assert_eq!(report.sbp_stats.aux_vars, 3 * 4);
    }

    #[test]
    fn recorder_captures_phase_timings_and_counters() {
        let g = queens(5, 5);
        let rec = Recorder::new();
        let opts = SolveOptions::new(6)
            .with_sbp_mode(SbpMode::NuSc)
            .with_instance_dependent_sbps()
            .with_recorder(rec.clone());
        let report = solve_coloring(&g, &opts);
        assert!(report.outcome.is_decided());
        for phase in Phase::ALL {
            assert!(rec.phase_count(phase) > 0, "no {phase} span recorded");
        }
        assert!(rec.counter(sbgc_obs::Counter::Decisions) > 0);
        assert_eq!(rec.open_spans(), 0);
        // Sequential solve: no portfolio worker records.
        assert!(rec.workers().is_empty());
    }

    #[test]
    fn recorder_captures_portfolio_workers() {
        let g = queens(5, 5);
        let rec = Recorder::new();
        let opts = SolveOptions::new(6).with_parallelism(3).with_recorder(rec.clone());
        let report = solve_coloring(&g, &opts);
        assert!(report.outcome.is_decided());
        assert_eq!(rec.workers().len(), 3);
        assert_eq!(rec.workers().iter().filter(|w| w.won).count(), 1);
    }

    #[test]
    fn zero_budget_gives_unknown() {
        let g = queens(5, 5);
        let opts = SolveOptions::new(6).with_budget(Budget::unlimited().with_max_conflicts(0));
        let report = solve_coloring(&g, &opts);
        assert!(matches!(
            report.outcome,
            ColoringOutcome::Unknown | ColoringOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn exhausted_budget_reports_its_reason() {
        let g = queens(5, 5);
        let opts = SolveOptions::new(6).with_budget(Budget::unlimited().with_max_conflicts(0));
        let report = solve_coloring(&g, &opts);
        assert!(!report.outcome.is_decided());
        assert_eq!(report.exhaust, Some(ExhaustReason::Conflicts));
    }

    #[test]
    fn decided_runs_carry_no_exhaust_reason() {
        let g = Graph::complete(3);
        let report = solve_coloring(&g, &SolveOptions::new(4));
        assert!(report.outcome.is_decided());
        assert_eq!(report.exhaust, None);
    }

    #[test]
    fn zero_color_bound_is_a_typed_error() {
        let g = Graph::complete(3);
        let err = try_solve_coloring(&g, &SolveOptions::new(0)).unwrap_err();
        assert_eq!(err, SolveError::ZeroColorBound);
    }
}

//! Typed errors of the solving pipeline.
//!
//! The original entry points of this crate report misuse (a zero color
//! bound, an empty graph, a portfolio with no workers) by panicking —
//! acceptable in a research harness, but hostile to callers that feed the
//! pipeline untrusted inputs. The `try_*` variants introduced alongside
//! them return [`SolveError`] instead; the panicking forms remain as thin
//! wrappers so existing code keeps its behavior (see `docs/ROBUSTNESS.md`).

use crate::checkpoint::CheckpointError;
use sbgc_pb::PortfolioError;

/// Why a solve could not even be attempted. These are *input* failures,
/// distinct from budget exhaustion (which yields an `Unknown`/bracketed
/// outcome, not an error — partial answers are still answers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The graph has no vertices; chromatic-number queries are undefined.
    EmptyGraph,
    /// The color bound K was 0; the encoding needs at least one color.
    ZeroColorBound,
    /// The underlying portfolio race could not start.
    Portfolio(PortfolioError),
    /// A persistent incremental session was requested for a configuration
    /// without an incremental interface: the branch-and-bound CPLEX
    /// baseline, or instance-dependent (Shatter) SBPs, whose soundness
    /// under suffix color assumptions is not established (see
    /// `DESIGN.md` §4g). Use the one-shot optimization path instead.
    UnsupportedIncremental,
    /// The search derived a bracket with `upper < lower` — an invariant
    /// violation, never a legitimate answer. A coloring below a proven
    /// clique bound means one of the two "proofs" is wrong (an improper
    /// witness that slipped past verification, or an unsound lower bound),
    /// so the contradiction is surfaced instead of being laundered into a
    /// fake `Exact` result (see `DESIGN.md` §4i).
    BoundContradiction {
        /// The proven lower bound the result contradicts.
        lower: usize,
        /// The contradicting upper bound (witness color count).
        upper: usize,
        /// Where the contradiction was detected.
        detail: String,
    },
    /// A solve checkpoint could not be written, read, or trusted —
    /// corruption, truncation, a stale graph, or a witness that failed
    /// re-validation (see [`CheckpointError`] for the specific failure).
    Checkpoint(CheckpointError),
    /// A supervisor/CLI knob was invalid at parse time: a zero watchdog
    /// window, a zero retry cap, or a checkpoint path colliding with
    /// another output artifact.
    InvalidConfig(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::EmptyGraph => write!(f, "chromatic number of the empty graph"),
            SolveError::ZeroColorBound => write!(f, "color bound K must be at least 1"),
            SolveError::Portfolio(e) => write!(f, "portfolio could not start: {e}"),
            SolveError::UnsupportedIncremental => {
                write!(f, "this solver configuration has no incremental interface")
            }
            SolveError::BoundContradiction { lower, upper, detail } => {
                write!(
                    f,
                    "bound contradiction: upper bound {upper} below proven lower bound {lower} \
                     ({detail})"
                )
            }
            SolveError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            SolveError::InvalidConfig(detail) => {
                write!(f, "invalid supervisor configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Portfolio(e) => Some(e),
            SolveError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PortfolioError> for SolveError {
    fn from(e: PortfolioError) -> Self {
        SolveError::Portfolio(e)
    }
}

impl From<CheckpointError> for SolveError {
    fn from(e: CheckpointError) -> Self {
        SolveError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SolveError::ZeroColorBound.to_string().contains("K"));
        assert!(SolveError::EmptyGraph.to_string().contains("empty"));
        let wrapped = SolveError::from(PortfolioError::NoWorkers);
        assert!(wrapped.to_string().contains("portfolio"));
    }

    #[test]
    fn bound_contradiction_reports_both_bounds() {
        let e = SolveError::BoundContradiction {
            lower: 6,
            upper: 4,
            detail: "optimization collapse".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains('6') && msg.contains('4'), "{msg}");
        assert!(msg.contains("contradiction"), "{msg}");
    }

    #[test]
    fn portfolio_errors_convert() {
        let e: SolveError = PortfolioError::MissingObjective.into();
        assert_eq!(e, SolveError::Portfolio(PortfolioError::MissingObjective));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn checkpoint_errors_convert_and_chain() {
        use std::error::Error;
        let e: SolveError = CheckpointError::BadMagic.into();
        assert!(e.to_string().contains("checkpoint"));
        let source = e.source().expect("checkpoint errors carry a source");
        assert!(source.to_string().contains("magic"));
    }

    /// Satellite guarantee: every `SolveError` variant (and every
    /// `CheckpointError` / `PortfolioError` it can wrap) has a non-empty,
    /// panic-free `Display`, and `source()` chains terminate.
    #[test]
    fn every_variant_displays_without_panicking() {
        use crate::checkpoint::GraphFingerprint;
        use std::error::Error;
        let fp = GraphFingerprint { vertices: 3, edges: 2, edge_hash: 9 };
        let checkpoint_errors = vec![
            CheckpointError::Io { path: "a/b.ckpt".to_string(), detail: "denied".to_string() },
            CheckpointError::BadMagic,
            CheckpointError::UnsupportedVersion(9),
            CheckpointError::ChecksumMismatch { stored: 1, computed: 2 },
            CheckpointError::Malformed("truncated".to_string()),
            CheckpointError::GraphMismatch { stored: fp, resuming: fp },
            CheckpointError::SbpMismatch {
                stored: "nu".to_string(),
                detail: "unknown".to_string(),
            },
            CheckpointError::InvalidWitness("improper".to_string()),
        ];
        let mut errors: Vec<SolveError> = vec![
            SolveError::EmptyGraph,
            SolveError::ZeroColorBound,
            SolveError::Portfolio(PortfolioError::NoWorkers),
            SolveError::Portfolio(PortfolioError::MissingObjective),
            SolveError::UnsupportedIncremental,
            SolveError::BoundContradiction { lower: 2, upper: 1, detail: "x".to_string() },
            SolveError::InvalidConfig("watchdog window must be positive".to_string()),
        ];
        errors.extend(checkpoint_errors.into_iter().map(SolveError::Checkpoint));
        for e in errors {
            assert!(!e.to_string().is_empty(), "{e:?} must Display");
            let mut source = e.source();
            let mut depth = 0;
            while let Some(s) = source {
                assert!(!s.to_string().is_empty());
                source = s.source();
                depth += 1;
                assert!(depth < 8, "source chain of {e:?} must terminate");
            }
        }
    }
}

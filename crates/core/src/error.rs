//! Typed errors of the solving pipeline.
//!
//! The original entry points of this crate report misuse (a zero color
//! bound, an empty graph, a portfolio with no workers) by panicking —
//! acceptable in a research harness, but hostile to callers that feed the
//! pipeline untrusted inputs. The `try_*` variants introduced alongside
//! them return [`SolveError`] instead; the panicking forms remain as thin
//! wrappers so existing code keeps its behavior (see `docs/ROBUSTNESS.md`).

use sbgc_pb::PortfolioError;

/// Why a solve could not even be attempted. These are *input* failures,
/// distinct from budget exhaustion (which yields an `Unknown`/bracketed
/// outcome, not an error — partial answers are still answers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The graph has no vertices; chromatic-number queries are undefined.
    EmptyGraph,
    /// The color bound K was 0; the encoding needs at least one color.
    ZeroColorBound,
    /// The underlying portfolio race could not start.
    Portfolio(PortfolioError),
    /// A persistent incremental session was requested for a configuration
    /// without an incremental interface: the branch-and-bound CPLEX
    /// baseline, or instance-dependent (Shatter) SBPs, whose soundness
    /// under suffix color assumptions is not established (see
    /// `DESIGN.md` §4g). Use the one-shot optimization path instead.
    UnsupportedIncremental,
    /// The search derived a bracket with `upper < lower` — an invariant
    /// violation, never a legitimate answer. A coloring below a proven
    /// clique bound means one of the two "proofs" is wrong (an improper
    /// witness that slipped past verification, or an unsound lower bound),
    /// so the contradiction is surfaced instead of being laundered into a
    /// fake `Exact` result (see `DESIGN.md` §4i).
    BoundContradiction {
        /// The proven lower bound the result contradicts.
        lower: usize,
        /// The contradicting upper bound (witness color count).
        upper: usize,
        /// Where the contradiction was detected.
        detail: String,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::EmptyGraph => write!(f, "chromatic number of the empty graph"),
            SolveError::ZeroColorBound => write!(f, "color bound K must be at least 1"),
            SolveError::Portfolio(e) => write!(f, "portfolio could not start: {e}"),
            SolveError::UnsupportedIncremental => {
                write!(f, "this solver configuration has no incremental interface")
            }
            SolveError::BoundContradiction { lower, upper, detail } => {
                write!(
                    f,
                    "bound contradiction: upper bound {upper} below proven lower bound {lower} \
                     ({detail})"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Portfolio(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PortfolioError> for SolveError {
    fn from(e: PortfolioError) -> Self {
        SolveError::Portfolio(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SolveError::ZeroColorBound.to_string().contains("K"));
        assert!(SolveError::EmptyGraph.to_string().contains("empty"));
        let wrapped = SolveError::from(PortfolioError::NoWorkers);
        assert!(wrapped.to_string().contains("portfolio"));
    }

    #[test]
    fn bound_contradiction_reports_both_bounds() {
        let e = SolveError::BoundContradiction {
            lower: 6,
            upper: 4,
            detail: "optimization collapse".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains('6') && msg.contains('4'), "{msg}");
        assert!(msg.contains("contradiction"), "{msg}");
    }

    #[test]
    fn portfolio_errors_convert() {
        let e: SolveError = PortfolioError::MissingObjective.into();
        assert_eq!(e, SolveError::Portfolio(PortfolioError::MissingObjective));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}

//! Exact graph coloring by reduction to 0-1 ILP, with instance-independent
//! and instance-dependent symmetry breaking.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Ramani, Aloul, Markov & Sakallah, *Breaking Instance-Independent
//! Symmetries in Exact Graph Coloring*, DATE 2004 / JAIR 2006). It ties
//! together the substrates of the `sbgc` workspace:
//!
//! * [`encode`] — the reduction of K-coloring to a mixed CNF/PB formula
//!   with per-vertex indicator variables, per-vertex exactly-one
//!   constraints, per-edge conflict clauses, color-usage indicators, and
//!   the `MIN Σ yᵢ` objective (paper Section 2.5);
//! * [`sbp`] — the instance-independent SBP constructions: the paper's
//!   four of Section 3 — null-color elimination (NU), cardinality-based
//!   color ordering (CA), lowest-index color ordering (LI) and selective
//!   coloring (SC) — their combinations, and the post-paper complete
//!   modes (LI-pfx, partitioning-orbitope column-lex, Walsh-style value
//!   precedence); `docs/SBP.md` is the per-mode handbook;
//! * [`flow`] — end-to-end solving: encode, optionally add
//!   instance-independent SBPs, optionally detect-and-break
//!   instance-dependent symmetries with the Shatter flow, hand the result
//!   to one of the 0-1 ILP solvers of `sbgc-pb`, decode, and
//!   independently verify the coloring;
//! * [`chromatic`] — exact chromatic numbers via the paper's K-selection
//!   procedure (DSATUR upper bound, clique lower bound, then exact
//!   optimization);
//! * [`heuristics`] — the local-search bound race (TabuCol and PartialCol
//!   descents plus clique search from `sbgc-heur`) that tightens the
//!   greedy bracket before the exact ladder issues its first query, with
//!   every heuristic result re-validated at the trust boundary;
//! * [`certify`] — verified optimality certificates: a syntactically
//!   checked witness coloring at χ plus a DRAT refutation of
//!   (χ−1)-colorability replayed through the independent checker of
//!   `sbgc-proof`;
//! * [`supervisor`] + [`checkpoint`] — resumable solves: versioned,
//!   checksummed [`SolveCheckpoint`]s written atomically at ladder-rung
//!   boundaries, resume with trust-boundary re-validation, and a
//!   watchdog-supervised retry loop with escalating budgets (see
//!   `docs/ROBUSTNESS.md`).
//!
//! # Example
//!
//! ```
//! use sbgc_core::{solve_coloring, ColoringOutcome, SolveOptions};
//! use sbgc_graph::gen::queens;
//!
//! let graph = queens(5, 5);
//! let report = solve_coloring(&graph, &SolveOptions::new(6));
//! match report.outcome {
//!     ColoringOutcome::Optimal { ref coloring, colors } => {
//!         assert_eq!(colors, 5); // queen5_5 needs exactly 5 colors
//!         assert!(coloring.is_proper(&graph));
//!     }
//!     ref other => panic!("expected optimal, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod applications;
pub mod certify;
pub mod checkpoint;
pub mod chromatic;
pub mod encode;
pub mod error;
pub mod flow;
pub mod heuristics;
pub mod sbp;
pub mod session;
pub mod supervisor;

pub use checkpoint::{CheckpointError, GraphFingerprint, SolveCheckpoint};
pub use supervisor::{
    solve_supervised, solve_supervised_instrumented, SupervisedOutcome, SupervisorConfig,
};

pub use certify::{
    certify_result, certify_result_parallel, certify_unsat_formula, certify_unsat_formula_parallel,
    certify_unsat_formula_streamed, chromatic_number_certified, OptimalityCertificate, ProofStatus,
};
pub use chromatic::{
    bounds, chromatic_number, chromatic_number_by_decision, chromatic_number_incremental,
    chromatic_number_incremental_outcome, chromatic_number_outcome, initial_bounds,
    ChromaticBounds, ChromaticOutcome, ChromaticResult, SearchStrategy,
};
pub use encode::{cnf_decision_formula, ColoringEncoding};
pub use error::SolveError;
pub use flow::{
    solve_coloring, try_solve_coloring, ColoringOutcome, PreparedColoring, SolveOptions,
    SolveReport, SymmetryHandling,
};
pub use heuristics::{race_heuristics, race_heuristics_instrumented, HeuristicOutcome};
pub use sbp::{add_instance_independent_sbps, SbpMode, SbpSizeStats};
pub use session::{ColoringSession, SessionAnswer, SessionStep};

pub use sbgc_graph::{Coloring, Graph};
pub use sbgc_obs::{Counter, FaultPlan, Phase, Recorder, RunReport};
pub use sbgc_pb::{Budget, ExhaustReason, PortfolioError, SolverKind};

//! One persistent solver session per coloring instance.
//!
//! The paper's Section 4.1 procedure probes k-colorability down a ladder
//! of color counts. Re-encoding per probe throws away every learned
//! clause at each step; a [`ColoringSession`] instead encodes **once** at
//! `K = min(options.k, DSATUR bound − 1)` — the largest color count any
//! ladder query can ask for — and answers every query by
//! *assuming* the color-usage indicators `y[target..K]` false — the
//! MiniSat-family incremental-SAT interface. Clauses learned while
//! refuting one target (and clauses imported from portfolio peers) are
//! derived by resolution from the clause database alone, so they remain
//! valid for every later query, whatever its assumptions.
//!
//! The ladder's upper bound is monotone, and the session exploits that:
//! once a `u`-coloring is witnessed,
//! [`commit_upper_bound`](ColoringSession::commit_upper_bound) turns the
//! retired suffix `¬y[u−1..K]` into permanent root-level unit clauses —
//! propagated and simplified against once, instead of re-decided as
//! assumptions after every restart — so later (strictly lower) queries run
//! against a formula as tight as a fresh encoding at their own width,
//! *plus* everything already learned.
//!
//! # Why suffix assumptions are SBP-sound
//!
//! Every instance-independent SBP construction — the paper's `NU`, `CA`,
//! `LI`, `SC` and their combinations, and the post-paper `Orbitope` /
//! `ValuePrec` modes (see `crate::sbp`) — only ever *prefers low color
//! indices*: the symmetric solutions each predicate eliminates are
//! exactly those using a higher color index where a lower one would do.
//! (The complete constructions — `LI`, `LI-pfx`, `Orbitope`, `ValuePrec`
//! — keep precisely the first-occurrence representative, whose colors
//! form a prefix `0..t`; `NU`/`CA` order used colors into a prefix;
//! `SC` variants pin the lowest indices.) Assuming `¬y[j]` for the
//! **suffix** `j ∈ [target, K)` removes only colorings that use high
//! indices — and whenever such a coloring exists, its low-index
//! representative survives both the SBPs and the assumptions. So "UNSAT
//! under the suffix assumptions" really means "not `target`-colorable",
//! for every SBP mode. Each mode declares this property explicitly via
//! [`crate::SbpMode::assumption_sound`], which
//! [`ColoringSession::supports`] consults. Instance-dependent (Shatter)
//! SBPs carry no such guarantee — their lex-leader predicates mention
//! arbitrary detected symmetries, not the color-index order — which is
//! why `supports` excludes them.

use crate::chromatic::bounds;
use crate::encode::ColoringEncoding;
use crate::error::SolveError;
use crate::flow::{SolveOptions, SymmetryHandling};
use crate::sbp::add_instance_independent_sbps;
use sbgc_formula::Lit;
use sbgc_graph::{Coloring, Graph};
use sbgc_obs::{FaultPlan, Phase, Recorder};
use sbgc_pb::{
    portfolio_configs, Budget, ExhaustReason, PbEngine, PortfolioSession, SharingConfig,
    SolveOutcome, SolverKind,
};

/// What one ladder query established.
#[derive(Clone, Debug)]
pub enum SessionAnswer {
    /// The graph is `target`-colorable; the coloring is decoded, verified
    /// proper, and compacted (so it may use fewer than `target` colors).
    Colorable(Coloring),
    /// The graph is **not** `target`-colorable: the formula refutes the
    /// suffix assumptions. `core` is the failed-assumption core the winning
    /// engine reported — the subset of `¬y[j]` literals the refutation
    /// actually used (empty when the refutation is assumption-free).
    NotColorable {
        /// Failed-assumption core (a subset of the query's assumptions).
        core: Vec<Lit>,
    },
    /// The budget ran out (or every portfolio worker died) before an
    /// answer.
    Unknown,
}

/// Everything one [`ColoringSession::query`] produced.
#[derive(Clone, Debug)]
pub struct SessionStep {
    /// The decision answer for this target.
    pub answer: SessionAnswer,
    /// Learned clauses alive in the session's engine(s) when the query
    /// started — solver state retained from earlier ladder steps (0 on the
    /// first query).
    pub retained_clauses: u64,
    /// Solver workers that served the query (1 for the sequential
    /// backend).
    pub workers: usize,
    /// Which budget dimension stopped an `Unknown` query; `None` for
    /// decided queries.
    pub exhaust: Option<ExhaustReason>,
}

enum SessionBackend {
    /// One long-lived [`PbEngine`].
    Sequential(Box<PbEngine>),
    /// A persistent portfolio: one long-lived engine per worker thread,
    /// racing each query (see [`PortfolioSession`]).
    Portfolio(PortfolioSession),
}

/// A persistent incremental coloring session: the instance is encoded
/// once, and the whole chromatic-number ladder is driven through
/// assumption queries against long-lived solver state.
///
/// Construct with [`ColoringSession::new`] (checking
/// [`ColoringSession::supports`] first), then call
/// [`query`](ColoringSession::query) with decreasing targets. The
/// `sbgc-core::chromatic` ladder (`chromatic_number_outcome` and friends)
/// drives this automatically for every supported configuration.
pub struct ColoringSession<'g> {
    backend: SessionBackend,
    encoding: ColoringEncoding,
    graph: &'g Graph,
    recorder: Recorder,
    k: usize,
    /// Largest target still queryable: `y[j]` for `j ∈ [ceiling, k)` has
    /// been committed false as permanent unit clauses (see
    /// [`ColoringSession::commit_upper_bound`]). Starts at `k`.
    ceiling: usize,
}

impl<'g> ColoringSession<'g> {
    /// Whether `options` names a configuration the session can drive
    /// incrementally: any CDCL solver (including the portfolio), with
    /// instance-independent SBPs only, in an
    /// [assumption-sound](crate::SbpMode::assumption_sound) mode. The
    /// CPLEX baseline has no incremental interface, and
    /// instance-dependent SBPs are not known to be sound under suffix
    /// assumptions (see the module docs).
    ///
    /// # Examples
    ///
    /// ```
    /// use sbgc_core::{ColoringSession, SbpMode, SolveOptions};
    ///
    /// // Every instance-independent mode — including the post-paper
    /// // Orbitope and ValuePrec — races through the session.
    /// let options = SolveOptions::new(8).with_sbp_mode(SbpMode::Orbitope);
    /// assert!(ColoringSession::supports(&options));
    ///
    /// // Instance-dependent (Shatter) SBPs are routed to per-k re-encoding.
    /// assert!(!ColoringSession::supports(&options.with_instance_dependent_sbps()));
    /// ```
    pub fn supports(options: &SolveOptions) -> bool {
        !matches!(options.solver, SolverKind::Cplex)
            && matches!(options.symmetry, SymmetryHandling::InstanceIndependentOnly)
            && options.sbp_mode.assumption_sound()
    }

    /// Encodes `graph` once at `K = min(options.k, DSATUR bound − 1)`
    /// (the largest target the ladder can query — the DSATUR bound itself
    /// is already witnessed), adds
    /// the configured instance-independent SBPs, and builds the
    /// long-lived solver backend (a persistent portfolio when the options
    /// imply one, a single persistent engine otherwise).
    ///
    /// # Errors
    ///
    /// [`SolveError::EmptyGraph`] / [`SolveError::ZeroColorBound`] on
    /// degenerate inputs, [`SolveError::UnsupportedIncremental`] when
    /// [`ColoringSession::supports`] is false for `options`.
    pub fn new(graph: &'g Graph, options: &SolveOptions) -> Result<Self, SolveError> {
        Self::new_with(graph, options, 0, None)
    }

    /// [`ColoringSession::new`] plus a worker **seed offset** and
    /// deterministic fault injection — the supervisor's rebuild interface.
    ///
    /// A retry after a watchdog trip rebuilds the session with a non-zero
    /// `seed_offset`, shifting every backend engine's diversification seed
    /// so the restarted search explores differently from the stalled one
    /// ("cancel, reseed, restart"). `fault` flows to the portfolio workers
    /// for chaos tests; production callers pass `None`.
    ///
    /// # Errors
    ///
    /// As [`ColoringSession::new`].
    pub fn new_with(
        graph: &'g Graph,
        options: &SolveOptions,
        seed_offset: u64,
        fault: Option<&FaultPlan>,
    ) -> Result<Self, SolveError> {
        if graph.num_vertices() == 0 {
            return Err(SolveError::EmptyGraph);
        }
        if options.k == 0 {
            return Err(SolveError::ZeroColorBound);
        }
        if !Self::supports(options) {
            return Err(SolveError::UnsupportedIncremental);
        }
        let recorder = options.recorder.clone();
        // Encode at the largest target the ladder can ever query: one
        // below the DSATUR bound (the bound itself is already witnessed,
        // so no query ever asks for it), clamped by the caller's cap. An
        // extra color layer would cost variables, conflict clauses and
        // SBP rows on every single query.
        let k = bounds(graph).upper.saturating_sub(1).max(1).min(options.k);
        let mut encoding = {
            let _span = recorder.span(Phase::Encode);
            ColoringEncoding::new(graph, k)
        };
        // The ladder asks decision queries; the `MIN Σ yᵢ` objective is
        // replaced by the suffix assumptions.
        encoding.formula_mut().clear_objective();
        {
            let _span = recorder.span(Phase::Sbp);
            let _ = add_instance_independent_sbps(&mut encoding, graph, options.sbp_mode);
        }
        let backend = match options.portfolio_workers() {
            Some(n) => {
                let configs: Vec<_> = portfolio_configs(n)
                    .iter()
                    .map(|c| c.with_seed(c.seed.wrapping_add(seed_offset)))
                    .collect();
                let session = PortfolioSession::with_instrumentation(
                    encoding.formula(),
                    &configs,
                    &recorder,
                    fault,
                    Some(SharingConfig::default()),
                )?;
                SessionBackend::Portfolio(session)
            }
            None => {
                let config =
                    options.solver.engine_config().expect("supports() admits only CDCL solvers");
                let config = config.with_seed(config.seed.wrapping_add(seed_offset));
                let mut engine = PbEngine::from_formula(encoding.formula(), config);
                engine.set_recorder(recorder.clone());
                SessionBackend::Sequential(Box::new(engine))
            }
        };
        Ok(ColoringSession { backend, encoding, graph, recorder, k, ceiling: k })
    }

    /// Informs the session that a `upper`-coloring has been witnessed, so
    /// no future query will ever ask for more than `upper − 1` colors. The
    /// session *commits* `¬y[j]` for the retired suffix `j ∈ [upper−1, k)`
    /// as permanent unit clauses in every backend engine. Returns how many
    /// color indicators were retired (0 when the bound changes nothing).
    ///
    /// This is the incremental ladder's edge over per-query assumptions:
    /// a root-level unit is propagated and simplified against once, while
    /// an assumption is re-decided after every restart. It is sound
    /// precisely because the ladder's upper bound is monotone — every
    /// future query's assumption set would contain these literals anyway —
    /// and it lowers [`ColoringSession::ceiling`] accordingly: queries
    /// above the new ceiling would be answered against the strengthened
    /// formula and are rejected.
    ///
    /// The witness does not have to come from the session itself: the
    /// hybrid chromatic search commits a *validated* TabuCol/PartialCol
    /// incumbent here before the first query, so the exact ladder starts
    /// below the heuristic bound and skips the rungs in between. Only
    /// re-validated colorings may reach this method — an unchecked upper
    /// bound would strengthen the formula unsoundly (see `DESIGN.md` §4i).
    pub fn commit_upper_bound(&mut self, upper: usize) -> usize {
        let new_ceiling = upper.saturating_sub(1).clamp(1, self.ceiling);
        if new_ceiling == self.ceiling {
            return 0;
        }
        let units: Vec<Lit> =
            (new_ceiling..self.ceiling).map(|j| self.encoding.y(j).negative()).collect();
        match &mut self.backend {
            SessionBackend::Sequential(engine) => {
                for &lit in &units {
                    engine.add_clause([lit]);
                }
            }
            SessionBackend::Portfolio(session) => session.commit_units(&units),
        }
        let retired = self.ceiling - new_ceiling;
        self.ceiling = new_ceiling;
        retired
    }

    /// The encoding width `K`: the largest color count the session can
    /// express. The first query may take any `target ≤ K`; `target == K`
    /// runs with no assumptions at all.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The largest target still queryable: `K` until
    /// [`commit_upper_bound`](ColoringSession::commit_upper_bound) retires
    /// part of the color suffix.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Workers still alive in the backend (always 1 for sequential).
    pub fn alive_workers(&self) -> usize {
        match &self.backend {
            SessionBackend::Sequential(_) => 1,
            SessionBackend::Portfolio(p) => p.alive_workers(),
        }
    }

    /// The diversification seed of each backend engine, in worker order
    /// (a single entry for the sequential backend) — persisted in
    /// checkpoints so a resume can diversify away from them.
    pub fn worker_seeds(&self) -> Vec<u64> {
        match &self.backend {
            SessionBackend::Sequential(engine) => vec![engine.config().seed],
            SessionBackend::Portfolio(p) => p.worker_seeds(),
        }
    }

    /// Exports the learned clauses worth persisting in a checkpoint:
    /// every clause that passes the default LBD/size share filter. For
    /// the portfolio backend this is the shared pool's snapshot (clauses
    /// already filtered at export time); for the sequential backend the
    /// engine's live learned clauses are filtered here. Each clause is
    /// entailed by the encoding plus the committed bounds (see the module
    /// docs), so it stays valid for any resumed query.
    pub fn export_learned(&self) -> Vec<(Vec<Lit>, u32)> {
        match &self.backend {
            SessionBackend::Sequential(engine) => engine.export_learned(SharingConfig::default()),
            SessionBackend::Portfolio(p) => p.export_clauses(),
        }
    }

    /// Imports externally supplied learned clauses (a resumed
    /// checkpoint's lemmas) into the backend and returns how many were
    /// accepted. The caller must have re-committed the bounds the clauses
    /// were learned under first — `supervisor::resume` does — or the
    /// import would be unsound.
    pub fn import_learned(&mut self, clauses: &[(Vec<Lit>, u32)]) -> usize {
        match &mut self.backend {
            SessionBackend::Sequential(engine) => {
                let before = engine.stats().imported;
                engine.import_learned(clauses);
                (engine.stats().imported - before) as usize
            }
            SessionBackend::Portfolio(p) => p.import_clauses(clauses),
        }
    }

    /// Asks "is the graph `target`-colorable?" against the persistent
    /// solver state by assuming `¬y[j]` for every `j ∈ [target, K)`.
    ///
    /// The budget keeps solver-side semantics: its deadline is armed on
    /// first use (arm it once before the ladder to give all steps one
    /// wall-clock), and conflict caps compare against *cumulative* engine
    /// conflicts, capping the session's total work.
    ///
    /// A SAT model that fails to decode to a proper coloring (which would
    /// indicate an encoding bug) degrades to [`SessionAnswer::Unknown`]
    /// rather than returning a wrong answer.
    ///
    /// # Panics
    ///
    /// Panics if `target` is 0 or exceeds [`ColoringSession::ceiling`]
    /// (colors above the ceiling are committed away and can no longer be
    /// queried).
    pub fn query(&mut self, target: usize, budget: &Budget) -> SessionStep {
        assert!(
            target >= 1 && target <= self.ceiling,
            "target {} out of 1..={} (k = {})",
            target,
            self.ceiling,
            self.k
        );
        // Literals in [ceiling, k) are already root-level units; only the
        // live suffix needs assuming.
        let assumptions: Vec<Lit> =
            (target..self.ceiling).map(|j| self.encoding.y(j).negative()).collect();
        let recorder = self.recorder.clone();
        let (outcome, core, retained, workers, exhaust) = match &mut self.backend {
            SessionBackend::Sequential(engine) => {
                let retained = engine.live_learned() as u64;
                let outcome = {
                    let _span = recorder.span(Phase::Solve);
                    engine.solve_with_assumptions(&assumptions, budget)
                };
                let core = match outcome {
                    SolveOutcome::Unsat => engine.assumption_core().to_vec(),
                    _ => Vec::new(),
                };
                let exhaust = engine.stats().exhaust;
                (outcome, core, retained, 1, exhaust)
            }
            SessionBackend::Portfolio(session) => {
                let out = {
                    let _span = recorder.span(Phase::Solve);
                    session.query(&assumptions, budget)
                };
                let workers = session.alive_workers();
                let exhaust = out.stats.exhaust;
                (out.outcome, out.core, out.retained_clauses, workers, exhaust)
            }
        };
        let (answer, exhaust) = match outcome {
            SolveOutcome::Sat(model) => {
                let _span = recorder.span(Phase::Verify);
                match self.encoding.decode(&model).filter(|c| c.is_proper(self.graph)) {
                    Some(coloring) => (SessionAnswer::Colorable(coloring.compacted()), None),
                    None => (SessionAnswer::Unknown, None),
                }
            }
            SolveOutcome::Unsat => (SessionAnswer::NotColorable { core }, None),
            SolveOutcome::Unknown => (SessionAnswer::Unknown, exhaust),
        };
        SessionStep { answer, retained_clauses: retained, workers, exhaust }
    }
}

impl std::fmt::Debug for ColoringSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.backend {
            SessionBackend::Sequential(_) => "sequential".to_string(),
            SessionBackend::Portfolio(p) => format!("portfolio({} alive)", p.alive_workers()),
        };
        write!(f, "ColoringSession(k={}, backend={backend})", self.k)
    }
}

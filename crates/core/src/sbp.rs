//! Instance-independent symmetry-breaking predicates (paper Section 3,
//! plus post-paper constructions).
//!
//! All constructions address the same instance-independent symmetry: the K
//! colors of the encoding can be permuted arbitrarily. They differ only in
//! *which slice* of that symmetric group they break and in the size and
//! propagation behavior of the constraints that do the breaking: the
//! paper's four (NU / CA / LI / SC and the NU+SC combination), two
//! extensions of those (SC-clique, LI-prefix), and two constructions from
//! the later symmetry-breaking literature — the Kaibel–Pfetsch
//! partitioning **orbitope** ([`SbpMode::Orbitope`]) and Walsh-style
//! **value precedence** ([`SbpMode::ValuePrec`]).
//!
//! The consolidated handbook in `docs/SBP.md` covers every mode — the
//! encoding construction, its clause/aux-var size formula, the soundness
//! argument, its assumption-soundness status for the incremental ladder
//! ([`SbpMode::assumption_sound`]), and where to find its measured
//! ablation numbers. Short version: NU orders color *usage*, CA orders
//! class *sizes*, SC pins a clique prefix, and LI / LI-prefix / Orbitope /
//! ValuePrec all force the canonical first-occurrence representative —
//! identical solution sets, wildly different encodings (see
//! `EXPERIMENTS.md` for how much the encoding choice matters).

use crate::encode::ColoringEncoding;
use sbgc_formula::{Lit, PbConstraint, Var};
use sbgc_graph::Graph;
use std::fmt;

/// The instance-independent SBP constructions evaluated in the paper,
/// plus the post-paper extensions (see `docs/SBP.md` for the handbook).
///
/// # Examples
///
/// ```
/// use sbgc_core::SbpMode;
///
/// // The default is the paper's baseline: no SBPs at all.
/// assert_eq!(SbpMode::default(), SbpMode::None);
///
/// // Every mode prints as its experiment-table row label.
/// assert_eq!(SbpMode::Orbitope.to_string(), "Orbitope");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SbpMode {
    /// No instance-independent SBPs (the baseline rows of Tables 2–5).
    #[default]
    None,
    /// Null-color elimination: `y[k+1] ⇒ y[k]` — unused colors may appear
    /// only after all used colors (Section 3.1).
    Nu,
    /// Cardinality-based color ordering: `Σᵢ x[i][k] ≥ Σᵢ x[i][k+1]` —
    /// color classes ordered by size; subsumes NU (Section 3.2).
    Ca,
    /// Lowest-index color ordering: colors ordered by the smallest vertex
    /// index using them; breaks *all* instance-independent symmetries
    /// (Section 3.3).
    Li,
    /// Selective coloring: pin the max-degree vertex to color 1 and its
    /// max-degree neighbor to color 2 (Section 3.4).
    Sc,
    /// NU and SC combined (the paper's best instance-independent recipe).
    NuSc,
    /// Extension of SC suggested in Section 3.4: pin an entire greedy
    /// clique to colors 1..q instead of just two vertices ("an even
    /// stronger construction would be to find a triangular clique and fix
    /// colors for all three vertices in it"). Not part of the paper's
    /// evaluated grid; used by the ablation benches.
    ScClique,
    /// Extension: the same lowest-index ordering as [`SbpMode::Li`], but
    /// in a modern tight prefix-variable encoding
    /// (`P[i][k] ⇔ x[i][k] ∨ P[i-1][k]`, strict ordering
    /// `P[i][k+1] ⇒ P[i-1][k]`) that propagates strongly and breaks the
    /// instance-independent symmetries *completely*. Not part of the
    /// paper's grid — notably, it *reverses* the paper's LI conclusion
    /// (see EXPERIMENTS.md).
    LiPrefix,
    /// Partitioning-orbitope column-lexicographic ordering
    /// (Kaibel–Pfetsch). Views the encoding exactly as the paper does —
    /// an n×K 0/1 matrix `x[v][c]` whose columns can be permuted — and
    /// keeps only the lex-max column order via the standard
    /// prefix-sum/shifted-column encoding: unit clauses zero the upper
    /// triangle (`¬x[i][c]` for `c > i`), column-prefix variables
    /// `P[i][c] ⇔ x[i][c] ∨ P[i−1][c]` track first use, and shifted-column
    /// links `x[i][c] ⇒ P[i−1][c−1]` force color c to open strictly after
    /// color c−1. Complete (exactly one representative per color-orbit
    /// survives); `nK` aux vars, `≈4nK` clauses. Not in the paper's grid.
    Orbitope,
    /// Walsh-style value precedence: color `c` may be used by vertex `i`
    /// only if color `c−1` is already used by some vertex `j < i`, in the
    /// direct aux-free decomposition (`¬x[i][c] ∨ x[0][c−1] ∨ … ∨
    /// x[i−1][c−1]`) plus the Narodytska–Walsh-style implied usage
    /// ordering `y[c+1] ⇒ y[c]`. Complete, zero auxiliary variables,
    /// `(K−1)(n+1)` clauses — but the long clauses propagate late, the
    /// same weakness the paper found in LI. Not in the paper's grid.
    ValuePrec,
}

impl SbpMode {
    /// All modes evaluated by the paper, in the row order of Tables 2–4.
    ///
    /// # Examples
    ///
    /// ```
    /// use sbgc_core::SbpMode;
    ///
    /// assert_eq!(SbpMode::ALL.len(), 6);
    /// assert!(SbpMode::ALL.starts_with(&[SbpMode::None, SbpMode::Nu]));
    /// ```
    pub const ALL: [SbpMode; 6] =
        [SbpMode::None, SbpMode::Nu, SbpMode::Ca, SbpMode::Li, SbpMode::Sc, SbpMode::NuSc];

    /// The paper's grid plus every extension — the full ablation grid.
    ///
    /// Test-time exhaustiveness checks enforce that every `SbpMode`
    /// variant appears here (and in `docs/SBP.md`), so iterating
    /// `EXTENDED` is guaranteed to cover the whole enum.
    ///
    /// # Examples
    ///
    /// ```
    /// use sbgc_core::SbpMode;
    ///
    /// assert!(SbpMode::EXTENDED.contains(&SbpMode::Orbitope));
    /// assert!(SbpMode::EXTENDED.contains(&SbpMode::ValuePrec));
    /// // ALL is a prefix of EXTENDED.
    /// assert!(SbpMode::EXTENDED.starts_with(&SbpMode::ALL));
    /// ```
    pub const EXTENDED: [SbpMode; 10] = [
        SbpMode::None,
        SbpMode::Nu,
        SbpMode::Ca,
        SbpMode::Li,
        SbpMode::Sc,
        SbpMode::NuSc,
        SbpMode::ScClique,
        SbpMode::LiPrefix,
        SbpMode::Orbitope,
        SbpMode::ValuePrec,
    ];

    /// Display name used in the experiment tables.
    ///
    /// # Examples
    ///
    /// ```
    /// use sbgc_core::SbpMode;
    ///
    /// assert_eq!(SbpMode::NuSc.display_name(), "NU+SC");
    /// assert_eq!(SbpMode::ValuePrec.display_name(), "ValPrec");
    /// ```
    pub fn display_name(self) -> &'static str {
        match self {
            SbpMode::None => "no SBPs",
            SbpMode::Nu => "NU",
            SbpMode::Ca => "CA",
            SbpMode::Li => "LI",
            SbpMode::Sc => "SC",
            SbpMode::NuSc => "NU+SC",
            SbpMode::ScClique => "SC-clq",
            SbpMode::LiPrefix => "LI-pfx",
            SbpMode::Orbitope => "Orbitope",
            SbpMode::ValuePrec => "ValPrec",
        }
    }

    /// Whether the construction stays sound under the incremental
    /// ladder's suffix assumptions `¬y[target..K]`.
    ///
    /// The persistent [`crate::ColoringSession`] encodes once at the
    /// ceiling K and asks "is the graph target-colorable?" by *assuming*
    /// the suffix colors unused. An SBP is assumption-sound iff every
    /// color-orbit of target-colorings keeps at least one representative
    /// with all its colors in the prefix `0..target` — i.e. the
    /// construction only ever prefers *low* color indices. All current
    /// modes qualify: NU/CA/Orbitope/ValuePrec order used colors into a
    /// prefix outright, LI/LI-prefix pick the first-occurrence
    /// representative (which uses a color prefix), and SC/SC-clique pin
    /// the *lowest* indices. A hypothetical mode preferring high indices
    /// (or instance-dependent lex-leader SBPs over detected symmetries,
    /// which mention y-variables arbitrarily) would return `false` and be
    /// routed to per-k re-encoding by [`crate::ColoringSession::supports`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sbgc_core::SbpMode;
    ///
    /// // Every instance-independent mode races through the session.
    /// assert!(SbpMode::EXTENDED.iter().all(|m| m.assumption_sound()));
    /// ```
    pub fn assumption_sound(self) -> bool {
        match self {
            SbpMode::None
            | SbpMode::Nu
            | SbpMode::Ca
            | SbpMode::Li
            | SbpMode::Sc
            | SbpMode::NuSc
            | SbpMode::ScClique
            | SbpMode::LiPrefix
            | SbpMode::Orbitope
            | SbpMode::ValuePrec => true,
        }
    }

    /// Parses a mode name as accepted by the bench binaries' `--sbp`
    /// flag: the display name or the variant identifier,
    /// case-insensitively, ignoring `-`/`+`/space punctuation.
    ///
    /// # Examples
    ///
    /// ```
    /// use sbgc_core::SbpMode;
    ///
    /// assert_eq!(SbpMode::parse("orbitope"), Some(SbpMode::Orbitope));
    /// assert_eq!(SbpMode::parse("NU+SC"), Some(SbpMode::NuSc));
    /// assert_eq!(SbpMode::parse("li-pfx"), Some(SbpMode::LiPrefix));
    /// assert_eq!(SbpMode::parse("shatter"), None);
    /// ```
    pub fn parse(name: &str) -> Option<SbpMode> {
        let norm: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match norm.as_str() {
            "none" | "nosbps" => SbpMode::None,
            "nu" => SbpMode::Nu,
            "ca" => SbpMode::Ca,
            "li" => SbpMode::Li,
            "sc" => SbpMode::Sc,
            "nusc" => SbpMode::NuSc,
            "scclique" | "scclq" => SbpMode::ScClique,
            "liprefix" | "lipfx" => SbpMode::LiPrefix,
            "orbitope" => SbpMode::Orbitope,
            "valueprec" | "valprec" | "valueprecedence" => SbpMode::ValuePrec,
            _ => return None,
        })
    }
}

impl fmt::Display for SbpMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Size of the constraints added by a construction, as measured by
/// [`add_instance_independent_sbps`] (and exported per run in the JSON
/// report's `sbp` object — see `docs/OBSERVABILITY.md`).
///
/// # Examples
///
/// ```
/// use sbgc_core::{add_instance_independent_sbps, ColoringEncoding, SbpMode};
/// use sbgc_graph::Graph;
///
/// let g = Graph::complete(3);
/// let mut enc = ColoringEncoding::new(&g, 3);
/// let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::ValuePrec);
/// assert_eq!(stats.aux_vars, 0); // ValuePrec is aux-free
/// assert_eq!(stats.clauses, (3 - 1) * (3 + 1)); // (K−1)(n+1)
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SbpSizeStats {
    /// Auxiliary variables introduced (only LI, LI-prefix and Orbitope
    /// introduce any).
    pub aux_vars: usize,
    /// CNF clauses appended.
    pub clauses: usize,
    /// PB constraints appended.
    pub pb_constraints: usize,
}

/// Appends the chosen instance-independent SBPs to the encoding's formula.
///
/// `graph` is needed only by the SC construction (degree information); the
/// other constructions are pure functions of the encoding.
///
/// # Examples
///
/// ```
/// use sbgc_core::{add_instance_independent_sbps, ColoringEncoding, SbpMode};
/// use sbgc_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
/// let mut enc = ColoringEncoding::new(&g, 4);
/// let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Orbitope);
/// assert_eq!(stats.aux_vars, 4 * 4); // nK column-prefix variables
/// ```
///
/// # Panics
///
/// Panics if `graph` does not match the encoding's vertex count.
pub fn add_instance_independent_sbps(
    encoding: &mut ColoringEncoding,
    graph: &Graph,
    mode: SbpMode,
) -> SbpSizeStats {
    assert_eq!(graph.num_vertices(), encoding.num_vertices(), "graph/encoding mismatch");
    let before = encoding.formula().stats();
    let before_vars = encoding.formula().num_vars();
    match mode {
        SbpMode::None => {}
        SbpMode::Nu => add_nu(encoding),
        SbpMode::Ca => add_ca(encoding),
        SbpMode::Li => add_li(encoding),
        SbpMode::Sc => add_sc(encoding, graph),
        SbpMode::NuSc => {
            add_nu(encoding);
            add_sc(encoding, graph);
        }
        SbpMode::ScClique => add_sc_clique(encoding, graph),
        SbpMode::LiPrefix => add_li_prefix(encoding),
        SbpMode::Orbitope => add_orbitope(encoding),
        SbpMode::ValuePrec => add_value_prec(encoding),
    }
    let after = encoding.formula().stats();
    SbpSizeStats {
        aux_vars: encoding.formula().num_vars() - before_vars,
        clauses: after.clauses - before.clauses,
        pb_constraints: after.pb_constraints() - before.pb_constraints(),
    }
}

/// NU — null-color elimination: `y[k+1] ⇒ y[k]` for `1 ≤ k < K`.
fn add_nu(encoding: &mut ColoringEncoding) {
    let k = encoding.num_colors();
    for j in 0..k.saturating_sub(1) {
        let a = encoding.y(j + 1).positive();
        let b = encoding.y(j).positive();
        encoding.formula_mut().add_implication(a, b);
    }
}

/// CA — cardinality-based color ordering:
/// `Σᵢ x[i][k] − Σᵢ x[i][k+1] ≥ 0` for `1 ≤ k < K`.
fn add_ca(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    for j in 0..k.saturating_sub(1) {
        let mut terms: Vec<(i64, Lit)> = Vec::with_capacity(2 * n);
        for i in 0..n {
            terms.push((1, encoding.x(i, j).positive()));
            terms.push((-1, encoding.x(i, j + 1).positive()));
        }
        let constraint = PbConstraint::at_least(terms, 0);
        encoding.formula_mut().add_pb(constraint);
    }
}

/// LI — lowest-index color ordering, in the paper's own construction
/// (Section 3.3): `nK` flag variables `V[i][k]` ("vertex i anchors color
/// k"), with
///
/// * `V[i][k] ⇒ x[i][k]` — the anchor really has the color (`nK` binary
///   clauses);
/// * `y[k] ⇒ ⋁ᵢ V[i][k]` — every used color is anchored (`K` long
///   clauses);
/// * `V[i][k] ⇒ ⋁_{j>i} V[j][k−1]` for `k ≥ 2` — the anchor of the
///   previous color has a *higher* index (`nK` long clauses, the ordering
///   direction as printed in the paper).
///
/// Totals `nK` auxiliary variables and `≈2nK` clauses, matching the
/// paper's stated size. The ordering forces used colors into a prefix
/// (subsuming NU) and orders them by anchor index; as in the paper it is
/// the largest construction and the long, weakly-propagating clauses make
/// it the *slowest* for the solvers despite being the most complete at the
/// symmetry level. See [`SbpMode::LiPrefix`] for a tight modern encoding
/// of the same idea.
fn add_li(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    if n == 0 {
        return;
    }
    // Allocate V[i][k] anchor variables.
    let mut v = vec![vec![Var::from_index(0); k]; n];
    for row in v.iter_mut() {
        for slot in row.iter_mut() {
            *slot = encoding.formula_mut().new_var();
        }
    }
    // V[i][k] => x[i][k].
    for (i, row) in v.iter().enumerate() {
        for (j, vij) in row.iter().enumerate() {
            let x = encoding.x(i, j).positive();
            encoding.formula_mut().add_clause([vij.negative(), x]);
        }
    }
    // y[k] => some anchor.
    #[allow(clippy::needless_range_loop)] // column-major access of `v`
    for j in 0..k {
        let y = encoding.y(j).positive();
        let mut clause: Vec<Lit> = vec![!y];
        clause.extend((0..n).map(|i| v[i][j].positive()));
        encoding.formula_mut().add_clause(clause);
    }
    // Anchor ordering: V[i][k] => exists anchor of color k-1 with index > i.
    for j in 1..k {
        for i in 0..n {
            let mut clause: Vec<Lit> = vec![v[i][j].negative()];
            clause.extend((i + 1..n).map(|l| v[l][j - 1].positive()));
            encoding.formula_mut().add_clause(clause);
        }
    }
}

/// LI-prefix — the extension encoding: prefix variables
/// `P[i][k] ⇔ x[i][k] ∨ P[i-1][k]` ("some vertex ≤ i uses color k") and
/// the strict ordering `P[i][k+1] ⇒ P[i-1][k]` (with `P[-1][k] = false`),
/// which forces the lowest-index vertex of color k+1 to come after that of
/// color k. Complete — no instance-independent symmetry survives — and,
/// unlike the paper's LI, built from short strongly-propagating clauses.
fn add_li_prefix(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    if n == 0 {
        return;
    }
    // Allocate P[i][k] prefix variables.
    let mut p = vec![vec![Var::from_index(0); k]; n];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = encoding.formula_mut().new_var();
        }
    }
    #[allow(clippy::needless_range_loop)] // column-major access of `p`
    for j in 0..k {
        for i in 0..n {
            let x = encoding.x(i, j).positive();
            let pij = p[i][j].positive();
            if i == 0 {
                // P[0][j] ⇔ x[0][j].
                encoding.formula_mut().add_implication(x, pij);
                encoding.formula_mut().add_implication(pij, x);
            } else {
                let prev = p[i - 1][j].positive();
                encoding.formula_mut().add_clause([!x, pij]);
                encoding.formula_mut().add_clause([!prev, pij]);
                encoding.formula_mut().add_clause([!pij, x, prev]);
            }
        }
    }
    // Strict lowest-index ordering between consecutive colors.
    for j in 0..k.saturating_sub(1) {
        // Vertex 0 can only start color 1 (index 0): P[0][j+1] must be false.
        encoding.formula_mut().add_unit(p[0][j + 1].negative());
        for i in 1..n {
            encoding.formula_mut().add_clause([p[i][j + 1].negative(), p[i - 1][j].positive()]);
        }
    }
}

/// Orbitope — Kaibel–Pfetsch partitioning-orbitope column-lex ordering in
/// the standard prefix-sum/shifted-column encoding:
///
/// * **triangle fixings** — in the lex-max representative vertex `i` can
///   only use colors `0..=i`, so `¬x[i][c]` for every `c > i`
///   (`≈K(K−1)/2` unit clauses, independent of n for `n ≥ K`);
/// * **column prefixes** — `P[i][c] ⇔ x[i][c] ∨ P[i−1][c]` ("some vertex
///   `≤ i` uses color c"), `nK` aux vars and `≈3nK` defining clauses;
/// * **shifted-column ordering** — `x[i][c] ⇒ P[i−1][c−1]` for `c ≥ 1`:
///   a vertex may use color c only if column c−1 already started strictly
///   above (`≈nK` binary clauses). Row `i = 0` is covered by the triangle.
///
/// Together these admit exactly the colorings whose columns are in
/// decreasing lexicographic order — the partitioning-orbitope
/// representative, which for partition matrices is precisely the
/// first-occurrence (staircase) form. Complete, like LI-prefix, but with
/// the ordering carried by the x-variables themselves plus hard triangle
/// units that shrink the search space before any propagation happens.
fn add_orbitope(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    if n == 0 {
        return;
    }
    // Triangle fixings: column c cannot start before row c.
    for i in 0..n {
        for j in (i + 1)..k {
            let lit = encoding.x(i, j).negative();
            encoding.formula_mut().add_unit(lit);
        }
    }
    // Column-prefix variables P[i][c] ⇔ x[i][c] ∨ P[i−1][c].
    let mut p = vec![vec![Var::from_index(0); k]; n];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = encoding.formula_mut().new_var();
        }
    }
    #[allow(clippy::needless_range_loop)] // column-major access of `p`
    for j in 0..k {
        for i in 0..n {
            let x = encoding.x(i, j).positive();
            let pij = p[i][j].positive();
            if i == 0 {
                // P[0][j] ⇔ x[0][j].
                encoding.formula_mut().add_implication(x, pij);
                encoding.formula_mut().add_implication(pij, x);
            } else {
                let prev = p[i - 1][j].positive();
                encoding.formula_mut().add_clause([!x, pij]);
                encoding.formula_mut().add_clause([!prev, pij]);
                encoding.formula_mut().add_clause([!pij, x, prev]);
            }
        }
    }
    // Shifted-column ordering: x[i][c] ⇒ P[i−1][c−1].
    for j in 1..k {
        for i in 1..n {
            let x = encoding.x(i, j).negative();
            encoding.formula_mut().add_clause([x, p[i - 1][j - 1].positive()]);
        }
    }
}

/// ValuePrec — Walsh-style value precedence between every adjacent color
/// pair, in the direct aux-free decomposition:
///
/// * `¬x[0][c]` for `c ≥ 1` — vertex 0 opens color 0 (`K−1` units);
/// * `¬x[i][c] ∨ x[0][c−1] ∨ … ∨ x[i−1][c−1]` for `i, c ≥ 1` — vertex i
///   may use color c only if c−1 is used strictly earlier
///   (`(n−1)(K−1)` long clauses, `O(n²K)` literals);
/// * `y[c+1] ⇒ y[c]` — the Narodytska–Walsh-style implied usage ordering,
///   logically redundant given the above but cheap and early-propagating
///   (`K−1` binary clauses; exactly the NU chain).
///
/// Admits exactly the first-occurrence representative of every color
/// orbit — the same solution set as LI-prefix and Orbitope — with *zero*
/// auxiliary variables, at the price of long clauses whose propagation
/// fires only once `i−1` candidates are eliminated: the same structural
/// weakness the paper diagnosed in its LI construction.
fn add_value_prec(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    if n == 0 {
        return;
    }
    // Vertex 0 anchors color 0.
    for j in 1..k {
        let lit = encoding.x(0, j).negative();
        encoding.formula_mut().add_unit(lit);
    }
    // Precedence: vertex i uses color c ⇒ some vertex j < i uses c−1.
    for j in 1..k {
        for i in 1..n {
            let mut clause: Vec<Lit> = vec![encoding.x(i, j).negative()];
            clause.extend((0..i).map(|l| encoding.x(l, j - 1).positive()));
            encoding.formula_mut().add_clause(clause);
        }
    }
    // Implied usage ordering (the NU chain) as strengthening.
    for j in 0..k.saturating_sub(1) {
        let a = encoding.y(j + 1).positive();
        let b = encoding.y(j).positive();
        encoding.formula_mut().add_implication(a, b);
    }
}

/// SC — selective coloring: pin the max-degree vertex to color 1 and its
/// max-degree neighbor (if any) to color 2.
fn add_sc(encoding: &mut ColoringEncoding, graph: &Graph) {
    let n = graph.num_vertices();
    if n == 0 {
        return;
    }
    let vl = (0..n).max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v))).expect("non-empty");
    let pin1 = encoding.x(vl, 0).positive();
    encoding.formula_mut().add_unit(pin1);
    if encoding.num_colors() < 2 {
        return;
    }
    let neighbor = graph
        .neighbors(vl)
        .iter()
        .map(|&w| w as usize)
        .max_by_key(|&w| (graph.degree(w), std::cmp::Reverse(w)));
    if let Some(vl2) = neighbor {
        let pin2 = encoding.x(vl2, 1).positive();
        encoding.formula_mut().add_unit(pin2);
    }
}

/// SC-clique — the Section 3.4 extension: pin every vertex of a greedy
/// clique `v₁ < v₂ < …` to colors `1, 2, …` (capped at K). Any proper
/// coloring assigns the clique pairwise-distinct colors, so some color
/// permutation realizes the pinning: satisfiability and the optimum are
/// preserved while up to `q` colors are fixed outright.
fn add_sc_clique(encoding: &mut ColoringEncoding, graph: &Graph) {
    let clique = sbgc_graph::algo::greedy_clique(graph);
    for (color, &v) in clique.iter().take(encoding.num_colors()).enumerate() {
        let pin = encoding.x(v, color).positive();
        encoding.formula_mut().add_unit(pin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::Coloring;

    /// The Figure 1 example graph: V1,V2,V3 form a triangle; V4 is
    /// adjacent to V3 only, so V4 can share a color with V1 or V2 — the
    /// two 3-color partitions the paper discusses.
    pub(crate) fn figure1_graph() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    }

    fn admits(encoding: &ColoringEncoding, coloring: &Coloring) -> bool {
        // Check only the zero-aux constructions via direct assignment.
        let asg = encoding.assignment_for(coloring);
        encoding.formula().is_satisfied_by(&asg)
    }

    #[test]
    fn nu_rejects_gaps_in_color_usage() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Nu);
        assert_eq!(stats.clauses, 3);
        assert_eq!(stats.aux_vars, 0);
        // Colors {0, 2, 3} used (gap at 1): rejected. (Figure 1c, left.)
        assert!(!admits(&enc, &Coloring::new(vec![0, 2, 3, 0])));
        // Colors {0, 1, 2}: accepted. (Figure 1c, right.)
        assert!(admits(&enc, &Coloring::new(vec![0, 1, 2, 0])));
    }

    #[test]
    fn ca_orders_class_sizes() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Ca);
        assert_eq!(stats.pb_constraints, 3);
        // Class sizes (1,1,2) ascending: rejected (largest class must get
        // color 1 — Figure 1d, left is invalid).
        assert!(!admits(&enc, &Coloring::new(vec![1, 2, 0, 1]))); // sizes (1,2,1)
                                                                  // Sizes (2,1,1): accepted (Figure 1d, right).
        assert!(admits(&enc, &Coloring::new(vec![0, 1, 2, 0])));
    }

    #[test]
    fn ca_subsumes_nu() {
        // Any assignment with a null color before a used color violates CA
        // too (class of size 0 ordered before a non-empty class).
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let _ = add_instance_independent_sbps(&mut enc, &g, SbpMode::Ca);
        assert!(!admits(&enc, &Coloring::new(vec![1, 2, 3, 1]))); // color 0 unused
    }

    #[test]
    fn sc_pins_two_vertices() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Sc);
        assert_eq!(stats.clauses, 2);
        // The unique max-degree vertex is index 2 (degree 3), pinned to
        // color 0; its max-degree neighbor (tie between 0 and 1, broken to
        // the smaller index 0) is pinned to color 1.
        assert!(admits(&enc, &Coloring::new(vec![1, 2, 0, 1])));
        assert!(!admits(&enc, &Coloring::new(vec![0, 1, 2, 0])), "pin violated");
        // The pinned literals are unit clauses; check them directly.
        let unit_count = enc.formula().clauses().iter().filter(|c| c.len() == 1).count();
        assert_eq!(unit_count, 2);
    }

    #[test]
    fn nusc_combines_both() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::NuSc);
        assert_eq!(stats.clauses, 3 + 2);
        assert_eq!(stats.pb_constraints, 0);
    }

    #[test]
    fn li_adds_paper_sized_predicates() {
        let g = figure1_graph();
        let (n, k) = (4, 4);
        let mut enc = ColoringEncoding::new(&g, k);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Li);
        assert_eq!(stats.aux_vars, n * k, "nK anchor variables");
        // nK (V=>x) + K (y=>anchors) + n(K-1) ordering ≈ 2nK.
        assert_eq!(stats.clauses, n * k + k + n * (k - 1));
    }

    #[test]
    fn li_prefix_adds_linear_aux_vars() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::LiPrefix);
        assert_eq!(stats.aux_vars, 4 * 4);
        assert!(stats.clauses >= 3 * 4 * 4 - 4, "≈4nK clauses, got {}", stats.clauses);
    }

    #[test]
    fn none_adds_nothing() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::None);
        assert_eq!(stats, SbpSizeStats::default());
    }

    #[test]
    fn mode_display_names_match_paper() {
        let names: Vec<&str> = SbpMode::ALL.iter().map(|m| m.display_name()).collect();
        assert_eq!(names, vec!["no SBPs", "NU", "CA", "LI", "SC", "NU+SC"]);
        assert_eq!(SbpMode::EXTENDED.len(), 10);
    }

    /// Enumerates every proper K-coloring of `g` (including ones using
    /// fewer than K colors) by brute force.
    fn proper_colorings(g: &Graph, k: usize) -> Vec<Coloring> {
        let n = g.num_vertices();
        let mut out = Vec::new();
        let mut assign = vec![0usize; n];
        loop {
            let proper =
                (0..n).all(|v| g.neighbors(v).iter().all(|&w| assign[v] != assign[w as usize]));
            if proper {
                out.push(Coloring::new(assign.clone()));
            }
            // Increment the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == n {
                    return out;
                }
                assign[pos] += 1;
                if assign[pos] < k {
                    break;
                }
                assign[pos] = 0;
                pos += 1;
            }
        }
    }

    /// The canonical first-occurrence representatives of the figure-1
    /// graph's proper colorings at K = 4: the triangle takes colors
    /// 0, 1, 2 in vertex order, and V4 (≁ V1, V2) picks any color but
    /// V3's. Every complete construction must admit exactly these.
    fn figure1_canonical_forms() -> Vec<Coloring> {
        vec![
            Coloring::new(vec![0, 1, 2, 0]),
            Coloring::new(vec![0, 1, 2, 1]),
            Coloring::new(vec![0, 1, 2, 3]),
        ]
    }

    #[test]
    fn orbitope_adds_triangle_prefix_and_ordering_clauses() {
        let g = figure1_graph();
        let (n, k) = (4usize, 4usize);
        let mut enc = ColoringEncoding::new(&g, k);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Orbitope);
        assert_eq!(stats.aux_vars, n * k, "nK column-prefix variables");
        let triangle: usize = (0..n).map(|i| k.saturating_sub(i + 1)).sum();
        let prefix_defs = k * (2 + 3 * (n - 1));
        let ordering = (k - 1) * (n - 1);
        assert_eq!(stats.clauses, triangle + prefix_defs + ordering);
        assert_eq!(stats.pb_constraints, 0);
    }

    #[test]
    fn orbitope_admits_exactly_the_first_occurrence_forms() {
        let g = figure1_graph();
        let (n, k) = (4usize, 4usize);
        let mut enc = ColoringEncoding::new(&g, k);
        let _ = add_instance_independent_sbps(&mut enc, &g, SbpMode::Orbitope);
        // Complete the assignment with the column-prefix aux values
        // (allocated directly after the nK + K base variables, row-major).
        let base = n * k + k;
        let admitted: Vec<Coloring> = proper_colorings(&g, k)
            .into_iter()
            .filter(|c| {
                let mut asg = enc.assignment_for(c);
                for i in 0..n {
                    for j in 0..k {
                        let val = (0..=i).any(|l| c.color(l) == j);
                        asg.assign(Var::from_index(base + i * k + j), val);
                    }
                }
                enc.formula().is_satisfied_by(&asg)
            })
            .collect();
        assert_eq!(admitted, figure1_canonical_forms());
    }

    #[test]
    fn value_prec_is_aux_free_with_linear_clause_count() {
        let g = figure1_graph();
        let (n, k) = (4usize, 4usize);
        let mut enc = ColoringEncoding::new(&g, k);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::ValuePrec);
        assert_eq!(stats.aux_vars, 0, "the direct decomposition is aux-free");
        assert_eq!(stats.clauses, (k - 1) * (n + 1));
        assert_eq!(stats.pb_constraints, 0);
    }

    #[test]
    fn value_prec_admits_exactly_the_first_occurrence_forms() {
        let g = figure1_graph();
        let k = 4;
        let mut enc = ColoringEncoding::new(&g, k);
        let _ = add_instance_independent_sbps(&mut enc, &g, SbpMode::ValuePrec);
        let admitted: Vec<Coloring> =
            proper_colorings(&g, k).into_iter().filter(|c| admits(&enc, c)).collect();
        assert_eq!(admitted, figure1_canonical_forms());
    }

    #[test]
    fn extended_covers_every_variant() {
        // Compile-time exhaustiveness: adding a variant breaks this match,
        // forcing EXTENDED (asserted here) and docs/SBP.md (asserted
        // below) to be extended with it.
        fn index_of(m: SbpMode) -> usize {
            match m {
                SbpMode::None => 0,
                SbpMode::Nu => 1,
                SbpMode::Ca => 2,
                SbpMode::Li => 3,
                SbpMode::Sc => 4,
                SbpMode::NuSc => 5,
                SbpMode::ScClique => 6,
                SbpMode::LiPrefix => 7,
                SbpMode::Orbitope => 8,
                SbpMode::ValuePrec => 9,
            }
        }
        let mut seen = [false; SbpMode::EXTENDED.len()];
        for &m in &SbpMode::EXTENDED {
            seen[index_of(m)] = true;
        }
        assert!(seen.iter().all(|&s| s), "EXTENDED must list every SbpMode variant");
    }

    #[test]
    fn sbp_handbook_documents_every_mode() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SBP.md");
        let handbook =
            std::fs::read_to_string(path).expect("docs/SBP.md (the SBP handbook) must exist");
        for m in SbpMode::EXTENDED {
            assert!(
                handbook.contains(m.display_name()),
                "docs/SBP.md is missing a section for `{}`",
                m.display_name()
            );
        }
    }

    #[test]
    fn parse_roundtrips_every_display_name() {
        for m in SbpMode::EXTENDED {
            assert_eq!(SbpMode::parse(m.display_name()), Some(m));
            assert_eq!(SbpMode::parse(&format!("{m:?}")), Some(m), "variant identifier");
        }
        assert_eq!(SbpMode::parse(""), None);
        assert_eq!(SbpMode::parse("shatter"), None);
    }

    #[test]
    fn sc_clique_pins_a_whole_clique() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::ScClique);
        // figure1 graph has a triangle: three unit clauses.
        assert_eq!(stats.clauses, 3);
        let units = enc.formula().clauses().iter().filter(|c| c.len() == 1).count();
        assert_eq!(units, 3);
    }

    #[test]
    fn sc_clique_caps_at_k() {
        let g = Graph::complete(5);
        let mut enc = ColoringEncoding::new(&g, 3);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::ScClique);
        assert_eq!(stats.clauses, 3, "pinning capped at K colors");
    }
}

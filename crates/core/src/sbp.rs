//! Instance-independent symmetry-breaking predicates (paper Section 3).
//!
//! All constructions address the same instance-independent symmetry: the K
//! colors of the encoding can be permuted arbitrarily. They differ in
//! strength and size:
//!
//! | mode | breaks | added size |
//! |------|--------|------------|
//! | [`SbpMode::Nu`] | permutations involving unused colors | K−1 binary clauses |
//! | [`SbpMode::Ca`] | permutations violating class-size order | K−1 PB constraints |
//! | [`SbpMode::Li`] | *all* color permutations | nK aux vars, ≈4nK clauses |
//! | [`SbpMode::Sc`] | a heuristic slice (two pinned vertices) | ≤2 unit clauses |
//! | [`SbpMode::NuSc`] | NU + SC combined | both of the above |

use crate::encode::ColoringEncoding;
use sbgc_formula::{Lit, PbConstraint, Var};
use sbgc_graph::Graph;
use std::fmt;

/// The instance-independent SBP constructions evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SbpMode {
    /// No instance-independent SBPs (the baseline rows of Tables 2–5).
    #[default]
    None,
    /// Null-color elimination: `y[k+1] ⇒ y[k]` — unused colors may appear
    /// only after all used colors (Section 3.1).
    Nu,
    /// Cardinality-based color ordering: `Σᵢ x[i][k] ≥ Σᵢ x[i][k+1]` —
    /// color classes ordered by size; subsumes NU (Section 3.2).
    Ca,
    /// Lowest-index color ordering: colors ordered by the smallest vertex
    /// index using them; breaks *all* instance-independent symmetries
    /// (Section 3.3).
    Li,
    /// Selective coloring: pin the max-degree vertex to color 1 and its
    /// max-degree neighbor to color 2 (Section 3.4).
    Sc,
    /// NU and SC combined (the paper's best instance-independent recipe).
    NuSc,
    /// Extension of SC suggested in Section 3.4: pin an entire greedy
    /// clique to colors 1..q instead of just two vertices ("an even
    /// stronger construction would be to find a triangular clique and fix
    /// colors for all three vertices in it"). Not part of the paper's
    /// evaluated grid; used by the ablation benches.
    ScClique,
    /// Extension: the same lowest-index ordering as [`SbpMode::Li`], but
    /// in a modern tight prefix-variable encoding
    /// (`P[i][k] ⇔ x[i][k] ∨ P[i-1][k]`, strict ordering
    /// `P[i][k+1] ⇒ P[i-1][k]`) that propagates strongly and breaks the
    /// instance-independent symmetries *completely*. Not part of the
    /// paper's grid — notably, it *reverses* the paper's LI conclusion
    /// (see EXPERIMENTS.md).
    LiPrefix,
}

impl SbpMode {
    /// All modes, in the row order of Tables 2–4.
    pub const ALL: [SbpMode; 6] =
        [SbpMode::None, SbpMode::Nu, SbpMode::Ca, SbpMode::Li, SbpMode::Sc, SbpMode::NuSc];

    /// The paper's grid plus the extensions.
    pub const EXTENDED: [SbpMode; 8] = [
        SbpMode::None,
        SbpMode::Nu,
        SbpMode::Ca,
        SbpMode::Li,
        SbpMode::Sc,
        SbpMode::NuSc,
        SbpMode::ScClique,
        SbpMode::LiPrefix,
    ];

    /// Display name used in the experiment tables.
    pub fn display_name(self) -> &'static str {
        match self {
            SbpMode::None => "no SBPs",
            SbpMode::Nu => "NU",
            SbpMode::Ca => "CA",
            SbpMode::Li => "LI",
            SbpMode::Sc => "SC",
            SbpMode::NuSc => "NU+SC",
            SbpMode::ScClique => "SC-clq",
            SbpMode::LiPrefix => "LI-pfx",
        }
    }
}

impl fmt::Display for SbpMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Size of the constraints added by a construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SbpSizeStats {
    /// Auxiliary variables introduced (only LI introduces any).
    pub aux_vars: usize,
    /// CNF clauses appended.
    pub clauses: usize,
    /// PB constraints appended.
    pub pb_constraints: usize,
}

/// Appends the chosen instance-independent SBPs to the encoding's formula.
///
/// `graph` is needed only by the SC construction (degree information); the
/// other constructions are pure functions of the encoding.
///
/// # Panics
///
/// Panics if `graph` does not match the encoding's vertex count.
pub fn add_instance_independent_sbps(
    encoding: &mut ColoringEncoding,
    graph: &Graph,
    mode: SbpMode,
) -> SbpSizeStats {
    assert_eq!(graph.num_vertices(), encoding.num_vertices(), "graph/encoding mismatch");
    let before = encoding.formula().stats();
    let before_vars = encoding.formula().num_vars();
    match mode {
        SbpMode::None => {}
        SbpMode::Nu => add_nu(encoding),
        SbpMode::Ca => add_ca(encoding),
        SbpMode::Li => add_li(encoding),
        SbpMode::Sc => add_sc(encoding, graph),
        SbpMode::NuSc => {
            add_nu(encoding);
            add_sc(encoding, graph);
        }
        SbpMode::ScClique => add_sc_clique(encoding, graph),
        SbpMode::LiPrefix => add_li_prefix(encoding),
    }
    let after = encoding.formula().stats();
    SbpSizeStats {
        aux_vars: encoding.formula().num_vars() - before_vars,
        clauses: after.clauses - before.clauses,
        pb_constraints: after.pb_constraints() - before.pb_constraints(),
    }
}

/// NU — null-color elimination: `y[k+1] ⇒ y[k]` for `1 ≤ k < K`.
fn add_nu(encoding: &mut ColoringEncoding) {
    let k = encoding.num_colors();
    for j in 0..k.saturating_sub(1) {
        let a = encoding.y(j + 1).positive();
        let b = encoding.y(j).positive();
        encoding.formula_mut().add_implication(a, b);
    }
}

/// CA — cardinality-based color ordering:
/// `Σᵢ x[i][k] − Σᵢ x[i][k+1] ≥ 0` for `1 ≤ k < K`.
fn add_ca(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    for j in 0..k.saturating_sub(1) {
        let mut terms: Vec<(i64, Lit)> = Vec::with_capacity(2 * n);
        for i in 0..n {
            terms.push((1, encoding.x(i, j).positive()));
            terms.push((-1, encoding.x(i, j + 1).positive()));
        }
        let constraint = PbConstraint::at_least(terms, 0);
        encoding.formula_mut().add_pb(constraint);
    }
}

/// LI — lowest-index color ordering, in the paper's own construction
/// (Section 3.3): `nK` flag variables `V[i][k]` ("vertex i anchors color
/// k"), with
///
/// * `V[i][k] ⇒ x[i][k]` — the anchor really has the color (`nK` binary
///   clauses);
/// * `y[k] ⇒ ⋁ᵢ V[i][k]` — every used color is anchored (`K` long
///   clauses);
/// * `V[i][k] ⇒ ⋁_{j>i} V[j][k−1]` for `k ≥ 2` — the anchor of the
///   previous color has a *higher* index (`nK` long clauses, the ordering
///   direction as printed in the paper).
///
/// Totals `nK` auxiliary variables and `≈2nK` clauses, matching the
/// paper's stated size. The ordering forces used colors into a prefix
/// (subsuming NU) and orders them by anchor index; as in the paper it is
/// the largest construction and the long, weakly-propagating clauses make
/// it the *slowest* for the solvers despite being the most complete at the
/// symmetry level. See [`SbpMode::LiPrefix`] for a tight modern encoding
/// of the same idea.
fn add_li(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    if n == 0 {
        return;
    }
    // Allocate V[i][k] anchor variables.
    let mut v = vec![vec![Var::from_index(0); k]; n];
    for row in v.iter_mut() {
        for slot in row.iter_mut() {
            *slot = encoding.formula_mut().new_var();
        }
    }
    // V[i][k] => x[i][k].
    for (i, row) in v.iter().enumerate() {
        for (j, vij) in row.iter().enumerate() {
            let x = encoding.x(i, j).positive();
            encoding.formula_mut().add_clause([vij.negative(), x]);
        }
    }
    // y[k] => some anchor.
    #[allow(clippy::needless_range_loop)] // column-major access of `v`
    for j in 0..k {
        let y = encoding.y(j).positive();
        let mut clause: Vec<Lit> = vec![!y];
        clause.extend((0..n).map(|i| v[i][j].positive()));
        encoding.formula_mut().add_clause(clause);
    }
    // Anchor ordering: V[i][k] => exists anchor of color k-1 with index > i.
    for j in 1..k {
        for i in 0..n {
            let mut clause: Vec<Lit> = vec![v[i][j].negative()];
            clause.extend((i + 1..n).map(|l| v[l][j - 1].positive()));
            encoding.formula_mut().add_clause(clause);
        }
    }
}

/// LI-prefix — the extension encoding: prefix variables
/// `P[i][k] ⇔ x[i][k] ∨ P[i-1][k]` ("some vertex ≤ i uses color k") and
/// the strict ordering `P[i][k+1] ⇒ P[i-1][k]` (with `P[-1][k] = false`),
/// which forces the lowest-index vertex of color k+1 to come after that of
/// color k. Complete — no instance-independent symmetry survives — and,
/// unlike the paper's LI, built from short strongly-propagating clauses.
fn add_li_prefix(encoding: &mut ColoringEncoding) {
    let (n, k) = (encoding.num_vertices(), encoding.num_colors());
    if n == 0 {
        return;
    }
    // Allocate P[i][k] prefix variables.
    let mut p = vec![vec![Var::from_index(0); k]; n];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = encoding.formula_mut().new_var();
        }
    }
    #[allow(clippy::needless_range_loop)] // column-major access of `p`
    for j in 0..k {
        for i in 0..n {
            let x = encoding.x(i, j).positive();
            let pij = p[i][j].positive();
            if i == 0 {
                // P[0][j] ⇔ x[0][j].
                encoding.formula_mut().add_implication(x, pij);
                encoding.formula_mut().add_implication(pij, x);
            } else {
                let prev = p[i - 1][j].positive();
                encoding.formula_mut().add_clause([!x, pij]);
                encoding.formula_mut().add_clause([!prev, pij]);
                encoding.formula_mut().add_clause([!pij, x, prev]);
            }
        }
    }
    // Strict lowest-index ordering between consecutive colors.
    for j in 0..k.saturating_sub(1) {
        // Vertex 0 can only start color 1 (index 0): P[0][j+1] must be false.
        encoding.formula_mut().add_unit(p[0][j + 1].negative());
        for i in 1..n {
            encoding.formula_mut().add_clause([p[i][j + 1].negative(), p[i - 1][j].positive()]);
        }
    }
}

/// SC — selective coloring: pin the max-degree vertex to color 1 and its
/// max-degree neighbor (if any) to color 2.
fn add_sc(encoding: &mut ColoringEncoding, graph: &Graph) {
    let n = graph.num_vertices();
    if n == 0 {
        return;
    }
    let vl = (0..n).max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v))).expect("non-empty");
    let pin1 = encoding.x(vl, 0).positive();
    encoding.formula_mut().add_unit(pin1);
    if encoding.num_colors() < 2 {
        return;
    }
    let neighbor = graph
        .neighbors(vl)
        .iter()
        .map(|&w| w as usize)
        .max_by_key(|&w| (graph.degree(w), std::cmp::Reverse(w)));
    if let Some(vl2) = neighbor {
        let pin2 = encoding.x(vl2, 1).positive();
        encoding.formula_mut().add_unit(pin2);
    }
}

/// SC-clique — the Section 3.4 extension: pin every vertex of a greedy
/// clique `v₁ < v₂ < …` to colors `1, 2, …` (capped at K). Any proper
/// coloring assigns the clique pairwise-distinct colors, so some color
/// permutation realizes the pinning: satisfiability and the optimum are
/// preserved while up to `q` colors are fixed outright.
fn add_sc_clique(encoding: &mut ColoringEncoding, graph: &Graph) {
    let clique = sbgc_graph::algo::greedy_clique(graph);
    for (color, &v) in clique.iter().take(encoding.num_colors()).enumerate() {
        let pin = encoding.x(v, color).positive();
        encoding.formula_mut().add_unit(pin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_graph::Coloring;

    /// The Figure 1 example graph: V1,V2,V3 form a triangle; V4 is
    /// adjacent to V3 only, so V4 can share a color with V1 or V2 — the
    /// two 3-color partitions the paper discusses.
    pub(crate) fn figure1_graph() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    }

    fn admits(encoding: &ColoringEncoding, coloring: &Coloring) -> bool {
        // Check only the zero-aux constructions via direct assignment.
        let asg = encoding.assignment_for(coloring);
        encoding.formula().is_satisfied_by(&asg)
    }

    #[test]
    fn nu_rejects_gaps_in_color_usage() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Nu);
        assert_eq!(stats.clauses, 3);
        assert_eq!(stats.aux_vars, 0);
        // Colors {0, 2, 3} used (gap at 1): rejected. (Figure 1c, left.)
        assert!(!admits(&enc, &Coloring::new(vec![0, 2, 3, 0])));
        // Colors {0, 1, 2}: accepted. (Figure 1c, right.)
        assert!(admits(&enc, &Coloring::new(vec![0, 1, 2, 0])));
    }

    #[test]
    fn ca_orders_class_sizes() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Ca);
        assert_eq!(stats.pb_constraints, 3);
        // Class sizes (1,1,2) ascending: rejected (largest class must get
        // color 1 — Figure 1d, left is invalid).
        assert!(!admits(&enc, &Coloring::new(vec![1, 2, 0, 1]))); // sizes (1,2,1)
                                                                  // Sizes (2,1,1): accepted (Figure 1d, right).
        assert!(admits(&enc, &Coloring::new(vec![0, 1, 2, 0])));
    }

    #[test]
    fn ca_subsumes_nu() {
        // Any assignment with a null color before a used color violates CA
        // too (class of size 0 ordered before a non-empty class).
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let _ = add_instance_independent_sbps(&mut enc, &g, SbpMode::Ca);
        assert!(!admits(&enc, &Coloring::new(vec![1, 2, 3, 1]))); // color 0 unused
    }

    #[test]
    fn sc_pins_two_vertices() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Sc);
        assert_eq!(stats.clauses, 2);
        // The unique max-degree vertex is index 2 (degree 3), pinned to
        // color 0; its max-degree neighbor (tie between 0 and 1, broken to
        // the smaller index 0) is pinned to color 1.
        assert!(admits(&enc, &Coloring::new(vec![1, 2, 0, 1])));
        assert!(!admits(&enc, &Coloring::new(vec![0, 1, 2, 0])), "pin violated");
        // The pinned literals are unit clauses; check them directly.
        let unit_count = enc.formula().clauses().iter().filter(|c| c.len() == 1).count();
        assert_eq!(unit_count, 2);
    }

    #[test]
    fn nusc_combines_both() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::NuSc);
        assert_eq!(stats.clauses, 3 + 2);
        assert_eq!(stats.pb_constraints, 0);
    }

    #[test]
    fn li_adds_paper_sized_predicates() {
        let g = figure1_graph();
        let (n, k) = (4, 4);
        let mut enc = ColoringEncoding::new(&g, k);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::Li);
        assert_eq!(stats.aux_vars, n * k, "nK anchor variables");
        // nK (V=>x) + K (y=>anchors) + n(K-1) ordering ≈ 2nK.
        assert_eq!(stats.clauses, n * k + k + n * (k - 1));
    }

    #[test]
    fn li_prefix_adds_linear_aux_vars() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::LiPrefix);
        assert_eq!(stats.aux_vars, 4 * 4);
        assert!(stats.clauses >= 3 * 4 * 4 - 4, "≈4nK clauses, got {}", stats.clauses);
    }

    #[test]
    fn none_adds_nothing() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::None);
        assert_eq!(stats, SbpSizeStats::default());
    }

    #[test]
    fn mode_display_names_match_paper() {
        let names: Vec<&str> = SbpMode::ALL.iter().map(|m| m.display_name()).collect();
        assert_eq!(names, vec!["no SBPs", "NU", "CA", "LI", "SC", "NU+SC"]);
        assert_eq!(SbpMode::EXTENDED.len(), 8);
    }

    #[test]
    fn sc_clique_pins_a_whole_clique() {
        let g = figure1_graph();
        let mut enc = ColoringEncoding::new(&g, 4);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::ScClique);
        // figure1 graph has a triangle: three unit clauses.
        assert_eq!(stats.clauses, 3);
        let units = enc.formula().clauses().iter().filter(|c| c.len() == 1).count();
        assert_eq!(units, 3);
    }

    #[test]
    fn sc_clique_caps_at_k() {
        let g = Graph::complete(5);
        let mut enc = ColoringEncoding::new(&g, 3);
        let stats = add_instance_independent_sbps(&mut enc, &g, SbpMode::ScClique);
        assert_eq!(stats.clauses, 3, "pinning capped at K colors");
    }
}

//! The resumable solve supervisor: checkpoints, watchdog, retries.
//!
//! [`solve_supervised`] wraps the incremental chromatic ladder
//! (`crate::chromatic`) in a fault-tolerant control loop with three
//! independent layers:
//!
//! 1. **Auto-checkpointing.** With a configured checkpoint path, a
//!    [`SolveCheckpoint`] — bracket, incumbent witness, worker seeds, and
//!    the learned clauses passing the share filter — is persisted
//!    atomically after the initial bounds and after *every* ladder rung.
//!    A process killed mid-ladder loses at most one rung of work.
//! 2. **Resume.** With a configured resume path, the supervisor loads the
//!    checkpoint, re-validates it at the trust boundary (graph
//!    fingerprint, SBP mode, witness propriety — corrupted or stale files
//!    are typed [`SolveError`]s, never panics), rebuilds a
//!    [`ColoringSession`], re-commits the restored upper bound as root
//!    units, and only then re-imports the persisted clauses. The order
//!    matters: each persisted clause is entailed by the encoding plus the
//!    bounds committed when it was learned, so the bounds must be in
//!    place first.
//! 3. **Watchdog + retries.** A wall-clock watchdog thread samples the
//!    recorder's conflict counter; if no conflict progress happens for
//!    the configured window, the attempt's cancel token is tripped
//!    ("cancel"), the session's learned clauses are exported, and the
//!    solve restarts with shifted worker seeds ("reseed, restart") and an
//!    escalated budget — caps multiplied by the escalation factor per
//!    retry, up to [`MAX_ESCALATION`]. Genuine budget exhaustion retries
//!    through the same escalation path; the bracket and clauses carry
//!    over, so no retry ever re-proves a committed rung.
//!
//! See `docs/ROBUSTNESS.md` ("Checkpoint & resume", "Watchdog/retry")
//! for the operational story and the chaos tests that pin it down.

use crate::checkpoint::{CheckpointError, GraphFingerprint, SolveCheckpoint};
use crate::chromatic::{bounds, initial_bounds, ChromaticOutcome, ChromaticResult};
use crate::error::SolveError;
use crate::flow::SolveOptions;
use crate::sbp::SbpMode;
use crate::session::{ColoringSession, SessionAnswer};
use sbgc_formula::Lit;
use sbgc_graph::{Coloring, Graph};
use sbgc_obs::{
    Counter, FaultPlan, LadderStepTelemetry, Recorder, ResumeTelemetry, SupervisorTelemetry,
};
use sbgc_pb::{CancelToken, ExhaustReason};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard cap on the budget-escalation factor: caps double (or multiply by
/// the configured factor) per retry but never beyond this.
pub const MAX_ESCALATION: u32 = 64;

/// Worker-seed stride between attempts: each retry shifts every backend
/// engine's diversification seed by this (odd) constant so the restarted
/// search explores a genuinely different portfolio trajectory.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Knobs of the supervised solve. Construct with
/// [`SupervisorConfig::new`], chain the builders, and let
/// [`solve_supervised`] validate — or call
/// [`validate`](SupervisorConfig::validate) eagerly at CLI-parse time.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Where to auto-checkpoint at ladder-rung boundaries; `None`
    /// disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// A checkpoint to resume from; `None` starts fresh.
    pub resume_from: Option<PathBuf>,
    /// Watchdog stall window: an attempt with no conflict progress for
    /// this long is cancelled and retried. `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Maximum retries after the first attempt (total attempts =
    /// `max_retries + 1`). Must be ≥ 1; a solve that should never retry
    /// belongs on the plain `chromatic_number_outcome` path.
    pub max_retries: u32,
    /// Per-retry budget multiplier (conflicts, time, memory), applied
    /// cumulatively up to [`MAX_ESCALATION`]. Must be ≥ 1; the default 2
    /// doubles per retry.
    pub escalation: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_path: None,
            resume_from: None,
            watchdog: None,
            max_retries: 3,
            escalation: 2,
        }
    }
}

impl SupervisorConfig {
    /// The default configuration: no checkpointing, no resume, no
    /// watchdog, 3 retries, escalation factor 2.
    pub fn new() -> Self {
        Self::default()
    }

    /// Auto-checkpoint to `path` at every ladder-rung boundary.
    pub fn with_checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resume from the checkpoint at `path`.
    pub fn with_resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Cancel and retry an attempt after `window` without conflict
    /// progress.
    pub fn with_watchdog(mut self, window: Duration) -> Self {
        self.watchdog = Some(window);
        self
    }

    /// Allow up to `retries` retries after the first attempt.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Multiply budget caps by `factor` per retry.
    pub fn with_escalation(mut self, factor: u32) -> Self {
        self.escalation = factor;
        self
    }

    /// Rejects misconfigurations at parse time with typed errors instead
    /// of silent misbehavior at solve time.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidConfig`] for a zero watchdog window (every
    /// attempt would be cancelled instantly), a retry cap of 0 (the
    /// supervisor exists to retry; use the plain chromatic entry points
    /// for one-shot solves), a zero escalation factor (retries would run
    /// with an empty budget), or a checkpoint path that is also the
    /// resume path's temp file.
    pub fn validate(&self) -> Result<(), SolveError> {
        if self.watchdog == Some(Duration::ZERO) {
            return Err(SolveError::InvalidConfig(
                "watchdog window must be positive (a zero window cancels every attempt \
                 before its first conflict)"
                    .to_string(),
            ));
        }
        if self.max_retries == 0 {
            return Err(SolveError::InvalidConfig(
                "retry cap must be at least 1; for a solve that never retries use \
                 chromatic_number_outcome directly"
                    .to_string(),
            ));
        }
        if self.escalation == 0 {
            return Err(SolveError::InvalidConfig(
                "escalation factor must be at least 1 (0 would zero every retry's budget)"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// Everything a supervised solve produced: the chromatic answer plus the
/// supervision trace (attempts, watchdog trips, checkpoints written).
#[derive(Clone, Debug)]
pub struct SupervisedOutcome {
    /// The chromatic answer (exact or bracketed), exactly as the plain
    /// ladder would report it.
    pub outcome: ChromaticOutcome,
    /// Solve attempts made (1 = no retries were needed).
    pub attempts: u64,
    /// Times the watchdog cancelled a stalled attempt.
    pub watchdog_trips: u64,
    /// Checkpoints successfully written.
    pub checkpoints_written: u64,
    /// Whether the solve started from a restored checkpoint.
    pub resumed: bool,
}

/// Runs the incremental chromatic ladder under the supervisor loop (see
/// the module docs). Equivalent to `chromatic_number_outcome` when
/// `config` is all-default, plus crash safety and stall recovery when it
/// is not.
///
/// # Errors
///
/// [`SolveError::InvalidConfig`] for invalid knobs,
/// [`SolveError::Checkpoint`] for unwritable/corrupted/stale checkpoints,
/// [`SolveError::UnsupportedIncremental`] for configurations without the
/// incremental session interface (the supervisor checkpoints *session*
/// state), plus everything the underlying ladder can return.
pub fn solve_supervised(
    graph: &Graph,
    options: &SolveOptions,
    config: &SupervisorConfig,
) -> Result<SupervisedOutcome, SolveError> {
    solve_supervised_instrumented(graph, options, config, None)
}

/// [`solve_supervised`] plus deterministic fault injection for the chaos
/// suite: mid-rung kills (a panic at a scheduled rung start, after the
/// previous rung's checkpoint is on disk), stalled session workers (the
/// watchdog's prey), checkpoint bit-flips and artifact write failures.
/// Production callers pass `None`; injected faults apply to the first
/// attempt only, so retries genuinely recover.
///
/// # Errors
///
/// As [`solve_supervised`].
pub fn solve_supervised_instrumented(
    graph: &Graph,
    options: &SolveOptions,
    config: &SupervisorConfig,
    fault: Option<&FaultPlan>,
) -> Result<SupervisedOutcome, SolveError> {
    config.validate()?;
    if graph.num_vertices() == 0 {
        return Err(SolveError::EmptyGraph);
    }
    if options.k == 0 {
        return Err(SolveError::ZeroColorBound);
    }
    if !ColoringSession::supports(options) {
        return Err(SolveError::UnsupportedIncremental);
    }
    // The watchdog detects stalls through the recorder's conflict
    // counter, so supervision needs an enabled recorder even when the
    // caller runs without telemetry.
    let mut options = options.clone();
    if !options.recorder.is_enabled() && config.watchdog.is_some() {
        options.recorder = Recorder::new();
    }
    let recorder = options.recorder.clone();

    // Establish the starting state: a validated checkpoint, or the usual
    // heuristic-tightened greedy bracket.
    let (mut state, mut pending_resume) = match &config.resume_from {
        Some(path) => {
            let (state, telemetry) = restore(graph, &options, path)?;
            (state, Some(telemetry))
        }
        None => {
            let b = initial_bounds(graph, &options)?;
            (
                SolveState {
                    lower: b.lower,
                    upper: b.upper,
                    witness: b.witness,
                    clauses: Vec::new(),
                },
                None,
            )
        }
    };
    let resumed = pending_resume.is_some();

    let mut supervision = Supervision {
        attempts: 0,
        watchdog_trips: 0,
        checkpoints_written: 0,
        final_escalation: 1,
        config,
        recorder: recorder.clone(),
    };

    if state.lower >= state.upper {
        // Bracket already collapsed (clique met DSATUR, or the resumed
        // checkpoint was final): provably optimal without any search. A
        // checkpoint is still written so a `--checkpoint` run always
        // leaves a resumable artifact behind.
        supervision.attempts = 1;
        supervision.write_checkpoint(graph, &options, &state, None, fault)?;
        let outcome = ChromaticOutcome {
            result: ChromaticResult::Exact {
                chromatic_number: state.upper,
                witness: state.witness,
            },
            exhaust: None,
        };
        return Ok(supervision.finish(outcome, resumed));
    }

    supervision.write_checkpoint(graph, &options, &state, None, fault)?;

    let mut rungs_done: u64 = 0;
    loop {
        supervision.attempts += 1;
        let attempt = supervision.attempts;
        // Caps multiply per retry: factor = escalation^(attempt-1), capped.
        let factor = config
            .escalation
            .saturating_pow((attempt - 1).min(u64::from(u32::MAX)) as u32)
            .min(MAX_ESCALATION);
        supervision.final_escalation = u64::from(factor);
        // The first attempt runs the caller's budget verbatim (cancel
        // tokens included); retries re-arm with escalated caps and fresh
        // cancellation (a tripped watchdog token must not kill them).
        let base_budget = if factor == 1 && attempt == 1 {
            options.budget.clone()
        } else {
            options.budget.escalated(factor)
        };

        // Reseed: shift every engine seed per attempt (and once more for
        // a resume, diversifying away from the dead run's seeds).
        let seed_offset = SEED_STRIDE.wrapping_mul(attempt - 1 + u64::from(resumed));
        // Injected faults hit the first attempt only: retries must
        // demonstrate genuine recovery.
        let session_fault = if attempt == 1 { fault } else { None };
        let mut session = ColoringSession::new_with(graph, &options, seed_offset, session_fault)?;
        // Order matters: committing the restored/learned upper bound
        // first makes every carried clause entailed by the strengthened
        // formula, so the import below is sound.
        session.commit_upper_bound(state.upper);
        let imported =
            if state.clauses.is_empty() { 0 } else { session.import_learned(&state.clauses) };
        if let Some(telemetry) = pending_resume.take() {
            recorder
                .record_resume(ResumeTelemetry { clauses_imported: imported as u64, ..telemetry });
        }

        let watchdog = Watchdog::arm(config.watchdog, &recorder);
        let budget = match &watchdog {
            Some(w) => base_budget.with_cancel_token(w.token.clone()).started(),
            None => base_budget.started(),
        };

        let mut attempt_exhaust: Option<ExhaustReason> = None;
        while state.lower < state.upper {
            if fault.and_then(FaultPlan::mid_rung_kill) == Some(rungs_done) && attempt == 1 {
                panic!("injected fault: solve killed at ladder rung {rungs_done}");
            }
            let target = (state.upper - 1).min(session.k());
            let started = Instant::now();
            let s = session.query(target, &budget);
            recorder.record_ladder_step(LadderStepTelemetry {
                step: rungs_done,
                target,
                outcome: match &s.answer {
                    SessionAnswer::Colorable(_) => "sat",
                    SessionAnswer::NotColorable { .. } => "unsat",
                    SessionAnswer::Unknown => "unknown",
                }
                .to_string(),
                seconds: started.elapsed().as_secs_f64(),
                retained_clauses: s.retained_clauses,
                workers: s.workers,
            });
            match s.answer {
                SessionAnswer::Colorable(c) => {
                    rungs_done += 1;
                    let colors = c.num_colors().min(target);
                    if colors < state.lower {
                        return Err(SolveError::BoundContradiction {
                            lower: state.lower,
                            upper: colors,
                            detail: format!(
                                "supervised ladder witness at target {target} beat the lower bound"
                            ),
                        });
                    }
                    state.upper = colors;
                    state.witness = c;
                    session.commit_upper_bound(state.upper);
                    state.clauses = session.export_learned();
                    supervision.write_checkpoint(graph, &options, &state, Some(&session), fault)?;
                }
                SessionAnswer::NotColorable { .. } => {
                    rungs_done += 1;
                    state.lower = (target + 1).max(state.lower);
                    state.clauses = session.export_learned();
                    supervision.write_checkpoint(graph, &options, &state, Some(&session), fault)?;
                    if target == session.k() && state.lower < state.upper {
                        // K-cap bracket: final, not retryable.
                        let outcome = ChromaticOutcome {
                            result: ChromaticResult::Bounded {
                                lower: state.lower,
                                upper: state.upper,
                                witness: state.witness,
                            },
                            exhaust: None,
                        };
                        return Ok(supervision.finish(outcome, resumed));
                    }
                }
                SessionAnswer::Unknown => {
                    attempt_exhaust = s.exhaust;
                    break;
                }
            }
        }
        let stalled = watchdog.map(Watchdog::disarm).unwrap_or(false);
        if stalled {
            supervision.watchdog_trips += 1;
        }

        if state.lower >= state.upper {
            let outcome = ChromaticOutcome {
                result: ChromaticResult::Exact {
                    chromatic_number: state.upper,
                    witness: state.witness,
                },
                exhaust: None,
            };
            return Ok(supervision.finish(outcome, resumed));
        }

        // The attempt ran out (stall or genuine exhaustion). Carry the
        // bracket and clauses into a reseeded, escalated retry — or give
        // up honestly with everything proven so far.
        state.clauses = session.export_learned();
        drop(session);
        if supervision.attempts > u64::from(config.max_retries) {
            let outcome = ChromaticOutcome {
                result: ChromaticResult::Bounded {
                    lower: state.lower,
                    upper: state.upper,
                    witness: state.witness,
                },
                exhaust: attempt_exhaust,
            };
            return Ok(supervision.finish(outcome, resumed));
        }
    }
}

/// Mutable solve state carried across attempts (and restored from
/// checkpoints): the bracket, its witness, and the clauses worth
/// re-importing.
struct SolveState {
    lower: usize,
    upper: usize,
    witness: Coloring,
    clauses: Vec<(Vec<Lit>, u32)>,
}

/// Supervision bookkeeping shared by every exit path.
struct Supervision<'a> {
    attempts: u64,
    watchdog_trips: u64,
    checkpoints_written: u64,
    final_escalation: u64,
    config: &'a SupervisorConfig,
    recorder: Recorder,
}

impl Supervision<'_> {
    /// Persists the current state when checkpointing is configured.
    /// Write failures are hard errors: the caller asked for durability,
    /// and pretending to have it would be the silent misbehavior this
    /// module exists to remove.
    fn write_checkpoint(
        &mut self,
        graph: &Graph,
        options: &SolveOptions,
        state: &SolveState,
        session: Option<&ColoringSession<'_>>,
        fault: Option<&FaultPlan>,
    ) -> Result<(), SolveError> {
        let Some(path) = &self.config.checkpoint_path else {
            return Ok(());
        };
        let ckpt = SolveCheckpoint {
            fingerprint: GraphFingerprint::of(graph),
            sbp: options.sbp_mode.display_name().to_string(),
            ceiling: session.map(ColoringSession::k).unwrap_or(0) as u64,
            lower: state.lower as u64,
            upper: state.upper as u64,
            witness: Some(state.witness.colors().iter().map(|&c| c as u64).collect()),
            worker_seeds: session.map(ColoringSession::worker_seeds).unwrap_or_default(),
            clauses: state.clauses.clone(),
        };
        ckpt.save(path, fault)?;
        self.checkpoints_written += 1;
        Ok(())
    }

    /// Records the supervision summary and assembles the outcome.
    fn finish(self, outcome: ChromaticOutcome, resumed: bool) -> SupervisedOutcome {
        self.recorder.record_supervisor(SupervisorTelemetry {
            attempts: self.attempts,
            watchdog_trips: self.watchdog_trips,
            watchdog_secs: self.config.watchdog.map(|w| w.as_secs_f64()),
            final_escalation: self.final_escalation,
            checkpoints_written: self.checkpoints_written,
            checkpoint_path: self.config.checkpoint_path.as_ref().map(|p| p.display().to_string()),
        });
        SupervisedOutcome {
            outcome,
            attempts: self.attempts,
            watchdog_trips: self.watchdog_trips,
            checkpoints_written: self.checkpoints_written,
            resumed,
        }
    }
}

/// Loads `path` and re-validates everything the checkpoint claims at the
/// trust boundary. Returns the restored state plus the resume telemetry
/// (its `clauses_imported` is filled in once the first session accepts
/// the clauses).
fn restore(
    graph: &Graph,
    options: &SolveOptions,
    path: &std::path::Path,
) -> Result<(SolveState, ResumeTelemetry), SolveError> {
    let ckpt = SolveCheckpoint::load(path)?;
    let resuming = GraphFingerprint::of(graph);
    if ckpt.fingerprint != resuming {
        return Err(CheckpointError::GraphMismatch { stored: ckpt.fingerprint, resuming }.into());
    }
    match SbpMode::parse(&ckpt.sbp) {
        None => {
            return Err(CheckpointError::SbpMismatch {
                stored: ckpt.sbp,
                detail: "unknown SBP mode name".to_string(),
            }
            .into());
        }
        Some(mode) if mode != options.sbp_mode => {
            return Err(CheckpointError::SbpMismatch {
                stored: ckpt.sbp,
                detail: format!(
                    "resume options use {} — committed bounds and learned clauses are only \
                     sound under the encoding they were produced with",
                    options.sbp_mode.display_name()
                ),
            }
            .into());
        }
        Some(_) => {}
    }
    // The witness is cheap to re-check, so it is never trusted: length,
    // propriety, and color count must all hold before its upper bound
    // counts for anything.
    let upper = usize::try_from(ckpt.upper)
        .map_err(|_| CheckpointError::Malformed("upper bound exceeds usize".to_string()))?;
    let witness = match &ckpt.witness {
        None => None,
        Some(colors) => {
            let mut decoded = Vec::with_capacity(colors.len());
            for &c in colors {
                decoded.push(usize::try_from(c).map_err(|_| {
                    CheckpointError::InvalidWitness("color exceeds usize".to_string())
                })?);
            }
            let coloring = Coloring::new(decoded);
            if coloring.num_vertices() != graph.num_vertices() {
                return Err(CheckpointError::InvalidWitness(format!(
                    "witness colors {} vertices, graph has {}",
                    coloring.num_vertices(),
                    graph.num_vertices()
                ))
                .into());
            }
            if !coloring.is_proper(graph) {
                return Err(CheckpointError::InvalidWitness("improper coloring".to_string()).into());
            }
            if coloring.num_colors() > upper {
                return Err(CheckpointError::InvalidWitness(format!(
                    "witness uses {} colors, more than the claimed upper bound {}",
                    coloring.num_colors(),
                    upper
                ))
                .into());
            }
            Some(coloring.compacted())
        }
    };
    // The greedy bounds are recomputed from the graph, so the resumed
    // bracket can only be as good as or better than a fresh start —
    // never worse, and never below a provable clique bound.
    let fresh = bounds(graph);
    let stored_lower = usize::try_from(ckpt.lower)
        .map_err(|_| CheckpointError::Malformed("lower bound exceeds usize".to_string()))?;
    let lower = stored_lower.max(fresh.lower);
    let (upper, witness) = match witness {
        Some(w) => (w.num_colors().min(upper), w),
        // No witness in the checkpoint: the stored upper bound is
        // unwitnessed hearsay; fall back to the fresh DSATUR witness.
        None => (fresh.upper, fresh.witness),
    };
    if lower > upper {
        return Err(CheckpointError::Malformed(format!(
            "restored bracket [{lower}, {upper}] is crossed after re-validation"
        ))
        .into());
    }
    // Clauses reference the dead session's encoding variables; they are
    // only meaningful if the resumed session will rebuild the *same*
    // encoding (same ceiling). A mismatched ceiling drops them — the
    // bracket and witness still resume fine.
    let resumed_ceiling = fresh.upper.saturating_sub(1).max(1).min(options.k) as u64;
    let clauses = if ckpt.ceiling == resumed_ceiling { ckpt.clauses.clone() } else { Vec::new() };
    let telemetry = ResumeTelemetry {
        from_path: path.display().to_string(),
        lower,
        upper,
        witness_colors: Some(witness.num_colors()),
        clauses_offered: ckpt.clauses.len() as u64,
        clauses_imported: 0,
        rungs_skipped: fresh.upper.saturating_sub(upper) as u64,
    };
    Ok((SolveState { lower, upper, witness, clauses }, telemetry))
}

/// A per-attempt watchdog: a thread that trips `token` when the
/// recorder's conflict counter stops advancing for the window.
struct Watchdog {
    token: CancelToken,
    tripped: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Watchdog {
    fn arm(window: Option<Duration>, recorder: &Recorder) -> Option<Watchdog> {
        let window = window?;
        let token = CancelToken::new();
        let tripped = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let token = token.clone();
            let tripped = Arc::clone(&tripped);
            let stop = Arc::clone(&stop);
            let recorder = recorder.clone();
            // Poll often enough to trip promptly, rarely enough to stay
            // invisible next to the solver threads.
            let poll = (window / 8).clamp(Duration::from_millis(5), Duration::from_millis(250));
            std::thread::spawn(move || {
                let mut last_conflicts = recorder.counter(Counter::Conflicts);
                let mut last_progress = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    let conflicts = recorder.counter(Counter::Conflicts);
                    if conflicts != last_conflicts {
                        last_conflicts = conflicts;
                        last_progress = Instant::now();
                    } else if last_progress.elapsed() >= window {
                        tripped.store(true, Ordering::Relaxed);
                        token.cancel();
                        return;
                    }
                }
            })
        };
        Some(Watchdog { token, tripped, stop, handle })
    }

    /// Stops the thread and reports whether it tripped.
    fn disarm(self) -> bool {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
        self.tripped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::SolveOptions;
    use sbgc_graph::gen::{mycielski, queens};

    fn scratch(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sbgc-supervisor-{}-{}.ckpt", std::process::id(), name));
        p
    }

    #[test]
    fn knob_validation_rejects_degenerate_configs() {
        let zero_watchdog = SupervisorConfig::new().with_watchdog(Duration::ZERO);
        assert!(matches!(zero_watchdog.validate(), Err(SolveError::InvalidConfig(_))));
        let zero_retries = SupervisorConfig::new().with_max_retries(0);
        assert!(matches!(zero_retries.validate(), Err(SolveError::InvalidConfig(_))));
        let zero_escalation = SupervisorConfig::new().with_escalation(0);
        assert!(matches!(zero_escalation.validate(), Err(SolveError::InvalidConfig(_))));
        assert!(SupervisorConfig::new().validate().is_ok());
    }

    #[test]
    fn supervised_solve_matches_the_plain_ladder() {
        let graph = mycielski(4); // χ = 5, triangle-free: the ladder works
        let options = SolveOptions::new(8);
        let out = solve_supervised(&graph, &options, &SupervisorConfig::new()).unwrap();
        assert_eq!(out.outcome.exact(), Some(5));
        assert!(out.outcome.witness().is_proper(&graph));
        assert_eq!(out.attempts, 1);
        assert_eq!(out.watchdog_trips, 0);
        assert_eq!(out.checkpoints_written, 0);
        assert!(!out.resumed);
    }

    #[test]
    fn checkpoints_are_written_and_resumable() {
        let graph = mycielski(4); // χ = 5, bracket starts open: rungs run
        let options = SolveOptions::new(8);
        let path = scratch("resume");
        let config = SupervisorConfig::new().with_checkpoint_path(&path);
        let out = solve_supervised(&graph, &options, &config).unwrap();
        assert_eq!(out.outcome.exact(), Some(5));
        assert!(out.checkpoints_written >= 2, "initial + per-rung checkpoints");
        // The final checkpoint resumes to the exact answer without any
        // further search.
        let resume = SupervisorConfig::new().with_resume_from(&path);
        let back = solve_supervised(&graph, &options, &resume).unwrap();
        assert_eq!(back.outcome.exact(), Some(5));
        assert!(back.resumed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_a_different_graph() {
        let graph = queens(5, 5);
        let options = SolveOptions::new(8);
        let path = scratch("stale");
        let config = SupervisorConfig::new().with_checkpoint_path(&path);
        solve_supervised(&graph, &options, &config).unwrap();
        let other = mycielski(4);
        let resume = SupervisorConfig::new().with_resume_from(&path);
        let err = solve_supervised(&other, &options, &resume).unwrap_err();
        assert!(matches!(err, SolveError::Checkpoint(CheckpointError::GraphMismatch { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_a_bit_flipped_checkpoint() {
        let graph = queens(5, 5);
        let options = SolveOptions::new(8);
        let path = scratch("flipped");
        let config = SupervisorConfig::new().with_checkpoint_path(&path);
        solve_supervised(&graph, &options, &config).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        let resume = SupervisorConfig::new().with_resume_from(&path);
        let err = solve_supervised(&graph, &options, &resume).unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::Checkpoint(
                    CheckpointError::ChecksumMismatch { .. } | CheckpointError::Malformed(_)
                )
            ),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_a_mismatched_sbp_mode() {
        let graph = queens(5, 5);
        let options = SolveOptions::new(8).with_sbp_mode(SbpMode::Nu);
        let path = scratch("sbp");
        let config = SupervisorConfig::new().with_checkpoint_path(&path);
        solve_supervised(&graph, &options, &config).unwrap();
        let other = SolveOptions::new(8).with_sbp_mode(SbpMode::Li);
        let resume = SupervisorConfig::new().with_resume_from(&path);
        let err = solve_supervised(&graph, &other, &resume).unwrap_err();
        assert!(
            matches!(err, SolveError::Checkpoint(CheckpointError::SbpMismatch { .. })),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

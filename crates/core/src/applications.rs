//! The paper's motivating applications as reductions *to* graph coloring
//! (Section 2): register allocation, radio frequency assignment, printed
//! circuit board testing, and exam/time-tabling.
//!
//! Each builder returns the coloring instance plus the bookkeeping needed
//! to map a coloring back to the application's terms. The frequency
//! reduction also exposes the clique-interchange symmetries it introduces
//! (Section 3.4's closing remark) so callers can break them at the
//! specification level.

use sbgc_graph::Graph;

/// A live range `[def, kill)` of a program variable — the input of the
/// register-allocation reduction (Chaitin et al. 1981).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LiveRange {
    /// First program point at which the variable is live.
    pub def: usize,
    /// First program point at which it is dead again (exclusive).
    pub kill: usize,
}

impl LiveRange {
    /// Creates a live range.
    ///
    /// # Panics
    ///
    /// Panics if `kill <= def` (empty ranges are not live anywhere).
    pub fn new(def: usize, kill: usize) -> Self {
        assert!(kill > def, "live range must be non-empty");
        LiveRange { def, kill }
    }

    /// Two ranges interfere when they overlap.
    pub fn interferes(self, other: LiveRange) -> bool {
        self.def < other.kill && other.def < self.kill
    }
}

/// Builds the interference graph of a set of live ranges: one vertex per
/// variable, an edge between variables that are simultaneously live.
/// A proper K-coloring is a conflict-free assignment to K registers.
///
/// # Example
///
/// ```
/// use sbgc_core::applications::{register_interference_graph, LiveRange};
/// let g = register_interference_graph(&[
///     LiveRange::new(0, 4),
///     LiveRange::new(2, 6),
///     LiveRange::new(5, 8),
/// ]);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
pub fn register_interference_graph(ranges: &[LiveRange]) -> Graph {
    let n = ranges.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if ranges[i].interferes(ranges[j]) {
                edges.push((i, j));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// A geographic region demanding a number of radio frequencies — the input
/// of the frequency-assignment reduction (paper Section 2).
#[derive(Clone, Debug)]
pub struct Region {
    /// Display name.
    pub name: String,
    /// Number of frequencies this region needs.
    pub demand: usize,
}

/// The frequency-assignment coloring instance: the reduced graph plus the
/// vertex block (clique) of each region, and the clique-interchange
/// symmetry classes the reduction introduces.
#[derive(Clone, Debug)]
pub struct FrequencyInstance {
    /// The reduced graph: a `demand`-clique per region, complete bipartite
    /// edges between adjacent regions.
    pub graph: Graph,
    /// `blocks[r]` — the vertices (frequency slots) of region `r`.
    pub blocks: Vec<Vec<usize>>,
}

impl FrequencyInstance {
    /// The region a vertex belongs to.
    pub fn region_of(&self, vertex: usize) -> Option<usize> {
        self.blocks.iter().position(|b| b.contains(&vertex))
    }

    /// The interchange symmetry classes introduced by the reduction: the
    /// vertices within one region's clique are mutually interchangeable
    /// (paper Section 3.4: "adding all possible bipartite edges between
    /// cliques for adjacent regions will result in symmetries between
    /// vertices in these cliques").
    pub fn interchange_classes(&self) -> &[Vec<usize>] {
        &self.blocks
    }
}

/// Reduces frequency assignment to graph coloring: each region needing `K`
/// frequencies becomes a `K`-clique; adjacent regions get all bipartite
/// edges between their cliques (paper Section 2).
///
/// # Panics
///
/// Panics if an adjacency index is out of range.
///
/// # Example
///
/// ```
/// use sbgc_core::applications::{frequency_instance, Region};
/// let regions = vec![
///     Region { name: "north".into(), demand: 2 },
///     Region { name: "south".into(), demand: 3 },
/// ];
/// let inst = frequency_instance(&regions, &[(0, 1)]);
/// assert_eq!(inst.graph.num_vertices(), 5);
/// // Clique edges (1 + 3) + bipartite edges (6).
/// assert_eq!(inst.graph.num_edges(), 10);
/// ```
pub fn frequency_instance(regions: &[Region], adjacent: &[(usize, usize)]) -> FrequencyInstance {
    let mut blocks = Vec::with_capacity(regions.len());
    let mut next = 0usize;
    let mut edges = Vec::new();
    for region in regions {
        let members: Vec<usize> = (next..next + region.demand).collect();
        next += region.demand;
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                edges.push((a, b));
            }
        }
        blocks.push(members);
    }
    for &(r1, r2) in adjacent {
        assert!(r1 < regions.len() && r2 < regions.len(), "region index out of range");
        for &a in &blocks[r1] {
            for &b in &blocks[r2] {
                edges.push((a, b));
            }
        }
    }
    FrequencyInstance { graph: Graph::from_edges(next, edges), blocks }
}

/// Builds the PCB short-circuit testing graph (paper Section 2 / Garey &
/// Johnson): one vertex per net, an edge where two nets could short. The
/// color classes are "supernets" testable simultaneously.
///
/// `potential_shorts` lists the net pairs at risk.
pub fn pcb_test_graph(num_nets: usize, potential_shorts: &[(usize, usize)]) -> Graph {
    Graph::from_edges(num_nets, potential_shorts.iter().copied())
}

/// Builds a time-tabling conflict graph (paper Section 2, Leighton 1979 /
/// Welsh & Powell 1967): one vertex per event; an edge joins events
/// sharing a resource (student group, teacher, room). `enrollments[e]`
/// lists the resource ids event `e` uses.
///
/// # Example
///
/// ```
/// use sbgc_core::applications::timetabling_graph;
/// // Events 0 and 1 share teacher 7; event 2 is independent.
/// let g = timetabling_graph(&[vec![7, 1], vec![7, 2], vec![3]]);
/// assert!(g.has_edge(0, 1));
/// assert_eq!(g.degree(2), 0);
/// ```
pub fn timetabling_graph(enrollments: &[Vec<usize>]) -> Graph {
    let n = enrollments.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if enrollments[i].iter().any(|r| enrollments[j].contains(r)) {
                edges.push((i, j));
            }
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_coloring, SbpMode, SolveOptions};

    #[test]
    fn interference_is_interval_overlap() {
        let a = LiveRange::new(0, 5);
        let b = LiveRange::new(4, 8);
        let c = LiveRange::new(5, 9);
        assert!(a.interferes(b));
        assert!(!a.interferes(c)); // half-open: kill == def touches, no overlap
        assert!(b.interferes(c));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_live_range_rejected() {
        let _ = LiveRange::new(3, 3);
    }

    #[test]
    fn interval_graph_chromatic_equals_max_overlap() {
        // Max simultaneous liveness = 3 at point 4..5.
        let ranges = [
            LiveRange::new(0, 6),
            LiveRange::new(2, 7),
            LiveRange::new(4, 9),
            LiveRange::new(7, 10),
        ];
        let g = register_interference_graph(&ranges);
        let report = solve_coloring(&g, &SolveOptions::new(5).with_sbp_mode(SbpMode::NuSc));
        assert_eq!(report.outcome.colors(), Some(3));
    }

    #[test]
    fn frequency_instance_demands_are_cliques() {
        let regions = vec![
            Region { name: "a".into(), demand: 3 },
            Region { name: "b".into(), demand: 2 },
            Region { name: "c".into(), demand: 1 },
        ];
        let inst = frequency_instance(&regions, &[(0, 1), (1, 2)]);
        assert_eq!(inst.graph.num_vertices(), 6);
        // Region a's block is a triangle.
        let a = &inst.blocks[0];
        assert!(inst.graph.has_edge(a[0], a[1]));
        assert!(inst.graph.has_edge(a[1], a[2]));
        // Non-adjacent regions a and c share no edges.
        for &u in &inst.blocks[0] {
            for &v in &inst.blocks[2] {
                assert!(!inst.graph.has_edge(u, v));
            }
        }
        assert_eq!(inst.region_of(0), Some(0));
        assert_eq!(inst.region_of(5), Some(2));
    }

    #[test]
    fn frequency_chromatic_number_is_adjacent_demand_sum() {
        // Two adjacent regions demanding 2 and 3: need 5 frequencies.
        let regions =
            vec![Region { name: "x".into(), demand: 2 }, Region { name: "y".into(), demand: 3 }];
        let inst = frequency_instance(&regions, &[(0, 1)]);
        let report =
            solve_coloring(&inst.graph, &SolveOptions::new(6).with_sbp_mode(SbpMode::NuSc));
        assert_eq!(report.outcome.colors(), Some(5));
    }

    #[test]
    fn timetabling_conflicts() {
        let g = timetabling_graph(&[vec![1], vec![1, 2], vec![2], vec![9]]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn pcb_graph_is_just_the_conflict_graph() {
        let g = pcb_test_graph(4, &[(0, 1), (2, 3)]);
        assert_eq!(g.num_edges(), 2);
    }
}

//! Versioned, checksummed solve checkpoints.
//!
//! A [`SolveCheckpoint`] freezes everything a killed chromatic-number
//! solve has paid for and a resumed solve can soundly reuse:
//!
//! * the **bracket** `[lower, upper]` — committed ladder rungs are
//!   monotone facts about the graph, so a resumed ladder starts where the
//!   dead one stopped instead of re-proving every rung;
//! * the **incumbent witness** — the best proper coloring seen, so a
//!   resumed run that is killed again still has a feasible answer;
//! * the **learned clauses** that pass the share filter — each is entailed
//!   by the encoding plus the committed bounds, so re-committing the
//!   bounds first makes every persisted clause sound to re-import (see
//!   `docs/ROBUSTNESS.md`);
//! * the **worker seeds** that were running, so a resume can diversify
//!   away from them;
//! * a **graph fingerprint** and the SBP label, so a checkpoint is never
//!   silently replayed against a different instance or encoding.
//!
//! The on-disk format is a zero-dependency hand-rolled little-endian
//! binary layout: magic `SBGC`, a format version, the payload, and a
//! CRC-32 trailer over everything before it. [`SolveCheckpoint::load`] is
//! a trust boundary — truncated files, flipped bits, wrong versions and
//! structurally absurd payloads all come back as typed
//! [`CheckpointError`]s, never panics. Writes go through
//! `sbgc-obs::write_atomic` (temp file + rename), so a crash mid-write
//! leaves the previous checkpoint intact.

use sbgc_formula::Lit;
use sbgc_graph::Graph;
use sbgc_obs::FaultPlan;
use std::fmt;
use std::path::Path;

/// Magic prefix of every checkpoint file.
const MAGIC: [u8; 4] = *b"SBGC";
/// Current format version; bump on any layout change.
const FORMAT_VERSION: u32 = 1;
/// Decode guard: refuse absurd element counts before allocating (a
/// corrupted length prefix must not become a multi-gigabyte `Vec`).
const MAX_ELEMENTS: u64 = 1 << 28;

/// An order-insensitive identity of a graph instance: vertex count, edge
/// count, and a commutative hash over the edge set. Two isomorphic but
/// differently-labeled graphs get different fingerprints — a checkpoint
/// is only valid for the exact labeled graph it was written for, because
/// committed bounds ride on vertex-indexed encoding variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphFingerprint {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of undirected edges.
    pub edges: u64,
    /// Commutative SplitMix64 hash over normalized edges.
    pub edge_hash: u64,
}

impl GraphFingerprint {
    /// Fingerprints `graph`. Edge order does not matter; labels do.
    pub fn of(graph: &Graph) -> Self {
        let mut hash = 0u64;
        for (u, v) in graph.edges() {
            let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
            hash = hash.wrapping_add(splitmix64(((lo as u64) << 32) | hi as u64));
        }
        GraphFingerprint {
            vertices: graph.num_vertices() as u64,
            edges: graph.num_edges() as u64,
            edge_hash: hash,
        }
    }
}

impl fmt::Display for GraphFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} m={} hash={:016x}", self.vertices, self.edges, self.edge_hash)
    }
}

/// Everything a killed solve persists and a resumed solve restores.
///
/// The struct is plain data; all soundness-critical re-validation (witness
/// propriety, bracket sanity against the graph, SBP compatibility)
/// happens in `supervisor::resume`, *after* [`SolveCheckpoint::load`] has
/// established structural integrity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolveCheckpoint {
    /// Identity of the graph the checkpoint belongs to.
    pub fingerprint: GraphFingerprint,
    /// Parseable name of the SBP mode the dead solve ran with (the
    /// committed bounds and learned clauses are only sound under the same
    /// encoding).
    pub sbp: String,
    /// The encoding ceiling (session `k`) of the dead solve; learned
    /// clauses reference its variables, so a resume with a different
    /// ceiling drops them.
    pub ceiling: u64,
    /// Proven lower chromatic bound.
    pub lower: u64,
    /// Proven (witnessed) upper chromatic bound.
    pub upper: u64,
    /// The incumbent proper coloring backing `upper`, one color per
    /// vertex, when one was found.
    pub witness: Option<Vec<u64>>,
    /// RNG seed of each portfolio worker that was running.
    pub worker_seeds: Vec<u64>,
    /// Learned clauses passing the share filter, as `(literals, LBD)`.
    pub clauses: Vec<(Vec<Lit>, u32)>,
}

/// Why a checkpoint failed to load, decode, or persist. Every constructor
/// on the load path returns one of these — corrupted input is an error
/// value, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the file failed (I/O detail flattened to a
    /// string so the error stays `Clone + Eq`).
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// The file does not start with the `SBGC` magic — not a checkpoint.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The CRC-32 trailer does not match the payload: bit rot, a flipped
    /// byte, or a truncated tail.
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// The payload is structurally invalid (truncated field, absurd
    /// length prefix, out-of-range literal code, inconsistent bracket).
    Malformed(String),
    /// The checkpoint belongs to a different graph than the one being
    /// resumed.
    GraphMismatch {
        /// Fingerprint stored in the checkpoint.
        stored: GraphFingerprint,
        /// Fingerprint of the graph the caller is resuming.
        resuming: GraphFingerprint,
    },
    /// The checkpoint's SBP mode name is unknown to this build or
    /// incompatible with the resume options.
    SbpMismatch {
        /// SBP name stored in the checkpoint.
        stored: String,
        /// What the resume expected, or why the name was rejected.
        detail: String,
    },
    /// The restored witness failed re-validation at the trust boundary
    /// (wrong length, improper coloring, or color count disagreeing with
    /// the stored upper bound).
    InvalidWitness(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint I/O error on {path}: {detail}")
            }
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint file (missing SBGC magic)")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v} (this build reads ≤ {FORMAT_VERSION})")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checkpoint checksum mismatch (stored {stored:08x}, computed {computed:08x}): file is corrupted or truncated"
                )
            }
            CheckpointError::Malformed(detail) => {
                write!(f, "malformed checkpoint payload: {detail}")
            }
            CheckpointError::GraphMismatch { stored, resuming } => {
                write!(
                    f,
                    "checkpoint is for a different graph (checkpoint: {stored}; resuming: {resuming})"
                )
            }
            CheckpointError::SbpMismatch { stored, detail } => {
                write!(f, "checkpoint SBP mode {stored:?} rejected: {detail}")
            }
            CheckpointError::InvalidWitness(detail) => {
                write!(f, "checkpoint witness failed re-validation: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl SolveCheckpoint {
    /// Serializes the checkpoint to its on-disk byte layout (magic,
    /// version, payload, CRC-32 trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.clauses.len() * 16);
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, FORMAT_VERSION);
        put_u64(&mut buf, self.fingerprint.vertices);
        put_u64(&mut buf, self.fingerprint.edges);
        put_u64(&mut buf, self.fingerprint.edge_hash);
        put_bytes(&mut buf, self.sbp.as_bytes());
        put_u64(&mut buf, self.ceiling);
        put_u64(&mut buf, self.lower);
        put_u64(&mut buf, self.upper);
        match &self.witness {
            None => buf.push(0),
            Some(colors) => {
                buf.push(1);
                put_u64(&mut buf, colors.len() as u64);
                for &c in colors {
                    put_u64(&mut buf, c);
                }
            }
        }
        put_u64(&mut buf, self.worker_seeds.len() as u64);
        for &seed in &self.worker_seeds {
            put_u64(&mut buf, seed);
        }
        put_u64(&mut buf, self.clauses.len() as u64);
        for (lits, lbd) in &self.clauses {
            put_u32(&mut buf, *lbd);
            put_u64(&mut buf, lits.len() as u64);
            for &lit in lits {
                put_u32(&mut buf, lit.code() as u32);
            }
        }
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        buf
    }

    /// Decodes a checkpoint from its on-disk byte layout.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`] when the prefix is wrong,
    /// [`CheckpointError::UnsupportedVersion`] for future formats,
    /// [`CheckpointError::ChecksumMismatch`] when the CRC trailer
    /// disagrees with the payload (corruption, truncation), and
    /// [`CheckpointError::Malformed`] for structural damage the CRC
    /// happens to cover (absurd lengths, out-of-range literal codes,
    /// an inverted bracket).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // Magic and version are checked before the CRC so the caller
        // learns "not a checkpoint at all" and "newer format" distinctly;
        // both checks read only fixed offsets.
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut r = Reader { bytes, at: MAGIC.len() };
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        if bytes.len() < MAGIC.len() + 4 + 4 {
            return Err(CheckpointError::Malformed("no room for a CRC trailer".to_string()));
        }
        let payload_end = bytes.len() - 4;
        let stored = u32::from_le_bytes(bytes[payload_end..].try_into().expect("4-byte slice"));
        let computed = crc32(&bytes[..payload_end]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        r.bytes = &bytes[..payload_end];
        let fingerprint =
            GraphFingerprint { vertices: r.u64()?, edges: r.u64()?, edge_hash: r.u64()? };
        let sbp = r.string()?;
        let ceiling = r.u64()?;
        let lower = r.u64()?;
        let upper = r.u64()?;
        if lower > upper {
            return Err(CheckpointError::Malformed(format!("inverted bracket [{lower}, {upper}]")));
        }
        let witness = match r.u8()? {
            0 => None,
            1 => {
                let len = r.len(fingerprint.vertices.max(1))?;
                let mut colors = Vec::with_capacity(len);
                for _ in 0..len {
                    colors.push(r.u64()?);
                }
                Some(colors)
            }
            tag => {
                return Err(CheckpointError::Malformed(format!("bad witness tag {tag}")));
            }
        };
        let num_seeds = r.len(MAX_ELEMENTS)?;
        let mut worker_seeds = Vec::with_capacity(num_seeds);
        for _ in 0..num_seeds {
            worker_seeds.push(r.u64()?);
        }
        let num_clauses = r.len(MAX_ELEMENTS)?;
        let mut clauses = Vec::with_capacity(num_clauses.min(1024));
        for _ in 0..num_clauses {
            let lbd = r.u32()?;
            let len = r.len(MAX_ELEMENTS)?;
            let mut lits = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                lits.push(Lit::from_code(r.u32()? as usize));
            }
            clauses.push((lits, lbd));
        }
        if !r.done() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing payload bytes",
                r.bytes.len() - r.at
            )));
        }
        Ok(SolveCheckpoint {
            fingerprint,
            sbp,
            ceiling,
            lower,
            upper,
            witness,
            worker_seeds,
            clauses,
        })
    }

    /// Atomically persists the checkpoint to `path` (write temp file,
    /// flush, rename): a crash at any instant leaves either the previous
    /// checkpoint or this one, never a truncated hybrid.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure (including an
    /// injected one when `fault` schedules artifact-write failures).
    pub fn save(&self, path: &Path, fault: Option<&FaultPlan>) -> Result<(), CheckpointError> {
        sbgc_obs::write_atomic_instrumented(path, &self.to_bytes(), fault).map_err(|e| {
            CheckpointError::Io { path: path.display().to_string(), detail: e.to_string() }
        })
    }

    /// Loads and structurally validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read, otherwise
    /// everything [`SolveCheckpoint::from_bytes`] can return.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::from_bytes(&bytes)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            CheckpointError::Malformed(format!("truncated: wanted {n} bytes at offset {}", self.at))
        })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// Reads a length prefix and bounds it: a corrupted count must not
    /// drive a huge allocation or a long decode loop.
    fn len(&mut self, max: u64) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        if n > max {
            return Err(CheckpointError::Malformed(format!("length {n} exceeds bound {max}")));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let n = self.len(4096)?;
        let raw = self.take(n)?.to_vec();
        String::from_utf8(raw)
            .map_err(|_| CheckpointError::Malformed("non-UTF-8 string field".to_string()))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// CRC-32 (IEEE 802.3, reflected), bitwise — checkpoint files are small
/// enough that a lookup table would be vanity.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// SplitMix64 — same mixer the portfolio uses for seed diversification.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::Var;
    use sbgc_graph::Graph;

    fn sample() -> SolveCheckpoint {
        let lit = |code: usize| Lit::from_code(code);
        SolveCheckpoint {
            fingerprint: GraphFingerprint { vertices: 36, edges: 290, edge_hash: 0xDEAD_BEEF },
            sbp: "nu".to_string(),
            ceiling: 8,
            lower: 6,
            upper: 8,
            witness: Some((0..36).map(|v| v % 8).collect()),
            worker_seeds: vec![0, 1, 2, 3],
            clauses: vec![(vec![lit(0), lit(3), lit(7)], 2), (vec![lit(5)], 1)],
        }
    }

    #[test]
    fn round_trips_bit_exact() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        assert_eq!(SolveCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
        // And without optional parts.
        let bare = SolveCheckpoint {
            witness: None,
            worker_seeds: Vec::new(),
            clauses: Vec::new(),
            ..ckpt
        };
        assert_eq!(SolveCheckpoint::from_bytes(&bare.to_bytes()).unwrap(), bare);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1;
            let err =
                SolveCheckpoint::from_bytes(&corrupt).expect_err("a flipped bit must never decode");
            match err {
                CheckpointError::ChecksumMismatch { .. }
                | CheckpointError::BadMagic
                | CheckpointError::UnsupportedVersion(_)
                | CheckpointError::Malformed(_) => {}
                other => panic!("unexpected error class for flip at {byte}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                SolveCheckpoint::from_bytes(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
        }
    }

    #[test]
    fn future_version_is_a_typed_error() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SolveCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn absurd_length_prefix_does_not_allocate() {
        // Hand-craft a payload whose seed count claims 2^60 entries; the
        // decoder must reject the length, not try to reserve it.
        let mut ckpt = sample();
        ckpt.witness = None;
        let mut bytes = ckpt.to_bytes();
        let crc_at = bytes.len() - 4;
        // Seed-count field sits right after the witness tag: magic (4) +
        // version (4) + fingerprint (24) + sbp (8 + len) + ceiling/lower/
        // upper (24) + witness tag (1).
        let seeds_at = 4 + 4 + 24 + 8 + ckpt.sbp.len() + 24 + 1;
        bytes[seeds_at..seeds_at + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let fixed = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&fixed.to_le_bytes());
        match SolveCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::Malformed(msg)) => assert!(msg.contains("exceeds bound")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn inverted_bracket_is_malformed() {
        let mut ckpt = sample();
        ckpt.lower = 9;
        ckpt.upper = 3;
        ckpt.witness = None;
        match SolveCheckpoint::from_bytes(&ckpt.to_bytes()) {
            Err(CheckpointError::Malformed(msg)) => assert!(msg.contains("inverted")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_is_edge_order_insensitive_but_label_sensitive() {
        let a = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let b = Graph::from_edges(4, [(3, 2), (1, 0)]);
        assert_eq!(GraphFingerprint::of(&a), GraphFingerprint::of(&b));
        let c = Graph::from_edges(4, [(0, 1), (1, 2)]);
        assert_ne!(GraphFingerprint::of(&a), GraphFingerprint::of(&c));
    }

    #[test]
    fn save_and_load_round_trip_atomically() {
        let mut path = std::env::temp_dir();
        path.push(format!("sbgc-ckpt-{}.bin", std::process::id()));
        let ckpt = sample();
        ckpt.save(&path, None).unwrap();
        assert_eq!(SolveCheckpoint::load(&path).unwrap(), ckpt);
        // An injected write failure leaves the old checkpoint readable.
        let fault = FaultPlan::new(1).with_artifact_write_failure();
        let denied = SolveCheckpoint { upper: 7, ..ckpt.clone() };
        match denied.save(&path, Some(&fault)) {
            Err(CheckpointError::Io { detail, .. }) => {
                assert!(detail.contains("injected fault"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert_eq!(SolveCheckpoint::load(&path).unwrap(), ckpt, "old file must survive");
        // A corrupted write is caught by the CRC at load.
        let fault = FaultPlan::new(2).with_checkpoint_corruption(21);
        ckpt.save(&path, Some(&fault)).unwrap();
        assert!(matches!(
            SolveCheckpoint::load(&path),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        let err = SolveCheckpoint::load(Path::new("/nonexistent/sbgc.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
    }

    #[test]
    fn lit_codes_survive_the_round_trip() {
        let v = Var::from_index(12);
        let ckpt = SolveCheckpoint {
            clauses: vec![(vec![v.positive(), !Var::from_index(3).positive()], 4)],
            witness: None,
            ..sample()
        };
        let back = SolveCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back.clauses[0].0[0], v.positive());
        assert_eq!(back.clauses[0].0[1].var(), Var::from_index(3));
        assert!(back.clauses[0].0[1].is_negated());
    }
}

//! Ad-hoc probe: time individual portfolio configs on one instance/mode.
//!
//! cargo run --release -p sbgc-core --example probe -- queen6_6 SC 3 120

use sbgc_core::{PreparedColoring, SbpMode, SolveOptions};
use sbgc_pb::{optimize_portfolio, portfolio_configs, Budget};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = &args[1];
    let mode = match args[2].as_str() {
        "none" => SbpMode::None,
        "NU" => SbpMode::Nu,
        "CA" => SbpMode::Ca,
        "LI" => SbpMode::Li,
        "SC" => SbpMode::Sc,
        _ => SbpMode::NuSc,
    };
    let workers: Vec<usize> = args[3].split(',').map(|s| s.parse().unwrap()).collect();
    let timeout: u64 = args[4].parse().unwrap();
    let k: usize = args.get(5).map_or(20, |s| s.parse().unwrap());

    let graph = sbgc_graph::suite::build(name).graph;
    let options = SolveOptions::new(k).with_sbp_mode(mode);
    let prepared = PreparedColoring::new(&graph, &options);
    let formula = prepared.formula();

    let all = portfolio_configs(8);
    let configs: Vec<_> = workers.iter().map(|&i| all[i]).collect();
    let budget = Budget::unlimited().with_timeout(Duration::from_secs(timeout));
    let start = Instant::now();
    let out = optimize_portfolio(formula, &configs, &budget).unwrap();
    println!(
        "{name} {mode:?} workers {workers:?}: {:?} in {:.2}s, {} conflicts, exported {}, imported {}",
        out.outcome.value(),
        start.elapsed().as_secs_f64(),
        out.stats.conflicts,
        out.stats.exported,
        out.stats.imported,
    );
}

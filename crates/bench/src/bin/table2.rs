//! Table 2 — formula sizes and symmetry statistics per SBP construction.
//!
//! For each instance-independent SBP mode — the paper's grid
//! (none/NU/CA/LI/SC/NU+SC) plus the extensions (SC-clq, LI-pfx,
//! Orbitope, ValPrec; the full [`SbpMode::EXTENDED`] list) — this
//! encodes every configured instance at K, runs symmetry detection on the
//! result, and prints the totals the paper reports: #variables, #CNF
//! clauses, #PB constraints, Σ log₁₀|Aut| (shown as `10^x`), #generators,
//! and detection time.
//!
//! `cargo run --release -p sbgc-bench --bin table2`

use sbgc_bench::HarnessConfig;
use sbgc_core::{add_instance_independent_sbps, ColoringEncoding, SbpMode};
use sbgc_shatter::{detect_symmetries, AutomorphismOptions};
use std::time::Duration;

fn main() {
    let config = HarnessConfig::from_args(8, Duration::from_secs(10));
    let instances = config.build_instances();
    println!(
        "Table 2: formula sizes and symmetry statistics, {} instances, K = {}",
        instances.len(),
        config.k
    );
    println!(
        "{:<8} {:>9} {:>10} {:>7} | {:>12} {:>6} {:>9} {:>9}",
        "SBP", "#V", "#CL", "#PB", "#S", "#G", "spurious", "time"
    );
    let aut_opts = AutomorphismOptions::default();
    for mode in SbpMode::EXTENDED {
        let mut vars = 0usize;
        let mut clauses = 0usize;
        let mut pbs = 0usize;
        let mut order_sum = 0.0f64;
        let mut generators = 0usize;
        let mut spurious = 0usize;
        let mut time = Duration::ZERO;
        let mut exact = true;
        for inst in &instances {
            let mut enc = ColoringEncoding::new(&inst.graph, config.k);
            let _ = add_instance_independent_sbps(&mut enc, &inst.graph, mode);
            let stats = enc.formula().stats();
            vars += stats.vars;
            clauses += stats.clauses;
            pbs += stats.pb_constraints();
            let (perms, report) = detect_symmetries(enc.formula(), &aut_opts);
            order_sum += 10f64.powf(report.order_log10);
            generators += perms.len();
            spurious += report.spurious_dropped;
            time += report.detection_time;
            exact &= report.exact;
            if config.per_instance {
                println!(
                    "    {:<12} {:<7} |S|=10^{:<8.1} #G={:<4} t={:?}",
                    inst.meta.name,
                    mode.display_name(),
                    report.order_log10,
                    perms.len(),
                    report.detection_time
                );
            }
        }
        println!(
            "{:<8} {:>9} {:>10} {:>7} | {:>11} {:>6} {:>9} {:>8.1}s{}",
            mode.display_name(),
            vars,
            clauses,
            pbs,
            format!("{order_sum:.1e}"),
            generators,
            spurious,
            time.as_secs_f64(),
            if exact { "" } else { " (budgeted)" }
        );
    }
    println!(
        "\nNotes: #S sums per-instance group orders, as in the paper (totals are\n\
         dominated by the largest instance). The complete constructions\n\
         (LI, LI-pfx, Orbitope, ValPrec) should leave only the identity;\n\
         SC should barely change #S. Rows below NU+SC are post-paper\n\
         extensions (see docs/SBP.md). Run with --full --k 20 for the\n\
         paper's exact parameters (slow)."
    );

    sbgc_bench::run_certification(&config);
    sbgc_bench::write_report(&config, "table2");
}

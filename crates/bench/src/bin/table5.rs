//! Table 5 (Appendix) — per-instance detail for the queens family, with
//! all five solvers (including the retired original PBS), every SBP
//! construction, with and without instance-dependent SBPs.
//!
//! `cargo run --release -p sbgc-bench --bin table5 -- --timeout 2`

use sbgc_bench::HarnessConfig;
use sbgc_core::{PreparedColoring, SbpMode, SolveOptions, SolverKind, SymmetryHandling};
use sbgc_graph::suite;
use std::time::Duration;

fn main() {
    let mut config = HarnessConfig::from_args(20, Duration::from_secs(2));
    // Default instance set for this table is the queens family. The
    // largest (queen8_12) is also the paper's hardest; include it only
    // with --full or an explicit --instances list.
    if std::env::args()
        .skip(1)
        .all(|a| a.starts_with("--timeout") || a.starts_with("--k") || a == "--per-instance")
    {
        config.instances =
            vec!["queen5_5".to_string(), "queen6_6".to_string(), "queen7_7".to_string()];
    } else if config.instances.len() == sbgc_bench::QUICK_INSTANCES.len() {
        config.instances = suite::QUEENS_NAMES.iter().map(|s| s.to_string()).collect();
    }

    println!("Table 5: queens family detail, K = {}, timeout {:?}/run", config.k, config.timeout);
    println!(
        "{:<10} {:<8} | {}",
        "Instance",
        "SBP",
        SolverKind::APPENDIX
            .iter()
            .map(|s| format!("{:>19}", format!("{s} (no|yes i.d.)")))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for inst in config.build_instances() {
        for mode in SbpMode::ALL {
            // Prepare once per symmetry handling, reuse for all solvers.
            let prepare = |symmetry| {
                let mut options = SolveOptions::new(config.k).with_sbp_mode(mode);
                options.symmetry = symmetry;
                PreparedColoring::new(&inst.graph, &options)
            };
            let prepared = [
                prepare(SymmetryHandling::InstanceIndependentOnly),
                prepare(SymmetryHandling::WithInstanceDependent),
            ];
            let mut cells = Vec::new();
            for solver in SolverKind::APPENDIX {
                let mut pair = Vec::new();
                for p in &prepared {
                    let report = p.solve(&inst.graph, solver, &config.budget());
                    pair.push(if report.outcome.is_decided() {
                        format!("{:>7.2}", report.solve_time.as_secs_f64())
                    } else {
                        format!("{:>7}", "T/O")
                    });
                }
                cells.push(format!("{:>19}", pair.join("|")));
            }
            println!("{:<10} {:<8} | {}", inst.meta.name, mode.display_name(), cells.join(" "));
        }
        println!();
    }
    println!(
        "Each cell: solve seconds without | with instance-dependent SBPs;\n\
         T/O = not decided within the timeout. Paper trends: best no-i.d.\n\
         results with NU+SC; best with-i.d. results with SC; PBS (legacy)\n\
         follows the same trends as PBS II/Galena/Pueblo."
    );

    sbgc_bench::run_certification(&config);
    sbgc_bench::write_report(&config, "table5");
}

//! Figure 1 — the worked SBP example. Delegates to the same logic as
//! `examples/figure1.rs` so the figure is regenerable from the harness:
//! enumerates the color assignments admitted by each construction on the
//! paper's 4-vertex example graph.
//!
//! `cargo run --release -p sbgc-bench --bin figure1`

use sbgc_core::{add_instance_independent_sbps, ColoringEncoding, SbpMode};
use sbgc_graph::{Coloring, Graph};
use sbgc_pb::{PbEngine, SolveOutcome, SolverKind};

fn figure1_graph() -> Graph {
    // Triangle V1-V2-V3 plus V4 adjacent to V3 only.
    Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
}

fn enumerate_colorings(graph: &Graph, k: usize, mode: SbpMode) -> Vec<Coloring> {
    let mut encoding = ColoringEncoding::new(graph, k);
    encoding.formula_mut().clear_objective();
    let _ = add_instance_independent_sbps(&mut encoding, graph, mode);
    let config = SolverKind::PbsII.engine_config().expect("cdcl kind");
    let mut engine = PbEngine::from_formula(encoding.formula(), config);
    let mut found = Vec::new();
    while let SolveOutcome::Sat(model) = engine.solve() {
        if let Some(c) = encoding.decode(&model) {
            found.push(c);
        }
        engine.block_model(&model);
        assert!(found.len() <= 5000, "runaway enumeration");
    }
    found.sort_by(|a, b| a.colors().cmp(b.colors()));
    found.dedup_by(|a, b| a.colors() == b.colors());
    found
}

fn main() {
    let graph = figure1_graph();
    println!("Figure 1: admitted 4-colorings of the example graph per SBP mode");
    println!("{:<8} {:>12}   distinct cardinality vectors", "SBP", "#assignments");
    for mode in [
        SbpMode::None,
        SbpMode::Nu,
        SbpMode::Ca,
        SbpMode::Li,
        SbpMode::LiPrefix,
        SbpMode::Orbitope,
        SbpMode::ValuePrec,
    ] {
        let colorings = enumerate_colorings(&graph, 4, mode);
        let mut vectors: Vec<Vec<usize>> = colorings
            .iter()
            .map(|c| {
                let mut sizes = c.class_sizes();
                sizes.resize(4, 0);
                sizes
            })
            .collect();
        vectors.sort();
        vectors.dedup();
        println!(
            "{:<8} {:>12}   {}",
            mode.display_name(),
            colorings.len(),
            vectors.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(" ")
        );
    }
    println!(
        "\nExpected: every construction admits a subset of the previous one.\n\
         The paper's LI (anchor encoding) breaks incompletely; LI-pfx,\n\
         Orbitope and ValPrec are complete — three different encodings of\n\
         the same first-occurrence canonical form, each admitting exactly\n\
         one assignment per independent-set partition (3 here)."
    );
}

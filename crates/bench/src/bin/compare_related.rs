//! Section 4.3 — comparison with related work (Coudert 1997,
//! Benhamou 2004) on the common data points the paper quotes.
//!
//! The paper compares its best configuration against the two
//! problem-specific colorers on myciel3/4/5, queen5_5 and DSJC125.1. This
//! binary runs those instances with our best configuration (SC +
//! instance-dependent SBPs, and the per-instance DSATUR-derived K the
//! paper notes Benhamou uses) and prints the published numbers alongside.
//!
//! `cargo run --release -p sbgc-bench --bin compare_related`

use sbgc_core::{chromatic, PreparedColoring, SbpMode, SolveOptions, SolverKind};
use sbgc_graph::suite;
use sbgc_pb::Budget;
use std::time::Duration;

struct ReferencePoint {
    instance: &'static str,
    /// Runtime reported for Coudert's max-clique-based colorer (seconds).
    coudert: Option<f64>,
    /// Runtime reported for Benhamou's NECSP algorithm (seconds).
    benhamou: Option<f64>,
    /// The paper's own best runtime on the instance (seconds, Pueblo/SC).
    paper_best: Option<f64>,
}

const POINTS: [ReferencePoint; 5] = [
    ReferencePoint {
        instance: "myciel3",
        coudert: Some(0.01),
        benhamou: None,
        paper_best: Some(0.01),
    },
    ReferencePoint {
        instance: "myciel4",
        coudert: Some(0.02),
        benhamou: None,
        paper_best: Some(0.06),
    },
    ReferencePoint {
        instance: "myciel5",
        coudert: Some(4.17),
        benhamou: None,
        paper_best: Some(1.80),
    },
    ReferencePoint {
        instance: "queen5_5",
        coudert: Some(0.01),
        benhamou: None,
        paper_best: Some(0.01),
    },
    ReferencePoint {
        instance: "DSJC125.1",
        coudert: None,
        benhamou: Some(0.01),
        paper_best: Some(1.12),
    },
];

fn main() {
    let timeout = Duration::from_secs(30);
    println!("Section 4.3: common data points vs. related work (seconds)");
    println!(
        "{:<12} {:>9} {:>9} {:>11} {:>11}  outcome",
        "Instance", "Coudert", "Benhamou", "paper best", "ours"
    );
    for point in POINTS {
        let inst = suite::build(point.instance);
        // The paper notes Benhamou sets K from instance knowledge; we use
        // the DSATUR bound, as our chromatic-number driver does.
        let bounds = chromatic::bounds(&inst.graph);
        let k = bounds.upper;
        let opts = SolveOptions::new(k)
            .with_sbp_mode(SbpMode::Sc)
            .with_instance_dependent_sbps()
            .with_solver(SolverKind::Pueblo);
        let prepared = PreparedColoring::new(&inst.graph, &opts);
        let report = prepared.solve(
            &inst.graph,
            SolverKind::Pueblo,
            &Budget::unlimited().with_timeout(timeout),
        );
        let fmt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
        let outcome = match report.outcome.colors() {
            Some(c) if report.outcome.is_decided() => format!("chi = {c}"),
            Some(c) => format!("<= {c} (timeout)"),
            None => "timeout".into(),
        };
        println!(
            "{:<12} {:>9} {:>9} {:>11} {:>11.2}  {}",
            point.instance,
            fmt(point.coudert),
            fmt(point.benhamou),
            fmt(point.paper_best),
            report.solve_time.as_secs_f64(),
            outcome
        );
    }
    println!(
        "\nPublished numbers are from the paper's Section 4.3 (different\n\
         hardware generations; the comparison is about order of magnitude).\n\
         DSJC125.1 is our synthetic G(n,m) analogue of the original."
    );
}

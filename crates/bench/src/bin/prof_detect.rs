//! Diagnostic: symmetry-detection cost per instance/K — the Table 2
//! "Saucy time" column in isolation. Useful for sizing `--full` runs.
//!
//! `cargo run --release -p sbgc-bench --bin prof_detect`

use sbgc_core::ColoringEncoding;
use sbgc_shatter::{detect_symmetries, AutomorphismOptions};
use std::time::Instant;

fn main() {
    for (name, k) in [("myciel4", 10usize), ("myciel5", 20), ("queen6_6", 20)] {
        let inst = sbgc_graph::suite::build(name);
        let enc = ColoringEncoding::new(&inst.graph, k);
        let t = Instant::now();
        let (perms, report) = detect_symmetries(enc.formula(), &AutomorphismOptions::default());
        println!(
            "{name} K={k}: graph {}v/{}e, |S|=10^{:.1}, #G={}, exact={}, {:?}",
            report.graph_vertices,
            report.graph_edges,
            report.order_log10,
            perms.len(),
            report.exact,
            t.elapsed()
        );
    }
}

//! Machine-readable sequential-vs-portfolio benchmark.
//!
//! Runs every configured instance × SBP mode twice — once with the
//! sequential PBS II optimizer, once with the parallel clause-sharing
//! portfolio (worker count from `--jobs`, default 4) — and writes
//! `BENCH_portfolio.json` with per-run wall time, conflict counts, the
//! winning configuration, the resulting color count and per-worker
//! sharing telemetry (clauses exported/imported, mean learned-clause
//! LBD), so later changes can track the speedup curve over time.
//!
//! A second section, `ladder`, compares the *persistent incremental
//! session* (one encoding, suffix-assumption ladder, clauses retained
//! across steps) against per-k re-encoding on the chromatic-number
//! search, recording per-instance times, ladder step counts and total
//! retained clauses. The workload is the configured instances plus one
//! synthetic random graph (`gnm_32_248`) whose DSATUR overshoot makes a
//! multi-step ladder; the recorded `ladder.summary.speedup` is the
//! geometric mean of per-instance speedups over decided instances taking
//! ≥ 5 ms (totals are recorded alongside for transparency).
//!
//! A third section, `ablation`, sweeps the **full
//! [`SbpMode::EXTENDED`] grid** — the paper's four constructions plus
//! SC-clique, LI-prefix, Orbitope and ValuePrec — running each
//! instance × mode through the incremental chromatic ladder under its
//! own short per-run budget (`min(--timeout, 5 s)`, so a weak mode
//! cannot stall the whole benchmark), and records per-run time, the
//! established χ, and the mode's measured SBP aux-var/clause/PB sizes.
//! Undecided rows are recorded as such; every *decided* row must agree
//! on χ or the binary exits non-zero.
//!
//! A fourth section, `heuristics`, compares the **hybrid** chromatic
//! search (the `sbgc-heur` TabuCol/PartialCol/clique race capping the
//! bracket before the incremental ladder) against the exact-only ladder
//! on the same instances, recording per-instance DSATUR bounds, the
//! heuristic cap, and the ladder rungs it skipped. Two gates ride on it:
//! hybrid and exact-only must prove the same χ (soundness — always
//! enforced), and under `--min-speedup` the race must skip at least one
//! rung whenever some decided instance's DSATUR bound overshot χ.
//!
//! A fifth section, `supervised`, is the resumable-solve smoke pass: a
//! supervised solve of queen6_6 writes rung-boundary checkpoints (to
//! `--checkpoint PATH` or a scratch file), a second solve resumes from
//! the result, and both must agree on χ — the binary exits non-zero when
//! a harness-written checkpoint fails to round-trip through `resume`.
//! `--watchdog-secs` and `--retries` feed straight into the supervised
//! run's [`SupervisorConfig`].
//!
//! The default instance set is the Table 3 queens subset (`queen5_5`,
//! `queen6_6`, `queen7_7`, `queen8_12`); override with `--instances`.
//! With `--min-speedup X` the binary exits non-zero when the overall
//! portfolio speedup — or the ladder's incremental-vs-reencode speedup on
//! instances decided by both sides — falls below `X`; this is the CI
//! perf-smoke gate (which therefore also runs the new modes on every
//! perf-smoke invocation, via the ablation sweep).
//!
//! `cargo run --release -p sbgc-bench --bin bench_json -- --timeout 2 --jobs 4`

use sbgc_bench::{HarnessConfig, QUICK_INSTANCES};
use sbgc_core::{
    add_instance_independent_sbps, chromatic_number_by_decision, chromatic_number_incremental,
    solve_supervised, ColoringEncoding, PreparedColoring, SbpMode, SearchStrategy, SolveOptions,
    SupervisorConfig,
};
use sbgc_graph::{gen, suite, Graph};
use sbgc_pb::{
    optimize_portfolio_recorded, portfolio_configs, Budget, OptOutcome, Optimizer, Recorder,
    SolverKind, WorkerTelemetry,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The queens rows of Table 3 present in the suite.
const QUEENS_SUBSET: [&str; 4] = ["queen5_5", "queen6_6", "queen7_7", "queen8_12"];

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

struct RunRecord {
    time: Duration,
    conflicts: u64,
    decided: bool,
    colors: Option<u64>,
    winner: Option<String>,
    /// One entry per portfolio worker (decided or not); empty for the
    /// sequential run.
    workers: Vec<String>,
}

/// Renders one worker's telemetry: which configuration it ran, its share
/// of the clause traffic, the mean LBD of what it learned, and whether it
/// produced the winning answer.
fn worker_json(w: &WorkerTelemetry) -> String {
    format!(
        "{{\"index\": {}, \"config\": \"{}\", \"exported\": {}, \"imported\": {}, \
         \"lbd_mean\": {}, \"won\": {}}}",
        w.index,
        json_escape(&w.config),
        w.search.exported,
        w.search.imported,
        w.search.mean_lbd().map_or("null".to_string(), |m| format!("{m:.3}")),
        w.won,
    )
}

impl RunRecord {
    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"time_s\": {:.6}, \"conflicts\": {}, \"decided\": {}, \"colors\": {}",
            self.time.as_secs_f64(),
            self.conflicts,
            self.decided,
            self.colors.map_or("null".to_string(), |c| c.to_string()),
        );
        if let Some(w) = &self.winner {
            let _ = write!(s, ", \"winning_config\": \"{}\"", json_escape(w));
        }
        if !self.workers.is_empty() {
            let _ = write!(s, ", \"workers\": [{}]", self.workers.join(", "));
        }
        s.push('}');
        s
    }
}

fn main() {
    let mut config = HarnessConfig::from_args(20, Duration::from_secs(2));
    let quick: Vec<String> = QUICK_INSTANCES.iter().map(|s| s.to_string()).collect();
    if config.instances == quick {
        // No explicit --instances/--full: default to the queens subset.
        config.instances = QUEENS_SUBSET.iter().map(|s| s.to_string()).collect();
    }
    let workers = if config.jobs > 1 { config.jobs } else { 4 };
    let instances = config.build_instances();

    println!(
        "bench_json: {} instances × {} SBP modes, K = {}, timeout {:?}, {} portfolio workers",
        instances.len(),
        SbpMode::ALL.len(),
        config.k,
        config.timeout,
        workers
    );

    let mut runs = Vec::new();
    let mut seq_total = Duration::ZERO;
    let mut par_total = Duration::ZERO;
    let mut agree = true;
    for inst in &instances {
        for mode in SbpMode::ALL {
            let options = SolveOptions::new(config.k).with_sbp_mode(mode);
            let prepared = PreparedColoring::new(&inst.graph, &options);
            let formula = prepared.formula();

            let start = Instant::now();
            let mut opt = Optimizer::new(formula, SolverKind::PbsII);
            let seq_out = opt.run(&config.budget());
            let sequential = RunRecord {
                time: start.elapsed(),
                conflicts: opt.stats().conflicts,
                decided: seq_out.is_decided(),
                colors: seq_out.value(),
                winner: None,
                workers: Vec::new(),
            };

            let configs = portfolio_configs(workers);
            let rec = Recorder::new();
            let start = Instant::now();
            let par_out = optimize_portfolio_recorded(formula, &configs, &config.budget(), &rec)
                .expect("portfolio_configs is non-empty and the formula has an objective");
            let elapsed = start.elapsed();
            let mut telemetry = rec.workers();
            telemetry.sort_by_key(|w| w.index);
            let portfolio = RunRecord {
                time: elapsed,
                conflicts: par_out.stats.conflicts,
                decided: par_out.outcome.is_decided(),
                colors: par_out.outcome.value(),
                winner: telemetry
                    .iter()
                    .find(|w| w.won)
                    .map(|w| format!("worker {}: {}", w.index, w.config)),
                workers: telemetry.iter().map(worker_json).collect(),
            };

            seq_total += sequential.time;
            par_total += portfolio.time;
            if sequential.decided
                && portfolio.decided
                && matches!(
                    (&seq_out, &par_out.outcome),
                    (OptOutcome::Optimal { .. }, OptOutcome::Optimal { .. })
                )
                && sequential.colors != portfolio.colors
            {
                agree = false;
                eprintln!(
                    "DISAGREEMENT on {} / {}: sequential {:?} vs portfolio {:?}",
                    inst.meta.name,
                    mode.display_name(),
                    sequential.colors,
                    portfolio.colors
                );
            }
            println!(
                "  {:<10} {:<6} seq {:>8.3}s  portfolio {:>8.3}s",
                inst.meta.name,
                mode.display_name(),
                sequential.time.as_secs_f64(),
                portfolio.time.as_secs_f64()
            );
            runs.push(format!(
                "    {{\"instance\": \"{}\", \"mode\": \"{}\", \"sequential\": {}, \"portfolio\": {}}}",
                json_escape(inst.meta.name),
                json_escape(mode.display_name()),
                sequential.to_json(),
                portfolio.to_json()
            ));
        }
    }

    // Chromatic-ladder comparison: the persistent incremental session
    // (encode once, suffix assumptions, clauses retained across steps)
    // against per-k re-encoding (linear decision search builds a fresh
    // formula and engine for every color count). Only instances both
    // sides decide within budget count toward the speedup, so a shared
    // timeout cannot fake a ratio.
    println!("\nchromatic ladder: incremental session vs per-k re-encoding");
    let mut ladder_runs = Vec::new();
    let mut ladder_reencode_total = Duration::ZERO;
    let mut ladder_incremental_total = Duration::ZERO;
    let mut ladder_ratios: Vec<f64> = Vec::new();
    let mut ladder_decided = 0usize;
    let mut ladder_agree = true;
    // The suite instances, plus a synthetic random graph whose DSATUR
    // bound overshoots χ: its multi-step ladder is the workload clause
    // retention exists for (the queens ladders are one cheap SAT query
    // plus one hard UNSAT, which no amount of reuse can speed up).
    let ladder_workload: Vec<(String, Graph)> = instances
        .iter()
        .map(|inst| (inst.meta.name.to_string(), inst.graph.clone()))
        .chain([("gnm_32_248".to_string(), gen::gnm(32, 248, 14))])
        .collect();
    for (name, graph) in &ladder_workload {
        // Heuristics off on both sides: this section isolates the value
        // of clause retention, which a TabuCol incumbent would mask by
        // collapsing the ladder before the first query.
        let opts = SolveOptions::new(config.k)
            .with_sbp_mode(SbpMode::Nu)
            .with_budget(config.budget())
            .without_heuristics();
        let start = Instant::now();
        let reencode = chromatic_number_by_decision(graph, &opts, SearchStrategy::Linear);
        let reencode_time = start.elapsed();

        let rec = Recorder::new();
        let inc_opts = opts.clone().with_recorder(rec.clone());
        let start = Instant::now();
        let incremental = chromatic_number_incremental(graph, &inc_opts);
        let incremental_time = start.elapsed();
        let steps = rec.ladder_steps();
        let retained: u64 = steps.iter().map(|s| s.retained_clauses).sum();

        let decided = reencode.exact().is_some() && incremental.exact().is_some();
        if decided {
            ladder_reencode_total += reencode_time;
            ladder_incremental_total += incremental_time;
            ladder_decided += 1;
            // Sub-5ms instances are pure timer noise; they stay in the
            // totals but not in the gated per-instance geomean.
            if reencode_time + incremental_time >= Duration::from_millis(5) {
                ladder_ratios.push(reencode_time.as_secs_f64() / incremental_time.as_secs_f64());
            }
            if reencode.exact() != incremental.exact() {
                ladder_agree = false;
                eprintln!(
                    "LADDER DISAGREEMENT on {name}: re-encode {:?} vs incremental {:?}",
                    reencode.exact(),
                    incremental.exact()
                );
            }
        }
        println!(
            "  {:<10} re-encode {:>8.3}s  incremental {:>8.3}s  ({} steps, {} clauses retained)",
            name,
            reencode_time.as_secs_f64(),
            incremental_time.as_secs_f64(),
            steps.len(),
            retained
        );
        ladder_runs.push(format!(
            "      {{\"instance\": \"{}\", \"reencode_s\": {:.6}, \"incremental_s\": {:.6}, \
             \"decided\": {}, \"chi\": {}, \"steps\": {}, \"retained_clauses\": {}}}",
            json_escape(name),
            reencode_time.as_secs_f64(),
            incremental_time.as_secs_f64(),
            decided,
            incremental.exact().map_or("null".to_string(), |c| c.to_string()),
            steps.len(),
            retained
        ));
    }
    // SBP ablation: the full EXTENDED mode grid — the paper's four plus
    // SC-clique, LI-prefix, Orbitope and ValuePrec — each run through the
    // incremental chromatic ladder under a short per-run budget so one
    // weakly-propagating mode (no SBPs, LI, ValPrec on hard instances)
    // cannot stall the benchmark. Undecided rows are recorded honestly;
    // χ must agree across every decided row of an instance.
    println!("\nsbp ablation: incremental ladder across the full EXTENDED grid");
    let ablation_budget = config.timeout.min(Duration::from_secs(5));
    let mut ablation_runs = Vec::new();
    let mut ablation_decided = 0usize;
    let mut ablation_agree = true;
    for inst in &instances {
        let mut chi_ref: Option<(usize, SbpMode)> = None;
        for mode in SbpMode::EXTENDED {
            // Measure the mode's encoding footprint at the configured K.
            let mut enc = ColoringEncoding::new(&inst.graph, config.k);
            let sbp = add_instance_independent_sbps(&mut enc, &inst.graph, mode);

            // Heuristics off: the ablation compares SBP constructions,
            // and a shared heuristic cap would flatten their differences.
            let opts = SolveOptions::new(config.k)
                .with_sbp_mode(mode)
                .with_budget(Budget::unlimited().with_timeout(ablation_budget))
                .without_heuristics();
            let start = Instant::now();
            let result = chromatic_number_incremental(&inst.graph, &opts);
            let time = start.elapsed();
            let chi = result.exact();

            if let Some(c) = chi {
                ablation_decided += 1;
                match chi_ref {
                    None => chi_ref = Some((c, mode)),
                    Some((expected, ref_mode)) if expected != c => {
                        ablation_agree = false;
                        eprintln!(
                            "ABLATION DISAGREEMENT on {}: {} found chi = {c}, {} found chi = \
                             {expected}",
                            inst.meta.name,
                            mode.display_name(),
                            ref_mode.display_name()
                        );
                    }
                    Some(_) => {}
                }
            }
            println!(
                "  {:<10} {:<8} {:>8.3}s  chi = {:<9} (sbp: {} aux vars, {} clauses, {} pb)",
                inst.meta.name,
                mode.display_name(),
                time.as_secs_f64(),
                chi.map_or("undecided".to_string(), |c| c.to_string()),
                sbp.aux_vars,
                sbp.clauses,
                sbp.pb_constraints
            );
            ablation_runs.push(format!(
                "      {{\"instance\": \"{}\", \"mode\": \"{}\", \"time_s\": {:.6}, \
                 \"decided\": {}, \"chi\": {}, \"sbp_aux_vars\": {}, \"sbp_clauses\": {}, \
                 \"sbp_pb\": {}}}",
                json_escape(inst.meta.name),
                json_escape(mode.display_name()),
                time.as_secs_f64(),
                chi.is_some(),
                chi.map_or("null".to_string(), |c| c.to_string()),
                sbp.aux_vars,
                sbp.clauses,
                sbp.pb_constraints
            ));
        }
    }

    // Hybrid-vs-exact: the heuristic race (TabuCol/PartialCol descents
    // plus clique search) must cap the ladder's starting rung on
    // DSATUR-overshooting instances without ever changing the proven χ.
    println!("\nheuristics: hybrid (heuristic race + ladder) vs exact-only ladder");
    let mut heur_runs = Vec::new();
    let mut heur_agree = true;
    let mut heur_hybrid_total = Duration::ZERO;
    let mut heur_exact_total = Duration::ZERO;
    let mut heur_skipped_total: u64 = 0;
    let mut heur_rung_available = false;
    for inst in &instances {
        let base =
            SolveOptions::new(config.k).with_sbp_mode(SbpMode::Nu).with_budget(config.budget());
        let start = Instant::now();
        let exact = chromatic_number_incremental(&inst.graph, &base.clone().without_heuristics());
        let exact_time = start.elapsed();

        let rec = Recorder::new();
        let start = Instant::now();
        let hybrid = chromatic_number_incremental(&inst.graph, &base.with_recorder(rec.clone()));
        let hybrid_time = start.elapsed();
        let telemetry = rec.heuristics();

        heur_exact_total += exact_time;
        heur_hybrid_total += hybrid_time;
        if let (Some(e), Some(h)) = (exact.exact(), hybrid.exact()) {
            if e != h {
                heur_agree = false;
                eprintln!(
                    "HEURISTICS DISAGREEMENT on {}: exact-only chi = {e}, hybrid chi = {h}",
                    inst.meta.name
                );
            }
        }
        if let Some(t) = &telemetry {
            heur_skipped_total += t.rungs_skipped as u64;
            if let Some(chi) = hybrid.exact() {
                // A DSATUR overshoot above proven χ means the race had a
                // rung it should have recovered.
                if t.dsatur_upper > chi {
                    heur_rung_available = true;
                }
            }
            if t.upper > t.dsatur_upper {
                heur_agree = false;
                eprintln!(
                    "HEURISTICS REGRESSION on {}: heuristic upper {} above DSATUR {}",
                    inst.meta.name, t.upper, t.dsatur_upper
                );
            }
        }
        let (dsatur_upper, heur_upper, heur_lower, rungs_skipped) = telemetry.as_ref().map_or(
            ("null".to_string(), "null".to_string(), "null".to_string(), 0),
            |t| {
                (
                    t.dsatur_upper.to_string(),
                    t.upper.to_string(),
                    t.lower.to_string(),
                    t.rungs_skipped,
                )
            },
        );
        println!(
            "  {:<10} exact {:>8.3}s  hybrid {:>8.3}s  (dsatur {}, heuristic upper {}, {} rungs skipped)",
            inst.meta.name,
            exact_time.as_secs_f64(),
            hybrid_time.as_secs_f64(),
            dsatur_upper,
            heur_upper,
            rungs_skipped
        );
        heur_runs.push(format!(
            "      {{\"instance\": \"{}\", \"exact_s\": {:.6}, \"hybrid_s\": {:.6}, \
             \"chi_exact\": {}, \"chi_hybrid\": {}, \"dsatur_upper\": {}, \
             \"heuristic_upper\": {}, \"heuristic_lower\": {}, \"rungs_skipped\": {}, \
             \"rejected_witnesses\": {}, \"failed_workers\": {}}}",
            json_escape(inst.meta.name),
            exact_time.as_secs_f64(),
            hybrid_time.as_secs_f64(),
            exact.exact().map_or("null".to_string(), |c| c.to_string()),
            hybrid.exact().map_or("null".to_string(), |c| c.to_string()),
            dsatur_upper,
            heur_upper,
            heur_lower,
            rungs_skipped,
            telemetry.as_ref().map_or(0, |t| t.rejected_witnesses),
            telemetry.as_ref().map_or(0, |t| t.failed_workers),
        ));
    }

    // Supervised checkpoint round-trip: the resumable-solve smoke pass.
    // A supervised solve of queen6_6 writes rung-boundary checkpoints
    // (`--checkpoint PATH`, or a scratch file), then a second supervised
    // solve resumes from the final checkpoint and must reach the same χ
    // without redoing any committed rung — the CI robustness gate that a
    // harness-written checkpoint actually round-trips through `resume`.
    println!("\nsupervised: checkpoint write + resume round-trip on queen6_6");
    let sup_graph = suite::build("queen6_6").graph;
    let ckpt_path = config.checkpoint.clone().map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("bench_json_{}.ckpt", std::process::id()))
    });
    // The gate needs queen6_6 decided (χ = 7 with an UNSAT proof at 6),
    // so it gets a floor under the shared --timeout.
    let sup_budget = Budget::unlimited().with_timeout(config.timeout.max(Duration::from_secs(60)));
    let sup_opts =
        SolveOptions::new(config.k.min(9)).with_sbp_mode(SbpMode::Nu).with_budget(sup_budget);
    let sup_config = {
        let mut c = config.supervisor_config().with_checkpoint_path(&ckpt_path);
        c.resume_from = config.resume.clone().map(std::path::PathBuf::from);
        c
    };
    let start = Instant::now();
    // A rejected `--resume` file (corrupted, wrong graph, wrong SBP mode)
    // is user input, not a harness bug: surface the typed error and exit
    // like the flag parser does, no backtrace.
    let first = solve_supervised(&sup_graph, &sup_opts, &sup_config).unwrap_or_else(|e| {
        eprintln!("error: supervised queen6_6 solve could not start: {e}");
        std::process::exit(2);
    });
    let first_time = start.elapsed();
    let start = Instant::now();
    let resumed = solve_supervised(
        &sup_graph,
        &sup_opts,
        &SupervisorConfig::new().with_resume_from(&ckpt_path),
    )
    .expect("resume from a harness-written checkpoint must be accepted");
    let resume_time = start.elapsed();
    let supervised_ok = first.outcome.result.exact().is_some()
        && first.outcome.result.exact() == resumed.outcome.result.exact()
        && resumed.resumed;
    println!(
        "  queen6_6   solve {:>8.3}s ({} checkpoints, {} attempts)  resume {:>8.3}s  chi = {} / {}",
        first_time.as_secs_f64(),
        first.checkpoints_written,
        first.attempts,
        resume_time.as_secs_f64(),
        first.outcome.result.exact().map_or("undecided".to_string(), |c| c.to_string()),
        resumed.outcome.result.exact().map_or("undecided".to_string(), |c| c.to_string()),
    );
    let supervised_json = format!(
        "{{\"instance\": \"queen6_6\", \"solve_s\": {:.6}, \"resume_s\": {:.6}, \
         \"checkpoints_written\": {}, \"attempts\": {}, \"watchdog_trips\": {}, \
         \"chi_first\": {}, \"chi_resumed\": {}, \"round_trip_ok\": {}}}",
        first_time.as_secs_f64(),
        resume_time.as_secs_f64(),
        first.checkpoints_written,
        first.attempts,
        first.watchdog_trips,
        first.outcome.result.exact().map_or("null".to_string(), |c| c.to_string()),
        resumed.outcome.result.exact().map_or("null".to_string(), |c| c.to_string()),
        supervised_ok
    );
    if config.checkpoint.is_none() {
        let _ = std::fs::remove_file(&ckpt_path);
    }

    // Gate on the geometric mean of per-instance speedups (the standard
    // suite metric): a totals ratio would let one instance whose ladder
    // is a single hard UNSAT query — a structural tie — drown out every
    // instance where clause retention actually pays.
    let ladder_speedup = if ladder_ratios.is_empty() {
        None
    } else {
        let geomean =
            (ladder_ratios.iter().map(|r| r.ln()).sum::<f64>() / ladder_ratios.len() as f64).exp();
        Some(geomean)
    };

    let speedup = if par_total.as_secs_f64() > 0.0 {
        seq_total.as_secs_f64() / par_total.as_secs_f64()
    } else {
        1.0
    };
    let json = format!(
        "{{\n  \"k\": {},\n  \"timeout_s\": {:.3},\n  \"workers\": {},\n  \"runs\": [\n{}\n  ],\n  \
         \"ladder\": {{\n    \"runs\": [\n{}\n    ],\n    \"summary\": {{\"reencode_total_s\": \
         {:.6}, \"incremental_total_s\": {:.6}, \"speedup\": {}, \
         \"speedup_basis\": \"geomean of decided instances >= 5ms\", \"decided_instances\": {}, \
         \"chi_agree\": {}}}\n  }},\n  \
         \"ablation\": {{\n    \"budget_s\": {:.3},\n    \"modes\": {},\n    \"runs\": \
         [\n{}\n    ],\n    \"summary\": {{\"decided_runs\": {}, \"chi_agree\": {}}}\n  }},\n  \
         \"heuristics\": {{\n    \"runs\": [\n{}\n    ],\n    \"summary\": \
         {{\"exact_total_s\": {:.6}, \"hybrid_total_s\": {:.6}, \"rungs_skipped_total\": {}, \
         \"chi_agree\": {}}}\n  }},\n  \
         \"supervised\": {},\n  \
         \"summary\": {{\"sequential_total_s\": {:.6}, \"portfolio_total_s\": {:.6}, \
         \"speedup\": {:.4}, \"optimal_color_counts_agree\": {}}}\n}}\n",
        config.k,
        config.timeout.as_secs_f64(),
        workers,
        runs.join(",\n"),
        ladder_runs.join(",\n"),
        ladder_reencode_total.as_secs_f64(),
        ladder_incremental_total.as_secs_f64(),
        ladder_speedup.map_or("null".to_string(), |s| format!("{s:.4}")),
        ladder_decided,
        ladder_agree,
        ablation_budget.as_secs_f64(),
        SbpMode::EXTENDED.len(),
        ablation_runs.join(",\n"),
        ablation_decided,
        ablation_agree,
        heur_runs.join(",\n"),
        heur_exact_total.as_secs_f64(),
        heur_hybrid_total.as_secs_f64(),
        heur_skipped_total,
        heur_agree,
        supervised_json,
        seq_total.as_secs_f64(),
        par_total.as_secs_f64(),
        speedup,
        agree
    );
    // Atomic (temp + rename): a crash mid-write must never leave a
    // truncated JSON where the previous benchmark's good data used to be.
    if let Err(err) = sbgc_obs::write_atomic("BENCH_portfolio.json".as_ref(), json.as_bytes()) {
        // The measurements are already printed; dump the JSON to stderr so
        // the data survives, then flag the failure in the exit status.
        eprintln!("error: could not write BENCH_portfolio.json: {err}");
        eprintln!("{json}");
        std::process::exit(1);
    }
    println!(
        "\ntotals: sequential {:.3}s, portfolio {:.3}s, speedup {:.2}x — wrote BENCH_portfolio.json",
        seq_total.as_secs_f64(),
        par_total.as_secs_f64(),
        speedup
    );

    if !ablation_agree {
        // A χ disagreement between decided SBP modes is a soundness bug,
        // not a perf regression: fail regardless of any --min-speedup gate.
        eprintln!("sbp ablation FAILED: decided modes disagree on chi");
        std::process::exit(1);
    }
    if !heur_agree {
        // Same reasoning: a hybrid run that proves a different χ than the
        // exact-only ladder (or a heuristic "upper bound" above DSATUR)
        // means a heuristic result leaked past the trust boundary.
        eprintln!("heuristics section FAILED: hybrid and exact-only searches disagree");
        std::process::exit(1);
    }
    if !supervised_ok {
        // A checkpoint the harness itself wrote that does not resume to
        // the same χ is a durability bug, never a perf matter.
        eprintln!("supervised section FAILED: checkpoint did not round-trip through resume");
        std::process::exit(1);
    }
    println!("supervised gate passed: harness checkpoint round-tripped through resume");

    sbgc_bench::run_certification(&config);
    sbgc_bench::write_report(&config, "bench_json");

    if let Some(min) = config.min_speedup {
        if speedup < min {
            eprintln!("perf-smoke gate FAILED: speedup {speedup:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
        println!("perf-smoke gate passed: speedup {speedup:.2}x >= {min:.2}x");
        // The same threshold gates the chromatic ladder: the persistent
        // session must not lose to per-k re-encoding on decided instances.
        match ladder_speedup {
            Some(ls) if ls < min => {
                eprintln!("ladder gate FAILED: incremental speedup {ls:.2}x < required {min:.2}x");
                std::process::exit(1);
            }
            Some(ls) => println!("ladder gate passed: incremental speedup {ls:.2}x >= {min:.2}x"),
            None => println!("ladder gate skipped: no instance decided by both sides"),
        }
        // The heuristic race earns its keep by recovering ladder rungs:
        // whenever some decided instance's DSATUR bound overshot χ (as
        // queen6_6's does), at least one rung must have been skipped.
        if heur_rung_available && heur_skipped_total == 0 {
            eprintln!(
                "heuristics gate FAILED: DSATUR overshot chi but the race skipped no ladder rung"
            );
            std::process::exit(1);
        }
        println!("heuristics gate passed: {heur_skipped_total} ladder rungs skipped");
    }
}

//! Table 4 — the solver grid at K = 30 (same layout as Table 3; the paper
//! re-runs the grid at the higher color limit to confirm the trends on
//! larger formulas).
//!
//! `cargo run --release -p sbgc-bench --bin table4 -- --timeout 2`

use sbgc_bench::{run_grid_row, HarnessConfig};
use sbgc_core::{SbpMode, SolverKind, SymmetryHandling};
use std::time::Duration;

fn main() {
    let config = HarnessConfig::from_args(30, Duration::from_secs(2));
    let instances = config.build_instances();
    println!(
        "Table 4: solver grid, {} instances, K = {}, timeout {:?}/run",
        instances.len(),
        config.k,
        config.timeout
    );
    let header: Vec<String> = SolverKind::MAIN
        .iter()
        .flat_map(|s| {
            [format!("{:>12}", format!("{s} orig")), format!("{:>12}", format!("{s} w/id"))]
        })
        .collect();
    println!("{:<8} {}", "SBP", header.join(" "));
    for mode in SbpMode::ALL {
        // Prepare each instance once per symmetry handling and reuse it for
        // all four solvers; interleave so columns come out in table order.
        let orig = run_grid_row(
            &instances,
            config.k,
            mode,
            SymmetryHandling::InstanceIndependentOnly,
            &SolverKind::MAIN,
            || config.budget(),
            config.per_instance,
            config.jobs,
        );
        let with_id = run_grid_row(
            &instances,
            config.k,
            mode,
            SymmetryHandling::WithInstanceDependent,
            &SolverKind::MAIN,
            || config.budget(),
            config.per_instance,
            config.jobs,
        );
        let cells: Vec<String> = orig
            .iter()
            .zip(&with_id)
            .flat_map(|(o, w)| [format!("{:>12}", o.render()), format!("{:>12}", w.render())])
            .collect();
        println!("{:<8} {}", mode.display_name(), cells.join(" "));
    }
    println!(
        "\nExpect the same trends as Table 3 but fewer instances decided: the\n\
         K = 30 encodings are half again as large."
    );

    sbgc_bench::run_certification(&config);
    sbgc_bench::write_report(&config, "table4");
}

//! Table 1 — the DIMACS graph coloring benchmark suite.
//!
//! Prints, per instance: name, #V, #E (ours and the paper's edge-line
//! count), the paper's chromatic number, our cheap bounds (clique lower,
//! DSATUR upper), and — within the timeout — our exactly-computed χ.
//!
//! `--sbp MODE` selects the instance-independent SBP construction the
//! exact-χ search runs under (any `SbpMode` name, e.g. `orbitope`,
//! `valprec`, `nu+sc`; default none) — rerunning the table per mode is
//! how the EXPERIMENTS.md Table 1 mode comparison is produced.
//!
//! `cargo run --release -p sbgc-bench --bin table1 -- --full`

use sbgc_bench::HarnessConfig;
use sbgc_core::{chromatic, SolveOptions};
use sbgc_pb::Budget;
use std::time::Duration;

fn main() {
    let mut config = HarnessConfig::from_args(20, Duration::from_secs(5));
    // Table 1 is cheap; default to the full suite.
    if std::env::args().len() == 1 {
        config.instances = sbgc_graph::suite::SUITE.iter().map(|m| m.name.to_string()).collect();
    }
    let sbp = config.sbp.unwrap_or_default();
    println!(
        "Table 1: DIMACS graph coloring benchmarks (reconstructed suite), SBPs: {}",
        sbp.display_name()
    );
    println!(
        "{:<12} {:>4} {:>6} {:>8} {:>7} {:>5} {:>5} {:>9} {:>7}",
        "Instance", "#V", "#E", "#E(ppr)", "K(ppr)", "lb", "ub", "chi", "exact?"
    );
    for inst in config.build_instances() {
        let bounds = chromatic::bounds(&inst.graph);
        let paper_k =
            inst.meta.paper_chromatic.map(|k| k.to_string()).unwrap_or_else(|| ">20".to_string());
        // Exact chromatic number within the timeout (skipped when the
        // clique bound certifies DSATUR, which costs nothing).
        let opts = SolveOptions::new(config.k)
            .with_sbp_mode(sbp)
            .with_budget(Budget::unlimited().with_timeout(config.timeout));
        let chi = chromatic::chromatic_number(&inst.graph, &opts);
        let (chi_str, exact) = match chi.exact() {
            Some(v) => (v.to_string(), "yes"),
            None => match chi {
                chromatic::ChromaticResult::Bounded { lower, upper, .. } => {
                    (format!("{lower}..{upper}"), "no")
                }
                chromatic::ChromaticResult::Exact { .. } => unreachable!(),
            },
        };
        println!(
            "{:<12} {:>4} {:>6} {:>8} {:>7} {:>5} {:>5} {:>9} {:>7}",
            inst.meta.name,
            inst.meta.vertices,
            inst.graph.num_edges(),
            inst.meta.paper_edge_lines,
            paper_k,
            bounds.lower,
            bounds.upper,
            chi_str,
            exact
        );
    }
    println!(
        "\nNotes: #E(ppr) is the paper's Table 1 figure (edge *lines* in the\n\
         original files; several families list both directions). queen*/myciel*\n\
         are exact reconstructions; other families are calibrated synthetic\n\
         analogues (see DESIGN.md). chi is computed within --timeout (default 5s)."
    );

    sbgc_bench::run_certification(&config);
    sbgc_bench::write_report(&config, "table1");
}

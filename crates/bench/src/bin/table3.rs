//! Table 3 — the solver grid at K = 20: {PBS II, CPLEX*, Galena, Pueblo}
//! × {no SBPs, NU, CA, LI, SC, NU+SC} × {without, with instance-dependent
//! SBPs}, reporting total time and instances decided per cell.
//!
//! `cargo run --release -p sbgc-bench --bin table3 -- --timeout 2`

use sbgc_bench::{run_grid_row, HarnessConfig};
use sbgc_core::{SbpMode, SolverKind, SymmetryHandling};
use std::time::Duration;

fn main() {
    let config = HarnessConfig::from_args(20, Duration::from_secs(2));
    run_table(&config, "Table 3");
}

/// Shared between table3 and table4 (which differ only in K).
pub fn run_table(config: &HarnessConfig, title: &str) {
    let instances = config.build_instances();
    println!(
        "{title}: solver grid, {} instances, K = {}, timeout {:?}/run",
        instances.len(),
        config.k,
        config.timeout
    );
    let header: Vec<String> = SolverKind::MAIN
        .iter()
        .flat_map(|s| {
            [format!("{:>12}", format!("{s} orig")), format!("{:>12}", format!("{s} w/id"))]
        })
        .collect();
    println!("{:<8} {}", "SBP", header.join(" "));
    for mode in SbpMode::ALL {
        // Prepare each instance once per symmetry handling and reuse it for
        // all four solvers; interleave so columns come out in table order.
        let orig = run_grid_row(
            &instances,
            config.k,
            mode,
            SymmetryHandling::InstanceIndependentOnly,
            &SolverKind::MAIN,
            || config.budget(),
            config.per_instance,
            config.jobs,
        );
        let with_id = run_grid_row(
            &instances,
            config.k,
            mode,
            SymmetryHandling::WithInstanceDependent,
            &SolverKind::MAIN,
            || config.budget(),
            config.per_instance,
            config.jobs,
        );
        let cells: Vec<String> = orig
            .iter()
            .zip(&with_id)
            .flat_map(|(o, w)| [format!("{:>12}", o.render()), format!("{:>12}", w.render())])
            .collect();
        println!("{:<8} {}", mode.display_name(), cells.join(" "));
    }
    println!(
        "\nEach cell: total solve seconds | #instances decided (optimal or\n\
         proven UNSAT at K). Paper trends to check: (1) specialized solvers\n\
         gain most from instance-dependent SBPs; (2) among instance-independent\n\
         modes the simple ones (NU, SC, NU+SC) beat CA and LI; (3) SC + w/id is\n\
         the best overall; (4) the CPLEX* baseline does not benefit from SBPs."
    );

    sbgc_bench::run_certification(config);
    sbgc_bench::write_report(config, "table3");
}

//! Shared harness for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — the 20-instance benchmark suite |
//! | `table2` | Table 2 — formula sizes + symmetry statistics per SBP mode |
//! | `table3` | Table 3 — solver grid at K = 20 |
//! | `table4` | Table 4 — solver grid at K = 30 |
//! | `table5` | Table 5 — per-instance queens detail, five solvers |
//! | `figure1` | Figure 1 — admitted assignments per SBP construction |
//!
//! All binaries accept `--timeout <secs>`, `--k <K>`, `--instances a,b,c`
//! and `--full` (full 20-instance suite at paper parameters; the default is
//! a quick subset so a complete run finishes in minutes — absolute times
//! differ from the paper's 2002-era Sun Blade 1000s anyway, it is the
//! relative ordering that reproduces).
//!
//! The table binaries and `bench_json` also accept `--report PATH`, which
//! re-runs each configured instance once with a live [`Recorder`] attached
//! and writes a structured JSON [`ReportFile`] — per-phase timings, search
//! counters, encoding sizes, detection statistics, and (with `--jobs N`,
//! N > 1) per-worker portfolio telemetry. The schema is documented
//! field-by-field in `docs/OBSERVABILITY.md`.
//!
//! With `--certify` the binaries additionally re-derive each instance's
//! chromatic number on the SBP-free pure-CNF decision encoding, replay the
//! DRAT refutation of χ−1 through the independent checker of `sbgc-proof`,
//! and exit non-zero unless every instance certifies ([`run_certification`]);
//! `--proof DIR` writes the accepted proofs as `DIR/<instance>.drat`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sbgc_core::{
    certify_result_parallel, chromatic_number_certified, solve_coloring, ChromaticResult,
    ColoringOutcome, OptimalityCertificate, PreparedColoring, ProofStatus, Recorder, SbpMode,
    SolveOptions, SolverKind, SupervisorConfig, SymmetryHandling,
};
use sbgc_graph::suite::{self, Instance};
use sbgc_obs::{
    CertificateStats, DetectionStats, EncodingSize, InstanceInfo, ReportFile, RunOutcome,
    RunReport, SbpTelemetry,
};
use sbgc_pb::Budget;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex even if a previous holder panicked. The only data behind
/// these locks are per-instance result slots, which are written atomically
/// (a single `Option` assignment), so a poisoned lock never guards a
/// half-updated value.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Harness configuration parsed from the command line.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Per-run wall-clock timeout (the paper used 1000 s).
    pub timeout: Duration,
    /// The color bound K.
    pub k: usize,
    /// Instance names to run.
    pub instances: Vec<String>,
    /// Print per-instance rows in addition to totals.
    pub per_instance: bool,
    /// Number of grid cells run concurrently (`--jobs N`, default 1).
    /// Per-cell times are still measured on the worker thread, so reported
    /// solve times stay meaningful; only wall-clock completion of the
    /// whole table shrinks.
    pub jobs: usize,
    /// When set (`--report PATH`), the binary writes a structured JSON
    /// [`ReportFile`] of instrumented per-instance runs to this path after
    /// the table prints. Schema documented in `docs/OBSERVABILITY.md`.
    pub report: Option<String>,
    /// With `--certify`, re-derive every instance's chromatic number on the
    /// SBP-free pure-CNF decision encoding and check the DRAT refutation of
    /// χ−1 with the independent checker; the binary exits non-zero if any
    /// certificate fails (see [`run_certification`]).
    pub certify: bool,
    /// With `--proof DIR`, certification writes each accepted DRAT proof to
    /// `DIR/<instance>.drat` (implies nothing by itself; only used when
    /// `certify` is set).
    pub proof_dir: Option<String>,
    /// With `--min-speedup X`, binaries that measure a sequential-vs-
    /// portfolio speedup (currently `bench_json`) exit non-zero when the
    /// overall speedup falls below `X` — the CI perf-smoke gate.
    pub min_speedup: Option<f64>,
    /// With `--sbp MODE`, override the instance-independent SBP
    /// construction used by the binary's canonical runs (`table1` rows,
    /// the `--report` instrumented runs). Accepts any
    /// [`SbpMode::parse`] spelling (`nu+sc`, `orbitope`, `li-pfx`, …);
    /// `None` keeps each binary's default (NU+SC). Grid binaries that
    /// already sweep every mode (`table2`–`table5`, `bench_json`'s
    /// ablation) ignore this.
    pub sbp: Option<SbpMode>,
    /// With `--checkpoint PATH`, supervised runs auto-checkpoint the
    /// k-ladder state to `PATH` at every rung boundary (see
    /// `docs/ROBUSTNESS.md`, "Checkpoint & resume"). Currently honored by
    /// `bench_json`'s supervised smoke pass.
    pub checkpoint: Option<String>,
    /// With `--resume PATH`, supervised runs restore the ladder from the
    /// checkpoint at `PATH` instead of starting fresh; the file is
    /// re-validated at load (CRC, graph fingerprint, SBP mode, witness).
    pub resume: Option<String>,
    /// With `--watchdog-secs N`, supervised runs cancel and retry any
    /// attempt that makes no conflict progress for `N` seconds. Must be
    /// positive — validated at parse time.
    pub watchdog_secs: Option<f64>,
    /// With `--retries N`, supervised runs allow `N` retries after the
    /// first attempt (escalating budgets). Must be at least 1 — validated
    /// at parse time; `None` keeps the supervisor default.
    pub retries: Option<u32>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            timeout: Duration::from_secs(30),
            k: 5,
            instances: QUICK_INSTANCES.iter().map(|s| s.to_string()).collect(),
            per_instance: false,
            jobs: 1,
            report: None,
            certify: false,
            proof_dir: None,
            min_speedup: None,
            sbp: None,
            checkpoint: None,
            resume: None,
            watchdog_secs: None,
            retries: None,
        }
    }
}

/// The quick default subset: small and medium instances from five of the
/// seven families, chosen so the full grid finishes in minutes.
pub const QUICK_INSTANCES: [&str; 8] =
    ["myciel3", "myciel4", "myciel5", "queen5_5", "queen6_6", "huck", "jean", "miles250"];

impl HarnessConfig {
    /// Parses `std::env::args`-style flags. Unknown flags abort with a
    /// usage message.
    pub fn from_args(default_k: usize, default_timeout: Duration) -> Self {
        let mut config =
            HarnessConfig { timeout: default_timeout, k: default_k, ..HarnessConfig::default() };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--timeout" => {
                    i += 1;
                    let secs: f64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--timeout needs seconds"));
                    config.timeout = Duration::from_secs_f64(secs);
                }
                "--k" => {
                    i += 1;
                    config.k = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--k needs an integer"));
                }
                "--instances" => {
                    i += 1;
                    let list = args.get(i).unwrap_or_else(|| usage("--instances needs a list"));
                    config.instances = list.split(',').map(|s| s.trim().to_string()).collect();
                }
                "--full" => {
                    config.instances = suite::SUITE.iter().map(|m| m.name.to_string()).collect();
                }
                "--per-instance" => config.per_instance = true,
                "--jobs" => {
                    i += 1;
                    let jobs: usize = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs an integer"));
                    config.jobs = jobs.max(1);
                }
                "--report" => {
                    i += 1;
                    let path = args.get(i).unwrap_or_else(|| usage("--report needs a path"));
                    config.report = Some(path.clone());
                }
                "--certify" => config.certify = true,
                "--min-speedup" => {
                    i += 1;
                    let min: f64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--min-speedup needs a number"));
                    config.min_speedup = Some(min);
                }
                "--proof" => {
                    i += 1;
                    let dir = args.get(i).unwrap_or_else(|| usage("--proof needs a directory"));
                    config.proof_dir = Some(dir.clone());
                }
                "--sbp" => {
                    i += 1;
                    let name = args.get(i).unwrap_or_else(|| usage("--sbp needs a mode name"));
                    config.sbp = Some(SbpMode::parse(name).unwrap_or_else(|| {
                        usage(&format!(
                            "unknown SBP mode `{name}` (try one of: {})",
                            SbpMode::EXTENDED.map(|m| m.display_name()).join(", ")
                        ))
                    }));
                }
                "--checkpoint" => {
                    i += 1;
                    let path = args.get(i).unwrap_or_else(|| usage("--checkpoint needs a path"));
                    config.checkpoint = Some(path.clone());
                }
                "--resume" => {
                    i += 1;
                    let path = args.get(i).unwrap_or_else(|| usage("--resume needs a path"));
                    config.resume = Some(path.clone());
                }
                "--watchdog-secs" => {
                    i += 1;
                    let secs: f64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--watchdog-secs needs seconds"));
                    config.watchdog_secs = Some(secs);
                }
                "--retries" => {
                    i += 1;
                    let retries: u32 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--retries needs an integer"));
                    config.retries = Some(retries);
                }
                other => usage(&format!("unknown flag `{other}`")),
            }
            i += 1;
        }
        if let Err(message) = config.validate_supervision() {
            usage(&message);
        }
        config
    }

    /// Parse-time validation of the supervision knobs: degenerate values
    /// (`--watchdog-secs 0`, `--retries 0`) and output-path collisions
    /// (`--checkpoint` aliasing `--report` or `--resume` would make one
    /// artifact clobber another) are rejected before any solving starts,
    /// with the same typed messages [`SupervisorConfig::validate`] uses.
    pub fn validate_supervision(&self) -> Result<(), String> {
        if let Some(secs) = self.watchdog_secs {
            // `<= 0.0 || is_nan` rather than `!(> 0.0)`: same NaN-rejecting
            // behavior without the negated-comparison lint.
            if secs <= 0.0 || secs.is_nan() {
                return Err("--watchdog-secs must be positive (a zero window cancels every \
                            attempt before its first conflict)"
                    .to_string());
            }
        }
        if self.retries == Some(0) {
            return Err("--retries must be at least 1 (the supervisor exists to retry)".to_string());
        }
        if let Some(ckpt) = &self.checkpoint {
            if self.report.as_deref() == Some(ckpt.as_str()) {
                return Err(format!(
                    "--checkpoint and --report both point at `{ckpt}`; the checkpoint would \
                     clobber the report"
                ));
            }
        }
        self.supervisor_config().validate().map_err(|e| e.to_string())
    }

    /// The [`SupervisorConfig`] these flags describe (defaults where a
    /// knob was not given). Call [`validate_supervision`] first when the
    /// values come from an untrusted command line.
    ///
    /// [`validate_supervision`]: HarnessConfig::validate_supervision
    pub fn supervisor_config(&self) -> SupervisorConfig {
        let mut sup = SupervisorConfig::new();
        if let Some(path) = &self.checkpoint {
            sup = sup.with_checkpoint_path(path);
        }
        if let Some(path) = &self.resume {
            sup = sup.with_resume_from(path);
        }
        if let Some(secs) = self.watchdog_secs {
            sup = sup.with_watchdog(Duration::from_secs_f64(secs.max(0.0)));
        }
        if let Some(retries) = self.retries {
            sup = sup.with_max_retries(retries);
        }
        sup
    }

    /// Builds the configured instances.
    pub fn build_instances(&self) -> Vec<Instance> {
        self.instances.iter().map(|name| suite::build(name)).collect()
    }

    /// The solver budget for one run.
    pub fn budget(&self) -> Budget {
        Budget::unlimited().with_timeout(self.timeout)
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: <bin> [--timeout SECS] [--k K] [--instances a,b,c] [--full] [--per-instance] \
         [--jobs N] [--report PATH] [--certify] [--proof DIR] [--min-speedup X] [--sbp MODE] \
         [--checkpoint PATH] [--resume PATH] [--watchdog-secs N] [--retries N]"
    );
    std::process::exit(2)
}

/// One cell of the solver grid: total time over the instance set and the
/// number of instances decided (solved to optimality or proven UNSAT) —
/// the `Tm.`/`#S` pairs of Tables 3–5.
#[derive(Clone, Copy, Debug, Default)]
pub struct GridCell {
    /// Summed wall-clock solve time (timeouts contribute the timeout).
    pub total_time: Duration,
    /// Number of instances decided within the budget.
    pub solved: usize,
}

impl GridCell {
    /// Formats like the paper: total seconds (rounded) and solve count.
    pub fn render(&self) -> String {
        format!("{:>8.1}s {:>3}", self.total_time.as_secs_f64(), self.solved)
    }
}

/// The per-instance work of one grid row: cells (one per solver) plus the
/// `--per-instance` report lines, kept as strings so worker threads never
/// interleave output.
struct InstanceRow {
    cells: Vec<GridCell>,
    lines: Vec<String>,
}

fn run_instance_row(
    inst: &Instance,
    k: usize,
    mode: SbpMode,
    symmetry: SymmetryHandling,
    solvers: &[SolverKind],
    budget_for: &(impl Fn() -> Budget + Sync),
    per_instance: bool,
) -> InstanceRow {
    let mut row =
        InstanceRow { cells: vec![GridCell::default(); solvers.len()], lines: Vec::new() };
    let mut options = SolveOptions::new(k).with_sbp_mode(mode);
    options.symmetry = symmetry;
    let prepared = PreparedColoring::new(&inst.graph, &options);
    for (cell, &solver) in row.cells.iter_mut().zip(solvers) {
        // Timing happens inside `solve`, on this worker thread.
        let report = prepared.solve(&inst.graph, solver, &budget_for());
        cell.total_time += report.solve_time;
        if report.outcome.is_decided() {
            cell.solved += 1;
        }
        if per_instance {
            let outcome = match &report.outcome {
                o if o.is_decided() => match o.colors() {
                    Some(c) => format!("optimal {c}"),
                    None => format!("UNSAT at K={k}"),
                },
                o => match o.colors() {
                    Some(c) => format!("feasible {c} (timeout)"),
                    None => "timeout".to_string(),
                },
            };
            row.lines.push(format!(
                "    {:<12} {:<7} i.d.={:<5} {:<7} {:>8.2}s  {}",
                inst.meta.name,
                mode.display_name(),
                matches!(symmetry, SymmetryHandling::WithInstanceDependent),
                solver.display_name(),
                report.solve_time.as_secs_f64(),
                outcome
            ));
        }
    }
    row
}

/// Runs one (SBP mode × symmetry handling) configuration over the instance
/// set for *all* the given solvers, preparing each instance (encoding +
/// symmetry detection) only once. Returns one `Tm.`/`#S` cell per solver,
/// in the given order.
///
/// With `jobs > 1` the per-instance work is distributed over that many
/// scoped worker threads (a shared atomic work queue — instances are
/// claimed in order, results are merged and printed in instance order, so
/// the output is identical to a sequential run). Each cell's solve time is
/// still measured on the thread that ran it.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_row(
    instances: &[Instance],
    k: usize,
    mode: SbpMode,
    symmetry: SymmetryHandling,
    solvers: &[SolverKind],
    budget_for: impl Fn() -> Budget + Sync,
    per_instance: bool,
    jobs: usize,
) -> Vec<GridCell> {
    let rows: Vec<Mutex<Option<InstanceRow>>> =
        instances.iter().map(|_| Mutex::new(None)).collect();
    let jobs = jobs.max(1).min(instances.len().max(1));
    if jobs == 1 {
        for (inst, slot) in instances.iter().zip(&rows) {
            *lock_tolerant(slot) =
                Some(run_instance_row(inst, k, mode, symmetry, solvers, &budget_for, per_instance));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (next, rows, budget_for) = (&next, &rows, &budget_for);
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(inst) = instances.get(i) else { break };
                    let row = run_instance_row(
                        inst,
                        k,
                        mode,
                        symmetry,
                        solvers,
                        budget_for,
                        per_instance,
                    );
                    *lock_tolerant(&rows[i]) = Some(row);
                });
            }
        });
    }

    let mut cells = vec![GridCell::default(); solvers.len()];
    for slot in rows {
        let row = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .expect("worker filled every slot");
        for (cell, c) in cells.iter_mut().zip(&row.cells) {
            cell.total_time += c.total_time;
            cell.solved += c.solved;
        }
        for line in row.lines {
            println!("{line}");
        }
    }
    cells
}

/// Convenience wrapper for a single (mode × symmetry × solver) cell.
pub fn run_grid_cell(
    instances: &[Instance],
    k: usize,
    mode: SbpMode,
    symmetry: SymmetryHandling,
    solver: SolverKind,
    budget_for: impl Fn() -> Budget + Sync,
    per_instance: bool,
) -> GridCell {
    run_grid_row(instances, k, mode, symmetry, &[solver], budget_for, per_instance, 1)
        .pop()
        .expect("one cell per solver")
}

/// Renders a Markdown-ish table row.
pub fn render_row(cells: &[String]) -> String {
    cells.join(" | ")
}

/// Flattens an [`OptimalityCertificate`] into the dependency-free
/// [`CertificateStats`] form the JSON report schema carries.
pub fn certificate_stats(cert: &OptimalityCertificate) -> CertificateStats {
    let mut stats = CertificateStats {
        chromatic_number: cert.chromatic_number,
        witness_verified: cert.witness_verified,
        ..CertificateStats::default()
    };
    match &cert.unsat {
        ProofStatus::Checked { steps, adds, deletes, literals, solve_seconds, check_seconds } => {
            stats.status = "checked".to_string();
            stats.proof_steps = *steps;
            stats.proof_adds = *adds;
            stats.proof_deletes = *deletes;
            stats.proof_literals = *literals;
            stats.solve_seconds = *solve_seconds;
            stats.check_seconds = *check_seconds;
        }
        ProofStatus::Trivial { reason } => {
            stats.status = "trivial".to_string();
            stats.detail = reason.clone();
        }
        ProofStatus::Unchecked { reason } => {
            stats.status = "unchecked".to_string();
            stats.detail = reason.clone();
        }
        ProofStatus::Rejected { error } => {
            stats.status = "rejected".to_string();
            stats.detail = error.clone();
        }
    }
    stats
}

/// Runs the `--certify` pass: re-derives each configured instance's
/// chromatic number on the SBP-free pure-CNF decision encoding, checks the
/// DRAT refutation of χ−1 with the independent checker in `sbgc-proof`,
/// and prints one line per instance. With `--proof DIR` each produced
/// proof is also written to `DIR/<instance>.drat` in DIMACS DRAT format.
///
/// Exits the process with status 1 if any instance fails to certify — a
/// rejected proof, an unverified witness, a budget-truncated proof, or a
/// χ search that only bounded the answer. This is the CI gate: on the
/// small-graph suite with a sane timeout every instance must certify.
/// Proof-archiving I/O failures, by contrast, only degrade: a warning is
/// printed and certification continues without the archive.
pub fn run_certification(config: &HarnessConfig) {
    if !config.certify {
        return;
    }
    let mut proof_dir = config.proof_dir.clone();
    if let Some(dir) = &proof_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            // Degrade rather than die: certification itself can still run,
            // only the proof archive is lost.
            eprintln!(
                "warning: could not create proof directory {dir}: {err}; proofs not archived"
            );
            proof_dir = None;
        }
    }
    println!("\nCertification (SBP-free CNF decision encoding, independent DRAT check):");
    let mut failures = 0usize;
    for inst in config.build_instances() {
        // NU+SC speeds up the (untrusted) chi search; the certificate
        // re-derives optimality on an SBP-free formula regardless. With
        // --jobs N (N > 1) both the search and the refutation race that
        // many clause-sharing workers.
        let opts = SolveOptions::new(config.k)
            .with_sbp_mode(SbpMode::NuSc)
            .with_budget(config.budget())
            .with_parallelism(config.jobs);
        let (result, cert) = chromatic_number_certified(&inst.graph, &opts);
        let Some(cert) = cert else {
            let (lower, upper) = match result {
                ChromaticResult::Bounded { lower, upper, .. } => (lower, upper),
                ChromaticResult::Exact { .. } => unreachable!("exact results always certify"),
            };
            println!(
                "  {:<12} FAILED: search only bounded chi to {lower}..{upper} within the budget",
                inst.meta.name
            );
            failures += 1;
            continue;
        };
        let witness = if cert.witness_verified { "witness ok" } else { "WITNESS BAD" };
        println!(
            "  {:<12} chi = {:<3} {witness}, unsat {}",
            inst.meta.name, cert.chromatic_number, cert.unsat
        );
        if let (Some(dir), Some(proof)) = (&proof_dir, &cert.proof) {
            let path = format!("{dir}/{}.drat", inst.meta.name);
            if let Err(err) = sbgc_obs::write_atomic(path.as_ref(), proof.to_dimacs().as_bytes()) {
                eprintln!("warning: could not write {path}: {err}; proof not archived");
            }
        }
        if !cert.is_certified() {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("certification FAILED on {failures} instance(s)");
        std::process::exit(1);
    }
    println!("all instances certified");
}

/// Runs one fully instrumented end-to-end solve of `inst` and assembles
/// the [`RunReport`] for it.
///
/// The instrumented run uses the paper's strongest configuration — NU+SC
/// instance-independent SBPs plus Shatter instance-dependent SBPs, solved
/// by PBS II — under the harness budget. With `config.jobs > 1` the solve
/// races that many portfolio workers, so the report carries one
/// [`sbgc_obs::WorkerTelemetry`] record per worker; with `jobs == 1` the
/// solve is sequential and `workers` is empty.
pub fn collect_run_report(inst: &Instance, config: &HarnessConfig) -> RunReport {
    let recorder = Recorder::new();
    let options = SolveOptions::new(config.k)
        .with_sbp_mode(config.sbp.unwrap_or(SbpMode::NuSc))
        .with_instance_dependent_sbps()
        .with_solver(SolverKind::PbsII)
        .with_budget(config.budget())
        .with_parallelism(config.jobs)
        .with_recorder(recorder.clone());
    let solved = solve_coloring(&inst.graph, &options);

    let mut report = RunReport {
        instance: InstanceInfo {
            name: inst.meta.name.to_string(),
            vertices: inst.graph.num_vertices(),
            edges: inst.graph.num_edges(),
        },
        k: config.k,
        sbp_mode: options.sbp_mode.display_name().to_string(),
        solver: options.solver.display_name().to_string(),
        jobs: config.jobs,
        encoding: EncodingSize {
            base_vars: solved.base_stats.vars,
            base_clauses: solved.base_stats.clauses,
            base_pb: solved.base_stats.pb_constraints(),
            sbp_aux_vars: solved.sbp_stats.aux_vars,
            sbp_clauses: solved.sbp_stats.clauses,
            sbp_pb: solved.sbp_stats.pb_constraints,
            final_vars: solved.final_stats.vars,
            final_clauses: solved.final_stats.clauses,
            final_pb: solved.final_stats.pb_constraints(),
        },
        sbp: SbpTelemetry {
            mode: options.sbp_mode.display_name().to_string(),
            aux_vars: solved.sbp_stats.aux_vars,
            clauses: solved.sbp_stats.clauses,
            pb_constraints: solved.sbp_stats.pb_constraints,
        },
        detection: solved.shatter.as_ref().map(|s| DetectionStats {
            seconds: s.symmetry.detection_time.as_secs_f64(),
            generators: s.num_generators,
            order_log10: s.symmetry.order_log10,
            spurious_dropped: s.symmetry.spurious_dropped,
            exact: s.symmetry.exact,
            sbp_clauses: s.sbp.clauses,
            sbp_aux_vars: s.sbp.aux_vars,
        }),
        total_seconds: solved.total_time.as_secs_f64(),
        outcome: {
            // Undecided runs carry the budget dimension that stopped them
            // (schema v3 `exhaust_reason`); decided runs carry none.
            let exhaust = solved.exhaust.map(|e| e.as_str().to_string());
            match &solved.outcome {
                ColoringOutcome::Optimal { colors, .. } => RunOutcome {
                    kind: "optimal".to_string(),
                    colors: Some(*colors),
                    decided: true,
                    exhaust_reason: None,
                },
                ColoringOutcome::Feasible { colors, .. } => RunOutcome {
                    kind: "feasible".to_string(),
                    colors: Some(*colors),
                    decided: false,
                    exhaust_reason: exhaust,
                },
                ColoringOutcome::InfeasibleAtK => RunOutcome {
                    kind: "infeasible_at_k".to_string(),
                    colors: None,
                    decided: true,
                    exhaust_reason: None,
                },
                ColoringOutcome::Unknown => RunOutcome {
                    kind: "timeout".to_string(),
                    colors: None,
                    decided: false,
                    exhaust_reason: exhaust,
                },
            }
        },
        ..RunReport::default()
    };
    report.from_recorder(&recorder);
    if config.certify {
        // An Optimal outcome at K is the exact chromatic number (the
        // optimizer minimizes color count), so it can be certified; the
        // certificate re-derives optimality on the SBP-free CNF encoding.
        if let ColoringOutcome::Optimal { coloring, colors } = &solved.outcome {
            let claim =
                ChromaticResult::Exact { chromatic_number: *colors, witness: coloring.clone() };
            report.certificate =
                certify_result_parallel(&inst.graph, &claim, &config.budget(), config.jobs)
                    .as_ref()
                    .map(certificate_stats);
        }
    }
    report
}

/// Drop guard that makes `--report` crash-safe: runs are pushed into the
/// guard as they complete, and if the process unwinds before [`finish`]
/// (a panic inside an instrumented solve), [`Drop`] flushes whatever has
/// accumulated so the completed runs survive on disk. The panic still
/// propagates, so the process exits non-zero; only the data is saved.
///
/// [`finish`]: ReportGuard::finish
pub struct ReportGuard {
    path: String,
    file: ReportFile,
    finished: bool,
}

impl ReportGuard {
    /// Starts a report destined for `path`, carrying the harness metadata.
    pub fn new(path: &str, generator: &str, config: &HarnessConfig) -> Self {
        ReportGuard {
            path: path.to_string(),
            file: ReportFile {
                generator: generator.to_string(),
                k: config.k,
                timeout_s: config.timeout.as_secs_f64(),
                jobs: config.jobs,
                runs: Vec::new(),
            },
            finished: false,
        }
    }

    /// Appends one completed instrumented run.
    pub fn push(&mut self, run: RunReport) {
        self.file.runs.push(run);
    }

    /// Writes the complete report atomically (temp file + rename, so a
    /// crash mid-write can never leave a truncated report where a good
    /// one — or none — used to be). Exits with status 1 if the file
    /// cannot be written — with `--report` the file *is* the deliverable.
    pub fn finish(mut self) {
        self.finished = true;
        match sbgc_obs::write_atomic(self.path.as_ref(), self.file.to_json().as_bytes()) {
            Ok(()) => eprintln!("report written: {}", self.path),
            Err(err) => {
                eprintln!("error: could not write report to {}: {err}", self.path);
                std::process::exit(1);
            }
        }
    }
}

impl Drop for ReportGuard {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        eprintln!(
            "warning: report interrupted; flushing {} completed run(s) to {}",
            self.file.runs.len(),
            self.path
        );
        if let Err(err) = sbgc_obs::write_atomic(self.path.as_ref(), self.file.to_json().as_bytes())
        {
            eprintln!("error: could not write partial report to {}: {err}", self.path);
        }
    }
}

/// Writes the `--report PATH` file if the flag was given, re-running every
/// configured instance once with a live [`Recorder`] attached.
///
/// The instrumented runs are separate from the table runs the binary just
/// printed — the table grid varies SBP mode and solver per cell, while the
/// report wants one canonical, fully-traced run per instance (see
/// [`collect_run_report`]). Call this at the end of `main`. Exits with an
/// error if the file cannot be written; if an instrumented run panics, the
/// runs completed so far are still flushed to `PATH` ([`ReportGuard`]).
pub fn write_report(config: &HarnessConfig, generator: &str) {
    let Some(path) = &config.report else { return };
    eprintln!("\ncollecting instrumented runs for --report {path}");
    let mut guard = ReportGuard::new(path, generator, config);
    for inst in config.build_instances() {
        guard.push(collect_run_report(&inst, config));
    }
    guard.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_core::certify_result;

    #[test]
    fn quick_instances_exist_in_suite() {
        for name in QUICK_INSTANCES {
            assert!(suite::SUITE.iter().any(|m| m.name == name), "{name}");
        }
    }

    #[test]
    fn grid_cell_accumulates() {
        let instances = vec![suite::build("myciel3")];
        let cell = run_grid_cell(
            &instances,
            5,
            SbpMode::NuSc,
            SymmetryHandling::InstanceIndependentOnly,
            SolverKind::PbsII,
            Budget::unlimited,
            false,
        );
        assert_eq!(cell.solved, 1);
    }

    #[test]
    fn render_is_stable() {
        let c = GridCell { total_time: Duration::from_millis(1500), solved: 3 };
        assert_eq!(c.render(), "     1.5s   3");
    }

    #[test]
    fn collected_report_carries_phases_counters_and_outcome() {
        let config = HarnessConfig {
            timeout: Duration::from_secs(30),
            k: 5,
            instances: vec!["myciel3".to_string()],
            per_instance: false,
            jobs: 1,
            report: None,
            certify: false,
            proof_dir: None,
            ..HarnessConfig::default()
        };
        let inst = suite::build("myciel3");
        let report = collect_run_report(&inst, &config);
        assert_eq!(report.instance.name, "myciel3");
        assert_eq!(report.outcome.kind, "optimal");
        assert_eq!(report.outcome.colors, Some(4)); // χ(myciel3) = 4
        assert!(report.outcome.decided);
        assert!(report.encoding.final_vars > report.encoding.base_vars);
        assert_eq!(report.sbp.mode, "NU+SC");
        assert_eq!(report.sbp.clauses, report.encoding.sbp_clauses);
        assert!(report.sbp.clauses > 0, "NU+SC adds clauses");
        assert!(report.detection.is_some(), "instance-dependent SBPs ran");
        for (phase, timing) in &report.phases {
            assert!(timing.count > 0, "phase {phase} never entered");
        }
        assert!(report.search.decisions > 0);
        assert!(report.workers.is_empty(), "sequential run has no workers");
        let json = report.to_json(0);
        assert!(json.contains("\"kind\": \"optimal\""));
    }

    #[test]
    fn collected_report_with_jobs_carries_worker_telemetry() {
        let config = HarnessConfig {
            timeout: Duration::from_secs(30),
            k: 5,
            instances: vec!["myciel3".to_string()],
            per_instance: false,
            jobs: 2,
            report: None,
            certify: false,
            proof_dir: None,
            ..HarnessConfig::default()
        };
        let inst = suite::build("myciel3");
        let report = collect_run_report(&inst, &config);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers.iter().filter(|w| w.won).count(), 1);
    }

    #[test]
    fn certify_flag_attaches_checked_certificate_to_report() {
        let config = HarnessConfig {
            timeout: Duration::from_secs(30),
            k: 5,
            instances: vec!["myciel3".to_string()],
            per_instance: false,
            jobs: 1,
            report: None,
            certify: true,
            proof_dir: None,
            ..HarnessConfig::default()
        };
        let inst = suite::build("myciel3");
        let report = collect_run_report(&inst, &config);
        let cert = report.certificate.as_ref().expect("certified run");
        assert_eq!(cert.status, "checked");
        assert_eq!(cert.chromatic_number, 4);
        assert!(cert.witness_verified);
        assert!(cert.proof_steps > 0);
        assert!(cert.is_verified());
        let json = report.to_json(0);
        assert!(json.contains("\"status\": \"checked\""));
    }

    #[test]
    fn exhausted_instrumented_run_reports_its_reason() {
        // A nanosecond of budget cannot finish an optimization run; the
        // report must say the run is undecided *because of time*. Budgets
        // are checked on the stride-64 conflict path, so the instance must
        // be hard enough to accumulate conflicts (queen6_6 at K = 7 needs
        // an UNSAT proof at 6 colors).
        let config = HarnessConfig {
            timeout: Duration::from_nanos(1),
            k: 7,
            instances: vec!["queen6_6".to_string()],
            per_instance: false,
            jobs: 1,
            report: None,
            certify: false,
            proof_dir: None,
            ..HarnessConfig::default()
        };
        let inst = suite::build("queen6_6");
        let report = collect_run_report(&inst, &config);
        assert!(!report.outcome.decided);
        assert_eq!(report.outcome.exhaust_reason.as_deref(), Some("time"));
        assert!(report.to_json(0).contains("\"exhaust_reason\": \"time\""));
    }

    #[test]
    fn report_guard_flushes_partial_report_on_unwind() {
        let path = std::env::temp_dir().join(format!("sbgc_partial_{}.json", std::process::id()));
        let path_str = path.to_str().expect("utf-8 temp path").to_string();
        let config = HarnessConfig {
            timeout: Duration::from_secs(1),
            k: 3,
            instances: vec![],
            per_instance: false,
            jobs: 1,
            report: Some(path_str.clone()),
            certify: false,
            proof_dir: None,
            ..HarnessConfig::default()
        };
        let result = std::panic::catch_unwind(|| {
            let mut guard = ReportGuard::new(&path_str, "chaos", &config);
            let mut run = RunReport::default();
            run.instance.name = "survivor".to_string();
            guard.push(run);
            panic!("boom mid-report");
        });
        assert!(result.is_err());
        let json = std::fs::read_to_string(&path).expect("partial report flushed");
        assert!(json.contains("\"generator\": \"chaos\""));
        assert!(json.contains("\"survivor\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_guard_finish_writes_complete_report() {
        let path = std::env::temp_dir().join(format!("sbgc_full_{}.json", std::process::id()));
        let path_str = path.to_str().expect("utf-8 temp path").to_string();
        let config = HarnessConfig {
            timeout: Duration::from_secs(1),
            k: 3,
            instances: vec![],
            per_instance: false,
            jobs: 1,
            report: Some(path_str.clone()),
            certify: false,
            proof_dir: None,
            ..HarnessConfig::default()
        };
        let mut guard = ReportGuard::new(&path_str, "table9", &config);
        guard.push(RunReport::default());
        guard.push(RunReport::default());
        guard.finish();
        let json = std::fs::read_to_string(&path).expect("report written");
        assert!(json.contains("\"generator\": \"table9\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn supervision_knobs_validate_at_parse_time() {
        let good = HarnessConfig {
            checkpoint: Some("a.ckpt".to_string()),
            watchdog_secs: Some(5.0),
            retries: Some(2),
            ..HarnessConfig::default()
        };
        assert!(good.validate_supervision().is_ok());
        let sup = good.supervisor_config();
        assert_eq!(sup.checkpoint_path.as_deref(), Some(std::path::Path::new("a.ckpt")));
        assert_eq!(sup.watchdog, Some(Duration::from_secs(5)));
        assert_eq!(sup.max_retries, 2);

        let zero_watchdog = HarnessConfig { watchdog_secs: Some(0.0), ..HarnessConfig::default() };
        assert!(zero_watchdog.validate_supervision().unwrap_err().contains("watchdog"));
        let zero_retries = HarnessConfig { retries: Some(0), ..HarnessConfig::default() };
        assert!(zero_retries.validate_supervision().unwrap_err().contains("retries"));
        let collision = HarnessConfig {
            checkpoint: Some("out.json".to_string()),
            report: Some("out.json".to_string()),
            ..HarnessConfig::default()
        };
        assert!(collision.validate_supervision().unwrap_err().contains("clobber"));
    }

    /// Satellite regression: an atomic artifact write that fails mid-flight
    /// (injected via [`FaultPlan`]) must leave the previous report intact —
    /// never a truncated or missing file.
    #[test]
    fn injected_write_failure_preserves_the_previous_report() {
        use sbgc_obs::{write_atomic_instrumented, FaultPlan};
        let path =
            std::env::temp_dir().join(format!("sbgc_atomic_report_{}.json", std::process::id()));
        std::fs::write(&path, b"{\"good\": true}").unwrap();
        let fault = FaultPlan::new(7).with_artifact_write_failure();
        let err = write_atomic_instrumented(&path, b"half-written", Some(&fault)).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"good\": true}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn certificate_stats_preserve_failure_detail() {
        use sbgc_core::Coloring;
        use sbgc_graph::Graph;
        // An overclaimed optimum must flatten to a "rejected" record.
        let g = Graph::cycle(6);
        let bogus = ChromaticResult::Exact {
            chromatic_number: 4,
            witness: Coloring::new(vec![0, 1, 2, 3, 0, 1]),
        };
        let cert = certify_result(&g, &bogus, &Budget::unlimited()).expect("exact claim");
        let stats = certificate_stats(&cert);
        assert_eq!(stats.status, "rejected");
        assert!(!stats.detail.is_empty());
        assert!(!stats.is_verified());
    }
}

//! Shared harness for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — the 20-instance benchmark suite |
//! | `table2` | Table 2 — formula sizes + symmetry statistics per SBP mode |
//! | `table3` | Table 3 — solver grid at K = 20 |
//! | `table4` | Table 4 — solver grid at K = 30 |
//! | `table5` | Table 5 — per-instance queens detail, five solvers |
//! | `figure1` | Figure 1 — admitted assignments per SBP construction |
//!
//! All binaries accept `--timeout <secs>`, `--k <K>`, `--instances a,b,c`
//! and `--full` (full 20-instance suite at paper parameters; the default is
//! a quick subset so a complete run finishes in minutes — absolute times
//! differ from the paper's 2002-era Sun Blade 1000s anyway, it is the
//! relative ordering that reproduces).
//!
//! The table binaries and `bench_json` also accept `--report PATH`, which
//! re-runs each configured instance once with a live [`Recorder`] attached
//! and writes a structured JSON [`ReportFile`] — per-phase timings, search
//! counters, encoding sizes, detection statistics, and (with `--jobs N`,
//! N > 1) per-worker portfolio telemetry. The schema is documented
//! field-by-field in `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sbgc_core::{
    solve_coloring, ColoringOutcome, PreparedColoring, Recorder, SbpMode, SolveOptions, SolverKind,
    SymmetryHandling,
};
use sbgc_graph::suite::{self, Instance};
use sbgc_obs::{DetectionStats, EncodingSize, InstanceInfo, ReportFile, RunOutcome, RunReport};
use sbgc_pb::Budget;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Harness configuration parsed from the command line.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Per-run wall-clock timeout (the paper used 1000 s).
    pub timeout: Duration,
    /// The color bound K.
    pub k: usize,
    /// Instance names to run.
    pub instances: Vec<String>,
    /// Print per-instance rows in addition to totals.
    pub per_instance: bool,
    /// Number of grid cells run concurrently (`--jobs N`, default 1).
    /// Per-cell times are still measured on the worker thread, so reported
    /// solve times stay meaningful; only wall-clock completion of the
    /// whole table shrinks.
    pub jobs: usize,
    /// When set (`--report PATH`), the binary writes a structured JSON
    /// [`ReportFile`] of instrumented per-instance runs to this path after
    /// the table prints. Schema documented in `docs/OBSERVABILITY.md`.
    pub report: Option<String>,
}

/// The quick default subset: small and medium instances from five of the
/// seven families, chosen so the full grid finishes in minutes.
pub const QUICK_INSTANCES: [&str; 8] =
    ["myciel3", "myciel4", "myciel5", "queen5_5", "queen6_6", "huck", "jean", "miles250"];

impl HarnessConfig {
    /// Parses `std::env::args`-style flags. Unknown flags abort with a
    /// usage message.
    pub fn from_args(default_k: usize, default_timeout: Duration) -> Self {
        let mut config = HarnessConfig {
            timeout: default_timeout,
            k: default_k,
            instances: QUICK_INSTANCES.iter().map(|s| s.to_string()).collect(),
            per_instance: false,
            jobs: 1,
            report: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--timeout" => {
                    i += 1;
                    let secs: f64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--timeout needs seconds"));
                    config.timeout = Duration::from_secs_f64(secs);
                }
                "--k" => {
                    i += 1;
                    config.k = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--k needs an integer"));
                }
                "--instances" => {
                    i += 1;
                    let list = args.get(i).unwrap_or_else(|| usage("--instances needs a list"));
                    config.instances = list.split(',').map(|s| s.trim().to_string()).collect();
                }
                "--full" => {
                    config.instances = suite::SUITE.iter().map(|m| m.name.to_string()).collect();
                }
                "--per-instance" => config.per_instance = true,
                "--jobs" => {
                    i += 1;
                    let jobs: usize = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs an integer"));
                    config.jobs = jobs.max(1);
                }
                "--report" => {
                    i += 1;
                    let path = args.get(i).unwrap_or_else(|| usage("--report needs a path"));
                    config.report = Some(path.clone());
                }
                other => usage(&format!("unknown flag `{other}`")),
            }
            i += 1;
        }
        config
    }

    /// Builds the configured instances.
    pub fn build_instances(&self) -> Vec<Instance> {
        self.instances.iter().map(|name| suite::build(name)).collect()
    }

    /// The solver budget for one run.
    pub fn budget(&self) -> Budget {
        Budget::unlimited().with_timeout(self.timeout)
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: <bin> [--timeout SECS] [--k K] [--instances a,b,c] [--full] [--per-instance] \
         [--jobs N] [--report PATH]"
    );
    std::process::exit(2)
}

/// One cell of the solver grid: total time over the instance set and the
/// number of instances decided (solved to optimality or proven UNSAT) —
/// the `Tm.`/`#S` pairs of Tables 3–5.
#[derive(Clone, Copy, Debug, Default)]
pub struct GridCell {
    /// Summed wall-clock solve time (timeouts contribute the timeout).
    pub total_time: Duration,
    /// Number of instances decided within the budget.
    pub solved: usize,
}

impl GridCell {
    /// Formats like the paper: total seconds (rounded) and solve count.
    pub fn render(&self) -> String {
        format!("{:>8.1}s {:>3}", self.total_time.as_secs_f64(), self.solved)
    }
}

/// The per-instance work of one grid row: cells (one per solver) plus the
/// `--per-instance` report lines, kept as strings so worker threads never
/// interleave output.
struct InstanceRow {
    cells: Vec<GridCell>,
    lines: Vec<String>,
}

fn run_instance_row(
    inst: &Instance,
    k: usize,
    mode: SbpMode,
    symmetry: SymmetryHandling,
    solvers: &[SolverKind],
    budget_for: &(impl Fn() -> Budget + Sync),
    per_instance: bool,
) -> InstanceRow {
    let mut row =
        InstanceRow { cells: vec![GridCell::default(); solvers.len()], lines: Vec::new() };
    let mut options = SolveOptions::new(k).with_sbp_mode(mode);
    options.symmetry = symmetry;
    let prepared = PreparedColoring::new(&inst.graph, &options);
    for (cell, &solver) in row.cells.iter_mut().zip(solvers) {
        // Timing happens inside `solve`, on this worker thread.
        let report = prepared.solve(&inst.graph, solver, &budget_for());
        cell.total_time += report.solve_time;
        if report.outcome.is_decided() {
            cell.solved += 1;
        }
        if per_instance {
            let outcome = match &report.outcome {
                o if o.is_decided() => match o.colors() {
                    Some(c) => format!("optimal {c}"),
                    None => format!("UNSAT at K={k}"),
                },
                o => match o.colors() {
                    Some(c) => format!("feasible {c} (timeout)"),
                    None => "timeout".to_string(),
                },
            };
            row.lines.push(format!(
                "    {:<12} {:<7} i.d.={:<5} {:<7} {:>8.2}s  {}",
                inst.meta.name,
                mode.display_name(),
                matches!(symmetry, SymmetryHandling::WithInstanceDependent),
                solver.display_name(),
                report.solve_time.as_secs_f64(),
                outcome
            ));
        }
    }
    row
}

/// Runs one (SBP mode × symmetry handling) configuration over the instance
/// set for *all* the given solvers, preparing each instance (encoding +
/// symmetry detection) only once. Returns one `Tm.`/`#S` cell per solver,
/// in the given order.
///
/// With `jobs > 1` the per-instance work is distributed over that many
/// scoped worker threads (a shared atomic work queue — instances are
/// claimed in order, results are merged and printed in instance order, so
/// the output is identical to a sequential run). Each cell's solve time is
/// still measured on the thread that ran it.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_row(
    instances: &[Instance],
    k: usize,
    mode: SbpMode,
    symmetry: SymmetryHandling,
    solvers: &[SolverKind],
    budget_for: impl Fn() -> Budget + Sync,
    per_instance: bool,
    jobs: usize,
) -> Vec<GridCell> {
    let rows: Vec<Mutex<Option<InstanceRow>>> =
        instances.iter().map(|_| Mutex::new(None)).collect();
    let jobs = jobs.max(1).min(instances.len().max(1));
    if jobs == 1 {
        for (inst, slot) in instances.iter().zip(&rows) {
            *slot.lock().expect("row slot") =
                Some(run_instance_row(inst, k, mode, symmetry, solvers, &budget_for, per_instance));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (next, rows, budget_for) = (&next, &rows, &budget_for);
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(inst) = instances.get(i) else { break };
                    let row = run_instance_row(
                        inst,
                        k,
                        mode,
                        symmetry,
                        solvers,
                        budget_for,
                        per_instance,
                    );
                    *rows[i].lock().expect("row slot") = Some(row);
                });
            }
        });
    }

    let mut cells = vec![GridCell::default(); solvers.len()];
    for slot in rows {
        let row = slot.into_inner().expect("row slot").expect("worker filled every slot");
        for (cell, c) in cells.iter_mut().zip(&row.cells) {
            cell.total_time += c.total_time;
            cell.solved += c.solved;
        }
        for line in row.lines {
            println!("{line}");
        }
    }
    cells
}

/// Convenience wrapper for a single (mode × symmetry × solver) cell.
pub fn run_grid_cell(
    instances: &[Instance],
    k: usize,
    mode: SbpMode,
    symmetry: SymmetryHandling,
    solver: SolverKind,
    budget_for: impl Fn() -> Budget + Sync,
    per_instance: bool,
) -> GridCell {
    run_grid_row(instances, k, mode, symmetry, &[solver], budget_for, per_instance, 1)
        .pop()
        .expect("one cell per solver")
}

/// Renders a Markdown-ish table row.
pub fn render_row(cells: &[String]) -> String {
    cells.join(" | ")
}

/// Runs one fully instrumented end-to-end solve of `inst` and assembles
/// the [`RunReport`] for it.
///
/// The instrumented run uses the paper's strongest configuration — NU+SC
/// instance-independent SBPs plus Shatter instance-dependent SBPs, solved
/// by PBS II — under the harness budget. With `config.jobs > 1` the solve
/// races that many portfolio workers, so the report carries one
/// [`sbgc_obs::WorkerTelemetry`] record per worker; with `jobs == 1` the
/// solve is sequential and `workers` is empty.
pub fn collect_run_report(inst: &Instance, config: &HarnessConfig) -> RunReport {
    let recorder = Recorder::new();
    let options = SolveOptions::new(config.k)
        .with_sbp_mode(SbpMode::NuSc)
        .with_instance_dependent_sbps()
        .with_solver(SolverKind::PbsII)
        .with_budget(config.budget())
        .with_parallelism(config.jobs)
        .with_recorder(recorder.clone());
    let solved = solve_coloring(&inst.graph, &options);

    let mut report = RunReport {
        instance: InstanceInfo {
            name: inst.meta.name.to_string(),
            vertices: inst.graph.num_vertices(),
            edges: inst.graph.num_edges(),
        },
        k: config.k,
        sbp_mode: options.sbp_mode.display_name().to_string(),
        solver: options.solver.display_name().to_string(),
        jobs: config.jobs,
        encoding: EncodingSize {
            base_vars: solved.base_stats.vars,
            base_clauses: solved.base_stats.clauses,
            base_pb: solved.base_stats.pb_constraints(),
            sbp_aux_vars: solved.sbp_stats.aux_vars,
            sbp_clauses: solved.sbp_stats.clauses,
            sbp_pb: solved.sbp_stats.pb_constraints,
            final_vars: solved.final_stats.vars,
            final_clauses: solved.final_stats.clauses,
            final_pb: solved.final_stats.pb_constraints(),
        },
        detection: solved.shatter.as_ref().map(|s| DetectionStats {
            seconds: s.symmetry.detection_time.as_secs_f64(),
            generators: s.num_generators,
            order_log10: s.symmetry.order_log10,
            spurious_dropped: s.symmetry.spurious_dropped,
            exact: s.symmetry.exact,
            sbp_clauses: s.sbp.clauses,
            sbp_aux_vars: s.sbp.aux_vars,
        }),
        total_seconds: solved.total_time.as_secs_f64(),
        outcome: match &solved.outcome {
            ColoringOutcome::Optimal { colors, .. } => {
                RunOutcome { kind: "optimal".to_string(), colors: Some(*colors), decided: true }
            }
            ColoringOutcome::Feasible { colors, .. } => {
                RunOutcome { kind: "feasible".to_string(), colors: Some(*colors), decided: false }
            }
            ColoringOutcome::InfeasibleAtK => {
                RunOutcome { kind: "infeasible_at_k".to_string(), colors: None, decided: true }
            }
            ColoringOutcome::Unknown => {
                RunOutcome { kind: "timeout".to_string(), colors: None, decided: false }
            }
        },
        ..RunReport::default()
    };
    report.from_recorder(&recorder);
    report
}

/// Writes the `--report PATH` file if the flag was given, re-running every
/// configured instance once with a live [`Recorder`] attached.
///
/// The instrumented runs are separate from the table runs the binary just
/// printed — the table grid varies SBP mode and solver per cell, while the
/// report wants one canonical, fully-traced run per instance (see
/// [`collect_run_report`]). Call this at the end of `main`. Exits with an
/// error if the file cannot be written.
pub fn write_report(config: &HarnessConfig, generator: &str) {
    let Some(path) = &config.report else { return };
    eprintln!("\ncollecting instrumented runs for --report {path}");
    let instances = config.build_instances();
    let runs: Vec<RunReport> =
        instances.iter().map(|inst| collect_run_report(inst, config)).collect();
    let file = ReportFile {
        generator: generator.to_string(),
        k: config.k,
        timeout_s: config.timeout.as_secs_f64(),
        jobs: config.jobs,
        runs,
    };
    match std::fs::write(path, file.to_json()) {
        Ok(()) => eprintln!("report written: {path}"),
        Err(err) => {
            eprintln!("error: could not write report to {path}: {err}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_instances_exist_in_suite() {
        for name in QUICK_INSTANCES {
            assert!(suite::SUITE.iter().any(|m| m.name == name), "{name}");
        }
    }

    #[test]
    fn grid_cell_accumulates() {
        let instances = vec![suite::build("myciel3")];
        let cell = run_grid_cell(
            &instances,
            5,
            SbpMode::NuSc,
            SymmetryHandling::InstanceIndependentOnly,
            SolverKind::PbsII,
            Budget::unlimited,
            false,
        );
        assert_eq!(cell.solved, 1);
    }

    #[test]
    fn render_is_stable() {
        let c = GridCell { total_time: Duration::from_millis(1500), solved: 3 };
        assert_eq!(c.render(), "     1.5s   3");
    }

    #[test]
    fn collected_report_carries_phases_counters_and_outcome() {
        let config = HarnessConfig {
            timeout: Duration::from_secs(30),
            k: 5,
            instances: vec!["myciel3".to_string()],
            per_instance: false,
            jobs: 1,
            report: None,
        };
        let inst = suite::build("myciel3");
        let report = collect_run_report(&inst, &config);
        assert_eq!(report.instance.name, "myciel3");
        assert_eq!(report.outcome.kind, "optimal");
        assert_eq!(report.outcome.colors, Some(4)); // χ(myciel3) = 4
        assert!(report.outcome.decided);
        assert!(report.encoding.final_vars > report.encoding.base_vars);
        assert!(report.detection.is_some(), "instance-dependent SBPs ran");
        for (phase, timing) in &report.phases {
            assert!(timing.count > 0, "phase {phase} never entered");
        }
        assert!(report.search.decisions > 0);
        assert!(report.workers.is_empty(), "sequential run has no workers");
        let json = report.to_json(0);
        assert!(json.contains("\"kind\": \"optimal\""));
    }

    #[test]
    fn collected_report_with_jobs_carries_worker_telemetry() {
        let config = HarnessConfig {
            timeout: Duration::from_secs(30),
            k: 5,
            instances: vec!["myciel3".to_string()],
            per_instance: false,
            jobs: 2,
            report: None,
        };
        let inst = suite::build("myciel3");
        let report = collect_run_report(&inst, &config);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers.iter().filter(|w| w.won).count(), 1);
    }
}

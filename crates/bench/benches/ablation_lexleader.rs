//! Ablation: the efficient linear lex-leader construction (Aloul et al.
//! 2003) against the earlier quadratic construction — generation cost,
//! formula size, and downstream solve time on a symmetric UNSAT family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgc_formula::{PbFormula, Var};
use sbgc_pb::{PbEngine, SolverKind};
use sbgc_shatter::{sbp_for_permutation, shatter, LitPermutation, SbpConstruction, ShatterOptions};

/// A single big-cycle permutation over `n` variables.
fn big_cycle(n: usize) -> LitPermutation {
    let mut images = Vec::with_capacity(2 * n);
    for i in 0..n {
        let j = (i + 1) % n;
        images.push(2 * j as u32);
        images.push(2 * j as u32 + 1);
    }
    LitPermutation::from_images(images).expect("valid cycle")
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lexleader_generation");
    for n in [32usize, 128, 512] {
        let perm = big_cycle(n);
        for construction in [SbpConstruction::EfficientLinear, SbpConstruction::NaiveQuadratic] {
            group.bench_with_input(
                BenchmarkId::new(format!("{construction:?}"), n),
                &(&perm, n),
                |b, (perm, n)| {
                    b.iter(|| {
                        let mut f = PbFormula::with_vars(*n);
                        sbp_for_permutation(&mut f, perm, construction)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Pigeonhole CNF used as a symmetric downstream workload.
fn pigeonhole(holes: usize) -> PbFormula {
    let pigeons = holes + 1;
    let mut f = PbFormula::new();
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let _ = f.new_vars(pigeons * holes);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| var(p, h).positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    f
}

fn bench_downstream_solving(c: &mut Criterion) {
    let mut group = c.benchmark_group("lexleader_downstream");
    group.sample_size(10);
    let base = pigeonhole(6);
    for construction in [SbpConstruction::EfficientLinear, SbpConstruction::NaiveQuadratic] {
        let mut f = base.clone();
        let report = shatter(&mut f, &ShatterOptions { construction, ..Default::default() });
        assert!(report.num_generators > 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{construction:?}")),
            &f,
            |b, f| {
                b.iter(|| {
                    let config = SolverKind::PbsII.engine_config().expect("cdcl");
                    let mut engine = PbEngine::from_formula(f, config);
                    assert!(engine.solve().is_unsat());
                    engine.stats().conflicts
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generation, bench_downstream_solving
}
criterion_main!(benches);

//! Encoding throughput: graph → 0-1 ILP formula, and the cost of each
//! instance-independent SBP construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgc_core::{add_instance_independent_sbps, ColoringEncoding, SbpMode};
use sbgc_graph::suite;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for name in ["myciel4", "queen6_6", "games120"] {
        let inst = suite::build(name);
        for k in [10usize, 20] {
            group.bench_with_input(
                BenchmarkId::new(name, k),
                &(&inst.graph, k),
                |b, (graph, k)| b.iter(|| ColoringEncoding::new(graph, *k)),
            );
        }
    }
    group.finish();
}

fn bench_sbp_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbp_construction");
    let inst = suite::build("queen6_6");
    for mode in SbpMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.display_name()),
            &mode,
            |b, &mode| {
                b.iter_batched(
                    || ColoringEncoding::new(&inst.graph, 10),
                    |mut enc| add_instance_independent_sbps(&mut enc, &inst.graph, mode),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode, bench_sbp_construction
}
criterion_main!(benches);

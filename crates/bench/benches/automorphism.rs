//! Symmetry detection cost (the paper's Table 2 "Saucy time" column):
//! formula-graph construction plus automorphism search, per SBP mode.
//!
//! The paper's observation to reproduce: adding instance-independent SBPs
//! *shrinks* detection time (smaller group to discover), except SC which
//! barely changes it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgc_aut::automorphisms;
use sbgc_core::{add_instance_independent_sbps, ColoringEncoding, SbpMode};
use sbgc_graph::{gen, suite};
use sbgc_shatter::{detect_symmetries, formula_graph, AutomorphismOptions};

fn bench_raw_graph_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("automorphism_raw");
    let cases: Vec<(&str, sbgc_aut::ColoredGraph)> = vec![
        ("petersen", {
            let outer = (0..5).map(|i| (i, (i + 1) % 5));
            let spokes = (0..5).map(|i| (i, i + 5));
            let inner = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5));
            sbgc_aut::ColoredGraph::from_edges(10, outer.chain(spokes).chain(inner), None)
        }),
        ("queen5_5", {
            let g = gen::queens(5, 5);
            sbgc_aut::ColoredGraph::from_edges(g.num_vertices(), g.edges(), None)
        }),
    ];
    for (name, g) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| automorphisms(g))
        });
    }
    group.finish();
}

fn bench_detection_per_sbp_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_detection");
    group.sample_size(10);
    let inst = suite::build("myciel4");
    for mode in [SbpMode::None, SbpMode::Nu, SbpMode::Li, SbpMode::Sc] {
        let mut enc = ColoringEncoding::new(&inst.graph, 6);
        let _ = add_instance_independent_sbps(&mut enc, &inst.graph, mode);
        let formula = enc.into_formula();
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.display_name()),
            &formula,
            |b, f| b.iter(|| detect_symmetries(f, &AutomorphismOptions::default())),
        );
    }
    group.finish();
}

fn bench_formula_graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("formula_graph");
    for name in ["myciel4", "queen6_6"] {
        let inst = suite::build(name);
        let enc = ColoringEncoding::new(&inst.graph, 10);
        let formula = enc.into_formula();
        group.bench_with_input(BenchmarkId::from_parameter(name), &formula, |b, f| {
            b.iter(|| formula_graph(f))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_raw_graph_groups, bench_detection_per_sbp_mode,
              bench_formula_graph_construction
}
criterion_main!(benches);

//! The solver grid in micro-benchmark form (Tables 3–5 at reduced scale):
//! solve time per (SBP mode × solver × symmetry handling) on instances
//! small enough for Criterion's repeated sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgc_core::{solve_coloring, SbpMode, SolveOptions, SolverKind};
use sbgc_graph::suite;

fn bench_sbp_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_by_sbp_mode");
    group.sample_size(10);
    let inst = suite::build("myciel3");
    for mode in SbpMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.display_name()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let opts = SolveOptions::new(6).with_sbp_mode(mode);
                    let report = solve_coloring(&inst.graph, &opts);
                    assert_eq!(report.outcome.colors(), Some(4));
                    report
                })
            },
        );
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_by_solver");
    group.sample_size(10);
    let inst = suite::build("queen5_5");
    for solver in SolverKind::APPENDIX {
        group.bench_with_input(
            BenchmarkId::from_parameter(solver.display_name()),
            &solver,
            |b, &solver| {
                b.iter(|| {
                    let opts =
                        SolveOptions::new(6).with_sbp_mode(SbpMode::NuSc).with_solver(solver);
                    let report = solve_coloring(&inst.graph, &opts);
                    assert_eq!(report.outcome.colors(), Some(5));
                    report
                })
            },
        );
    }
    group.finish();
}

fn bench_instance_dependent(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_instance_dependent");
    group.sample_size(10);
    let inst = suite::build("myciel4");
    for (label, instance_dependent) in [("without", false), ("with", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &instance_dependent,
            |b, &id| {
                b.iter(|| {
                    let mut opts = SolveOptions::new(7).with_sbp_mode(SbpMode::Sc);
                    if id {
                        opts = opts.with_instance_dependent_sbps();
                    }
                    let report = solve_coloring(&inst.graph, &opts);
                    assert_eq!(report.outcome.colors(), Some(5));
                    report
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sbp_modes, bench_solvers, bench_instance_dependent
}
criterion_main!(benches);

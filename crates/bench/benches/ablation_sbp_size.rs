//! Ablation: SBP completeness vs. formula growth vs. solve time — the
//! paper's central "simplicity beats completeness" claim, isolated.
//!
//! NU adds K−1 binary clauses, CA adds K−1 wide PB constraints, LI adds
//! nK variables and ≈4nK clauses. More complete constructions break more
//! symmetries but burden the solver more.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgc_core::{
    add_instance_independent_sbps, solve_coloring, ColoringEncoding, SbpMode, SolveOptions,
};
use sbgc_graph::suite;

fn bench_formula_growth(c: &mut Criterion) {
    // Not a timing benchmark per se: asserts the size ordering while
    // measuring construction; keeps the size claim continuously verified.
    let inst = suite::build("queen6_6");
    let sizes: Vec<(SbpMode, usize)> = SbpMode::EXTENDED
        .iter()
        .map(|&mode| {
            let mut enc = ColoringEncoding::new(&inst.graph, 10);
            let _ = add_instance_independent_sbps(&mut enc, &inst.graph, mode);
            let s = enc.formula().stats();
            (mode, s.vars + s.clauses + s.pb_constraints())
        })
        .collect();
    let size_of = |m: SbpMode| sizes.iter().find(|(mm, _)| *mm == m).expect("present").1;
    // NU-vs-CA ordering is instance-dependent (clauses vs wide PBs), so
    // only the unconditional orderings are asserted below.
    assert!(size_of(SbpMode::Li) > size_of(SbpMode::Ca), "LI must dominate CA");
    assert!(size_of(SbpMode::Sc) <= size_of(SbpMode::Nu), "SC is the smallest");
    // The aux-free value-precedence construction must stay below the
    // aux-variable encodings of the same (complete) solution set.
    assert!(size_of(SbpMode::ValuePrec) < size_of(SbpMode::LiPrefix));
    assert!(size_of(SbpMode::ValuePrec) < size_of(SbpMode::Orbitope));

    let mut group = c.benchmark_group("sbp_size_growth");
    group.sample_size(20);
    for mode in SbpMode::EXTENDED {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.display_name()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut enc = ColoringEncoding::new(&inst.graph, 10);
                    add_instance_independent_sbps(&mut enc, &inst.graph, mode)
                })
            },
        );
    }
    group.finish();
}

fn bench_solve_time_by_completeness(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbp_completeness_vs_solve");
    group.sample_size(10);
    let inst = suite::build("myciel4");
    // Ordered by increasing completeness of instance-independent breaking;
    // LI-pfx, Orbitope and ValPrec all encode the same complete
    // first-occurrence semantics as LI — the quadruple isolates encoding
    // quality from symmetry-level strength.
    for mode in [
        SbpMode::None,
        SbpMode::Sc,
        SbpMode::Nu,
        SbpMode::NuSc,
        SbpMode::Ca,
        SbpMode::Li,
        SbpMode::LiPrefix,
        SbpMode::Orbitope,
        SbpMode::ValuePrec,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.display_name()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let opts = SolveOptions::new(7).with_sbp_mode(mode);
                    let report = solve_coloring(&inst.graph, &opts);
                    assert_eq!(report.outcome.colors(), Some(5));
                    report
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_formula_growth, bench_solve_time_by_completeness
}
criterion_main!(benches);

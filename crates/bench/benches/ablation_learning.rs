//! Ablation: the three PB explanation strategies (the axis that separates
//! our PBS II / Galena / Pueblo analogues) on PB-heavy workloads.
//!
//! The paper's claim to check: the specialized solvers differ in
//! implementation detail but show the *same* qualitative behavior.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgc_formula::{PbFormula, Var};
use sbgc_pb::{EngineConfig, ExplainStrategy, PbEngine};

/// PB pigeonhole: exactly-one per pigeon, at-most-one per hole (UNSAT).
fn pb_pigeonhole(holes: usize) -> PbFormula {
    let pigeons = holes + 1;
    let mut f = PbFormula::new();
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let _ = f.new_vars(pigeons * holes);
    for p in 0..pigeons {
        let row: Vec<_> = (0..holes).map(|h| var(p, h).positive()).collect();
        f.add_exactly_one(&row);
    }
    for h in 0..holes {
        let col: Vec<_> = (0..pigeons).map(|p| var(p, h).positive()).collect();
        f.add_at_most_one(&col);
    }
    f
}

fn bench_explain_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("explain_strategy_php");
    group.sample_size(10);
    let f = pb_pigeonhole(6);
    for strategy in [
        ExplainStrategy::AllFalse,
        ExplainStrategy::GreedyCoefficient,
        ExplainStrategy::GreedyRecency,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let config = EngineConfig { explain: strategy, ..EngineConfig::default() };
                    let mut engine = PbEngine::from_formula(&f, config);
                    assert!(engine.solve().is_unsat());
                    engine.stats().conflicts
                })
            },
        );
    }
    group.finish();
}

fn bench_coloring_with_strategies(c: &mut Criterion) {
    use sbgc_core::{solve_coloring, SolveOptions, SolverKind};
    use sbgc_graph::gen::queens;
    let mut group = c.benchmark_group("explain_strategy_coloring");
    group.sample_size(10);
    let g = queens(5, 5);
    for solver in [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo] {
        group.bench_with_input(
            BenchmarkId::from_parameter(solver.display_name()),
            &solver,
            |b, &solver| {
                b.iter(|| {
                    let opts = SolveOptions::new(6).with_solver(solver);
                    let report = solve_coloring(&g, &opts);
                    assert_eq!(report.outcome.colors(), Some(5));
                    report
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_explain_strategies, bench_coloring_with_strategies
}
criterion_main!(benches);

//! The undirected graph type.

use std::fmt;

/// An undirected simple graph with a fixed vertex count and sorted
/// adjacency lists.
///
/// Vertices are `0..num_vertices()`. Self-loops and parallel edges are
/// rejected/merged at construction. Adjacency lists are kept sorted, so
/// [`Graph::has_edge`] is `O(log d)` and neighbor iteration is ordered,
/// which keeps every downstream encoding deterministic.
///
/// # Example
///
/// ```
/// use sbgc_graph::Graph;
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// assert!(g.has_edge(1, 0));
/// assert!(!g.has_edge(0, 2));
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets: `adj[offsets[v]..offsets[v+1]]` are v's neighbors.
    offsets: Vec<usize>,
    adj: Vec<u32>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from an edge list. Duplicate edges are merged and
    /// self-loops are dropped.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_vertices`.
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (a, b) in edges {
            assert!(
                a < num_vertices && b < num_vertices,
                "edge ({a}, {b}) out of range for {num_vertices} vertices"
            );
            if a == b {
                continue;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            pairs.push((lo as u32, hi as u32));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut degree = vec![0usize; num_vertices];
        for &(a, b) in &pairs {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0u32; acc];
        for &(a, b) in &pairs {
            adj[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            adj[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Each vertex's slice is already sorted because pairs were sorted
        // lexicographically, but neighbors inserted via the second endpoint
        // interleave; sort each slice to be safe.
        for v in 0..num_vertices {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, adj, num_edges: pairs.len() }
    }

    /// Builds the empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph::from_edges(n, std::iter::empty())
    }

    /// Starts a streaming two-pass CSR build: see [`CsrBuilder`]. Unlike
    /// [`Graph::from_edges`], no intermediate edge list is materialized —
    /// the caller streams each edge once to count degrees and once to
    /// fill adjacency, so peak memory is the CSR structure itself.
    pub fn builder(num_vertices: usize) -> CsrBuilder {
        CsrBuilder::new(num_vertices)
    }

    /// Builds the complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let edges = (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b)));
        Graph::from_edges(n, edges)
    }

    /// Builds the cycle `C_n` (requires `n >= 3`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 vertices");
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Edge query, `O(log deg)`.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        if a >= self.num_vertices() || b >= self.num_vertices() || a == b {
            return false;
        }
        // Search the smaller adjacency list.
        let (probe, target) = if self.degree(a) <= self.degree(b) { (a, b) } else { (b, a) };
        self.neighbors(probe).binary_search(&(target as u32)).is_ok()
    }

    /// Iterates over each undirected edge once, as `(a, b)` with `a < b`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_vertices()).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| (b as usize) > a)
                .map(move |b| (a, b as usize))
        })
    }

    /// Edge density `2m / (n(n-1))`; 0 for graphs with fewer than two
    /// vertices.
    pub fn density(&self) -> f64 {
        let n = self.num_vertices();
        if n < 2 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / (n as f64 * (n - 1) as f64)
    }

    /// Returns the subgraph induced by `vertices` (which are relabelled
    /// `0..vertices.len()` in the given order), together with the mapping
    /// back to original vertex ids.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut index = vec![usize::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            index[v] = i;
        }
        let mut edges = Vec::new();
        for (i, &v) in vertices.iter().enumerate() {
            for &w in self.neighbors(v) {
                let j = index[w as usize];
                if j != usize::MAX && j > i {
                    edges.push((i, j));
                }
            }
        }
        (Graph::from_edges(vertices.len(), edges), vertices.to_vec())
    }

    /// Returns the complement graph: same vertices, an edge exactly where
    /// this graph has none.
    ///
    /// # Example
    ///
    /// ```
    /// use sbgc_graph::Graph;
    /// let g = Graph::cycle(5);
    /// let c = g.complement();
    /// assert_eq!(c.num_edges(), 5); // C5 is self-complementary in count
    /// assert!(!c.has_edge(0, 1));
    /// assert!(c.has_edge(0, 2));
    /// ```
    pub fn complement(&self) -> Graph {
        let n = self.num_vertices();
        let edges = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|&(a, b)| !self.has_edge(a, b));
        Graph::from_edges(n, edges)
    }

    /// Returns the graph with vertices relabelled by `perm` (vertex `v`
    /// becomes `perm[v]`). `perm` must be a permutation of `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the vertex set.
    pub fn relabel(&self, perm: &[usize]) -> Graph {
        let n = self.num_vertices();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Graph::from_edges(n, self.edges().map(|(a, b)| (perm[a], perm[b])))
    }

    /// Returns `true` if `perm` is an automorphism of the graph.
    pub fn is_automorphism(&self, perm: &[usize]) -> bool {
        if perm.len() != self.num_vertices() {
            return false;
        }
        self.edges().all(|(a, b)| self.has_edge(perm[a], perm[b]))
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.num_vertices(), self.num_edges())
    }
}

/// Streaming two-pass CSR construction, for callers that can iterate
/// their edge source twice (e.g. a DIMACS `.col` document held as text).
///
/// [`Graph::from_edges`] buffers every edge in an intermediate
/// `Vec<(u32, u32)>` before building the CSR arrays — 8 bytes per edge of
/// transient memory on top of the final structure. The builder instead
/// makes a *counting* pass ([`CsrBuilder::count_edge`] per edge), sizes
/// the CSR arrays exactly, then makes a *filling* pass
/// ([`CsrBuilder::fill_edge`] per edge, after [`CsrBuilder::start_fill`]),
/// so peak memory is the final adjacency plus `O(n)` bookkeeping.
/// Self-loops are dropped and duplicate edges merged, exactly as in
/// [`Graph::from_edges`].
///
/// # Example
///
/// ```
/// use sbgc_graph::Graph;
/// let edges = [(0usize, 1usize), (1, 2), (1, 2)]; // dup merged
/// let mut b = Graph::builder(3);
/// for &(x, y) in &edges {
///     b.count_edge(x, y);
/// }
/// b.start_fill();
/// for &(x, y) in &edges {
///     b.fill_edge(x, y);
/// }
/// assert_eq!(b.finish(), Graph::from_edges(3, edges));
/// ```
#[derive(Debug)]
pub struct CsrBuilder {
    num_vertices: usize,
    /// Degrees during counting; CSR offsets after `start_fill`.
    offsets: Vec<usize>,
    /// Per-vertex write cursor during filling.
    cursor: Vec<usize>,
    adj: Vec<u32>,
    filling: bool,
}

impl CsrBuilder {
    /// Starts a builder for a graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        CsrBuilder {
            num_vertices,
            offsets: vec![0; num_vertices + 1],
            cursor: Vec::new(),
            adj: Vec::new(),
            filling: false,
        }
    }

    /// The vertex count this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Counting pass: registers one endpoint pair. Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or [`CsrBuilder::start_fill`]
    /// was already called.
    pub fn count_edge(&mut self, a: usize, b: usize) {
        assert!(!self.filling, "count_edge after start_fill");
        assert!(
            a < self.num_vertices && b < self.num_vertices,
            "edge ({a}, {b}) out of range for {} vertices",
            self.num_vertices
        );
        if a == b {
            return;
        }
        // offsets[v + 1] accumulates deg(v); the prefix sum shifts into place.
        self.offsets[a + 1] += 1;
        self.offsets[b + 1] += 1;
    }

    /// Ends the counting pass: sizes the adjacency array from the counted
    /// degrees and prepares the per-vertex cursors for filling.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start_fill(&mut self) {
        assert!(!self.filling, "start_fill called twice");
        self.filling = true;
        for v in 0..self.num_vertices {
            self.offsets[v + 1] += self.offsets[v];
        }
        self.adj = vec![0u32; self.offsets[self.num_vertices]];
        self.cursor = self.offsets[..self.num_vertices].to_vec();
    }

    /// Filling pass: stores one endpoint pair. The caller must replay
    /// exactly the edges it counted (any order). Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, if called before
    /// [`CsrBuilder::start_fill`], or if a vertex receives more neighbors
    /// than were counted for it.
    pub fn fill_edge(&mut self, a: usize, b: usize) {
        assert!(self.filling, "fill_edge before start_fill");
        assert!(
            a < self.num_vertices && b < self.num_vertices,
            "edge ({a}, {b}) out of range for {} vertices",
            self.num_vertices
        );
        if a == b {
            return;
        }
        for (v, w) in [(a, b), (b, a)] {
            assert!(self.cursor[v] < self.offsets[v + 1], "more edges filled than counted at {v}");
            self.adj[self.cursor[v]] = w as u32;
            self.cursor[v] += 1;
        }
    }

    /// Sorts and deduplicates each adjacency list in place and returns the
    /// finished graph.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CsrBuilder::start_fill`] or if fewer
    /// edges were filled than counted.
    pub fn finish(mut self) -> Graph {
        assert!(self.filling, "finish before start_fill");
        for v in 0..self.num_vertices {
            assert_eq!(
                self.cursor[v],
                self.offsets[v + 1],
                "fewer edges filled than counted at {v}"
            );
        }
        // Sort each slice, then compact duplicates in place, reusing the
        // cursor vector (no longer needed) plus one slot for new offsets.
        let mut write = 0usize;
        let mut new_offsets = std::mem::take(&mut self.cursor);
        new_offsets.clear();
        new_offsets.push(0);
        for v in 0..self.num_vertices {
            let (start, end) = (self.offsets[v], self.offsets[v + 1]);
            self.adj[start..end].sort_unstable();
            let mut prev = None;
            for i in start..end {
                let x = self.adj[i];
                if prev != Some(x) {
                    self.adj[write] = x;
                    write += 1;
                    prev = Some(x);
                }
            }
            new_offsets.push(write);
        }
        self.adj.truncate(write);
        self.adj.shrink_to_fit();
        // Every undirected edge appears in exactly two adjacency lists.
        Graph { offsets: new_offsets, adj: self.adj, num_edges: write / 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_drops_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.degree(0), 4);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_graph() {
        let g = Graph::cycle(5);
        assert_eq!(g.num_edges(), 5);
        assert!(g.has_edge(4, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn builder_matches_from_edges_with_dups_and_loops() {
        let edges = [(0usize, 1usize), (1, 0), (2, 2), (3, 1), (1, 3), (4, 0)];
        let mut b = Graph::builder(5);
        for &(x, y) in &edges {
            b.count_edge(x, y);
        }
        b.start_fill();
        for &(x, y) in &edges {
            b.fill_edge(x, y);
        }
        let g = b.finish();
        assert_eq!(g, Graph::from_edges(5, edges));
        assert_eq!(g.num_edges(), 3);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    #[should_panic(expected = "more edges filled than counted")]
    fn builder_rejects_uncounted_fill() {
        let mut b = Graph::builder(3);
        b.count_edge(0, 1);
        b.start_fill();
        b.fill_edge(0, 1);
        b.fill_edge(1, 2);
    }

    #[test]
    #[should_panic(expected = "fewer edges filled than counted")]
    fn builder_rejects_missing_fill() {
        let mut b = Graph::builder(3);
        b.count_edge(0, 1);
        b.count_edge(1, 2);
        b.start_fill();
        b.fill_edge(0, 1);
        let _ = b.finish();
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::complete(4);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 6);
        assert_eq!(es[0], (0, 1));
        assert!(es.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn induced_subgraph_keeps_inner_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn relabel_and_automorphism() {
        let g = Graph::cycle(4);
        // Rotation is an automorphism of C4.
        let rot = vec![1, 2, 3, 0];
        assert!(g.is_automorphism(&rot));
        assert_eq!(g.relabel(&rot), g);
        // A path is not (after relabelling C4's structure changes check).
        let p = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(!p.is_automorphism(&rot));
    }

    #[test]
    fn complement_involution() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let c = g.complement();
        assert_eq!(g.num_edges() + c.num_edges(), 10);
        assert_eq!(c.complement(), g);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_ne!(g.has_edge(a, b), c.has_edge(a, b));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(2, [(0, 5)]);
    }
}

//! Undirected graphs, DIMACS `.col` I/O, coloring algorithms and the
//! benchmark instance suite used by the `sbgc` reproduction.
//!
//! The central type is [`Graph`], a compact sorted-adjacency undirected
//! graph. On top of it this crate provides:
//!
//! * [`dimacs`] — reading and writing the DIMACS `.col` graph format used by
//!   the paper's benchmark suite;
//! * [`algo`] — the classical coloring toolbox the paper leans on: the
//!   DSATUR heuristic (Brélaz 1979) for upper bounds, a greedy max-clique
//!   for lower bounds, degeneracy orderings, and coloring verification;
//! * [`gen`] — deterministic instance generators: exact constructions for
//!   the `queen` and `myciel` families and calibrated synthetic analogues
//!   for the DIMACS families that are data files (books, miles, games,
//!   DSJC, register allocation);
//! * [`suite`] — the 20-instance benchmark suite of Table 1, reconstructed
//!   instance by instance.
//!
//! # Example
//!
//! ```
//! use sbgc_graph::{Graph, algo};
//!
//! // A triangle plus a pendant vertex.
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 4);
//! let coloring = algo::dsatur(&g);
//! assert!(coloring.is_proper(&g));
//! assert_eq!(coloring.num_colors(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod dimacs;
pub mod gen;
mod graph;
pub mod suite;

pub use algo::Coloring;
pub use graph::{CsrBuilder, Graph};

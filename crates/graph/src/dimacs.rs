//! DIMACS `.col` graph format reading and writing.
//!
//! This is the format of the DIMACS graph coloring benchmark suite the paper
//! evaluates on: a `p edge <n> <m>` problem line followed by `e <a> <b>`
//! edge lines with 1-based vertex numbers; `c` lines are comments.

use crate::{CsrBuilder, Graph};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_col`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseColError {
    line: usize,
    message: String,
}

impl ParseColError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseColError { line, message: message.into() }
    }

    /// 1-based line number of the offending input line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseColError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMACS .col parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseColError {}

/// Largest vertex count a `p edge` line may declare. The adjacency
/// structure is sized from the header before any edge is read, so an
/// absurd declared count (`p edge 99999999999 0`) must be a parse error
/// rather than an out-of-memory abort. 10⁸ is far above every DIMACS
/// coloring benchmark.
pub const MAX_DECLARED_VERTICES: usize = 100_000_000;

/// Parses a DIMACS `.col` document.
///
/// The parse is *streaming*: two passes over the text — one to validate
/// every line and count vertex degrees, one to fill the adjacency
/// structure ([`crate::CsrBuilder`]) — so no intermediate edge list is
/// ever materialized. Peak transient memory is `O(n)` bookkeeping on top
/// of the returned graph, which matters for the larger DIMACS coloring
/// benchmarks (millions of edge lines).
///
/// # Errors
///
/// Returns [`ParseColError`] on missing/duplicate problem lines, malformed
/// edge lines, or out-of-range vertex numbers.
///
/// # Example
///
/// ```
/// let g = sbgc_graph::dimacs::parse_col("c tiny\np edge 3 2\ne 1 2\ne 2 3\n")?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), sbgc_graph::dimacs::ParseColError>(())
/// ```
pub fn parse_col(text: &str) -> Result<Graph, ParseColError> {
    // Pass 1: validate everything and count degrees.
    let mut builder: Option<CsrBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(ParseColError::new(lineno, "duplicate problem line"));
                }
                let fmt_name = tok.next().unwrap_or("");
                if fmt_name != "edge" && fmt_name != "col" {
                    return Err(ParseColError::new(
                        lineno,
                        format!("unsupported format `{fmt_name}`, expected `edge`"),
                    ));
                }
                let n: usize = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseColError::new(lineno, "bad vertex count"))?;
                if n > MAX_DECLARED_VERTICES {
                    return Err(ParseColError::new(
                        lineno,
                        format!("declared vertex count {n} exceeds {MAX_DECLARED_VERTICES}"),
                    ));
                }
                // Edge count on the p line is advisory; parse but don't trust.
                let _m: Option<usize> = tok.next().and_then(|t| t.parse().ok());
                builder = Some(Graph::builder(n));
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ParseColError::new(lineno, "edge before problem line"))?;
                let (x, y) = parse_edge_line(&mut tok, lineno, b.num_vertices())?;
                b.count_edge(x, y);
            }
            Some(other) => {
                return Err(ParseColError::new(lineno, format!("unknown line type `{other}`")));
            }
            None => {}
        }
    }
    let mut builder = builder.ok_or_else(|| ParseColError::new(0, "missing problem line"))?;
    builder.start_fill();
    // Pass 2: fill adjacency. Pass 1 already validated every line, so only
    // `e` lines need attention (the re-validation below is for safety and
    // cannot fire).
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let mut tok = line.split_whitespace();
        if tok.next() == Some("e") {
            let (x, y) = parse_edge_line(&mut tok, idx + 1, builder.num_vertices())?;
            builder.fill_edge(x, y);
        }
    }
    Ok(builder.finish())
}

/// Parses the two 1-based endpoints of an `e` line (the line-type token
/// already consumed), returning them 0-based.
fn parse_edge_line<'a>(
    tok: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    n: usize,
) -> Result<(usize, usize), ParseColError> {
    let a: usize = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseColError::new(lineno, "bad edge endpoint"))?;
    let b: usize = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseColError::new(lineno, "bad edge endpoint"))?;
    if a == 0 || b == 0 || a > n || b > n {
        return Err(ParseColError::new(lineno, format!("edge ({a}, {b}) out of range 1..={n}")));
    }
    Ok((a - 1, b - 1))
}

/// Serializes a graph in DIMACS `.col` format, with an optional comment.
///
/// # Example
///
/// ```
/// use sbgc_graph::{Graph, dimacs};
/// let g = Graph::from_edges(2, [(0, 1)]);
/// let text = dimacs::write_col(&g, Some("pair"));
/// assert!(text.contains("p edge 2 1"));
/// assert!(text.contains("e 1 2"));
/// ```
pub fn write_col(graph: &Graph, comment: Option<&str>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if let Some(c) = comment {
        for line in c.lines() {
            let _ = writeln!(out, "c {line}");
        }
    }
    let _ = writeln!(out, "p edge {} {}", graph.num_vertices(), graph.num_edges());
    for (a, b) in graph.edges() {
        let _ = writeln!(out, "e {} {}", a + 1, b + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let text = write_col(&g, Some("test graph\nsecond line"));
        let h = parse_col(&text).expect("roundtrip");
        assert_eq!(g, h);
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let g = parse_col("c hello\n\np edge 2 1\nc mid\ne 1 2\n").expect("parse");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn error_on_edge_before_problem() {
        let err = parse_col("e 1 2\n").unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn error_on_out_of_range() {
        let err = parse_col("p edge 2 1\ne 1 3\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn error_on_unknown_line() {
        assert!(parse_col("p edge 1 0\nq zzz\n").is_err());
    }

    #[test]
    fn error_on_missing_problem_line() {
        assert!(parse_col("c only comments\n").is_err());
    }

    #[test]
    fn error_on_absurd_vertex_count() {
        // A hostile header must not size a multi-terabyte adjacency list.
        let err = parse_col("p edge 99999999999 0\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("exceeds"));
    }
}

//! College-football schedule graph — analogue of `games120`.

use super::{adjust_to_edge_count, checked_graph, seeded_rng};
use crate::Graph;
use rand::Rng;

/// Builds a synthetic analogue of the DIMACS `games120` graph (teams are
/// vertices; an edge joins teams that played each other in the 1990s
/// college-football season): `groups` conferences of `group_size` teams
/// each play a near-round-robin within the conference (a clique minus one
/// unplayed pairing, so each conference pins the clique number at
/// `group_size − 1` — games120 has χ = 9 at conference size 10), plus
/// random inter-conference games, trimmed/padded to exactly `m` edges.
/// The near-cliques are protected from trimming.
///
/// # Panics
///
/// Panics if `groups * group_size != n` or `m` is infeasible.
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::games_graph;
/// let g = games_graph(120, 638, 12, 10, 0x6A3E); // games120-like
/// assert_eq!((g.num_vertices(), g.num_edges()), (120, 638));
/// ```
pub fn games_graph(n: usize, m: usize, groups: usize, group_size: usize, seed: u64) -> Graph {
    assert_eq!(groups * group_size, n, "groups × group_size must equal n");
    let mut rng = seeded_rng(seed);
    let mut edges = Vec::new();
    for g in 0..groups {
        let base = g * group_size;
        for a in 0..group_size {
            for b in a + 1..group_size {
                // Round robin minus the single unplayed pairing (0, 1).
                if a == 0 && b == 1 {
                    continue;
                }
                edges.push((base + a, base + b));
            }
        }
    }
    let protected = edges.clone();
    // Cross-conference games until we overshoot a little, then adjust.
    let conference_edges = edges.len();
    while edges.len() < m.max(conference_edges) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && a / group_size != b / group_size {
            edges.push((a.min(b), a.max(b)));
        }
    }
    let edges = adjust_to_edge_count(n, edges, &protected, m, &mut rng);
    checked_graph(n, edges, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dsatur;

    #[test]
    fn matches_requested_sizes() {
        let g = games_graph(120, 638, 12, 10, 1);
        assert_eq!((g.num_vertices(), g.num_edges()), (120, 638));
    }

    #[test]
    fn deterministic() {
        assert_eq!(games_graph(120, 638, 12, 10, 4), games_graph(120, 638, 12, 10, 4));
    }

    #[test]
    fn chromatic_number_near_group_structure() {
        // games120 has χ = 9; each conference is a 10-clique minus one
        // edge (clique number 9), so χ is pinned at ≥ 9 and DSATUR should
        // land very close.
        let g = games_graph(120, 638, 12, 10, 0x6A3E);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert!((9..=11).contains(&c.num_colors()), "χ̂ = {}", c.num_colors());
        assert!(crate::algo::greedy_clique(&g).len() >= 9);
    }

    #[test]
    #[should_panic(expected = "must equal n")]
    fn rejects_bad_partition() {
        let _ = games_graph(120, 638, 7, 10, 1);
    }
}

//! Deterministic benchmark-instance generators.
//!
//! Two kinds of generator live here:
//!
//! * **Exact constructions** for families that are defined mathematically:
//!   [`queens`] attack graphs and [`mycielski`] graphs. These reproduce the
//!   paper's `queen*` and `myciel*` instances vertex-for-vertex.
//! * **Calibrated synthetic analogues** for the DIMACS families that are
//!   data files we cannot redistribute: [`book_graph`] (anna, david, huck,
//!   jean), [`geometric_graph`] (miles250), [`games_graph`] (games120),
//!   [`gnm`] (DSJC random graphs) and [`register_allocation_graph`]
//!   (mulsol, zeroin). Each matches the original's vertex count, edge count
//!   and family character; see `DESIGN.md` for the substitution rationale.
//!
//! All generators are deterministic: the same parameters and seed always
//! produce the same graph.

mod book;
mod classic;
mod games;
mod geometric;
mod mycielski;
mod queens;
mod random;
mod register;

pub use book::book_graph;
pub use classic::{complete_multipartite, crown};
pub use games::games_graph;
pub use geometric::geometric_graph;
pub use mycielski::{mycielski, mycielski_step};
pub use queens::queens;
pub use random::{gnm, gnp};
pub use register::register_allocation_graph;

use crate::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Deterministically adjusts an edge set to contain exactly `target` edges,
/// never touching `protected` edges (e.g. an embedded clique that pins the
/// chromatic number).
///
/// Removal deletes uniformly random unprotected edges; padding inserts
/// uniformly random absent edges. Used by the synthetic generators to match
/// the published edge counts exactly.
///
/// # Panics
///
/// Panics if the target is infeasible (fewer than `protected.len()` or more
/// than `n*(n-1)/2`).
pub(crate) fn adjust_to_edge_count(
    n: usize,
    edges: impl IntoIterator<Item = (usize, usize)>,
    protected: &[(usize, usize)],
    target: usize,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let norm = |(a, b): (usize, usize)| if a < b { (a, b) } else { (b, a) };
    let mut set: BTreeSet<(usize, usize)> = edges.into_iter().map(norm).collect();
    set.retain(|&(a, b)| a != b);
    let prot: BTreeSet<(usize, usize)> = protected.iter().copied().map(norm).collect();
    set.extend(prot.iter().copied());
    let max_edges = n * (n - 1) / 2;
    assert!(
        target >= prot.len() && target <= max_edges,
        "edge target {target} infeasible for n={n} with {} protected edges",
        prot.len()
    );
    // Trim.
    if set.len() > target {
        let mut removable: Vec<(usize, usize)> =
            set.iter().copied().filter(|e| !prot.contains(e)).collect();
        removable.shuffle(rng);
        let surplus = set.len() - target;
        assert!(removable.len() >= surplus, "cannot trim to {target}: too many protected edges");
        for e in removable.into_iter().take(surplus) {
            set.remove(&e);
        }
    }
    // Pad.
    while set.len() < target {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            set.insert(norm((a, b)));
        }
    }
    set.into_iter().collect()
}

/// Convenience: a seeded RNG shared by the generators.
pub(crate) fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Builds a graph from edges and asserts the exact vertex/edge counts, a
/// guard every calibrated generator runs before returning.
pub(crate) fn checked_graph(n: usize, edges: Vec<(usize, usize)>, target_m: usize) -> Graph {
    let g = Graph::from_edges(n, edges);
    assert_eq!(g.num_vertices(), n, "generator produced wrong vertex count");
    assert_eq!(g.num_edges(), target_m, "generator produced wrong edge count");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjust_trims_and_pads_exactly() {
        let mut rng = seeded_rng(1);
        let base: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (2, 3), (3, 4)];
        let trimmed = adjust_to_edge_count(5, base.clone(), &[(0, 1)], 2, &mut rng);
        assert_eq!(trimmed.len(), 2);
        assert!(trimmed.contains(&(0, 1)));
        let padded = adjust_to_edge_count(5, base, &[], 8, &mut rng);
        assert_eq!(padded.len(), 8);
    }

    #[test]
    fn adjust_is_deterministic() {
        let run = || {
            let mut rng = seeded_rng(42);
            adjust_to_edge_count(10, vec![(0, 1)], &[], 20, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn adjust_rejects_impossible_target() {
        let mut rng = seeded_rng(1);
        let _ = adjust_to_edge_count(3, vec![], &[], 10, &mut rng);
    }
}

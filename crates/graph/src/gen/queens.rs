//! Queen attack graphs — exact construction of the `queen*` instances.

use crate::Graph;

/// Builds the queen graph on an `rows × cols` chessboard: one vertex per
/// square, an edge between two squares iff a queen on one attacks the other
/// (same row, column, or diagonal).
///
/// A proper `K`-coloring places `K` non-attacking "armies"; the DIMACS
/// `queenR_C` instances (used in the paper's Appendix, Table 5) are exactly
/// these graphs. Note the DIMACS files list every edge in both directions,
/// so the paper's Table 1 edge counts are twice
/// [`Graph::num_edges`] here.
///
/// Vertex numbering is row-major: square `(r, c)` is vertex `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::queens;
/// let g = queens(5, 5);
/// assert_eq!(g.num_vertices(), 25);
/// assert_eq!(g.num_edges(), 160); // 320 directed edge lines in DIMACS
/// ```
pub fn queens(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "board dimensions must be positive");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = idx(r, c);
            // Same row, later column.
            for c2 in c + 1..cols {
                edges.push((v, idx(r, c2)));
            }
            // Same column, later row.
            for r2 in r + 1..rows {
                edges.push((v, idx(r2, c)));
            }
            // Diagonals, later row.
            for d in 1..rows - r {
                let r2 = r + d;
                if c + d < cols {
                    edges.push((v, idx(r2, c + d)));
                }
                if c >= d {
                    edges.push((v, idx(r2, c - d)));
                }
            }
        }
    }
    Graph::from_edges(rows * cols, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Edge counts for the four instances used in the paper's Appendix.
    /// The paper's Table 1 lists the doubled DIMACS edge-line counts
    /// (320, 580, 952, 2736).
    #[test]
    fn paper_instances_have_expected_sizes() {
        for (r, c, m2) in [(5, 5, 320), (6, 6, 580), (7, 7, 952), (8, 12, 2736)] {
            let g = queens(r, c);
            assert_eq!(g.num_vertices(), r * c, "queen{r}_{c} vertices");
            assert_eq!(2 * g.num_edges(), m2, "queen{r}_{c} edge lines");
        }
    }

    #[test]
    fn rows_and_columns_are_cliques() {
        let g = queens(4, 4);
        // Row 0 is a clique.
        for a in 0..4 {
            for b in a + 1..4 {
                assert!(g.has_edge(a, b));
            }
        }
        // Column 0 is a clique.
        for a in 0..4 {
            for b in a + 1..4 {
                assert!(g.has_edge(4 * a, 4 * b));
            }
        }
    }

    #[test]
    fn diagonal_attacks_present_and_knight_moves_absent() {
        let g = queens(5, 5);
        let idx = |r: usize, c: usize| r * 5 + c;
        assert!(g.has_edge(idx(0, 0), idx(3, 3)));
        assert!(g.has_edge(idx(0, 4), idx(4, 0)));
        assert!(!g.has_edge(idx(0, 0), idx(1, 2))); // knight move
        assert!(!g.has_edge(idx(0, 0), idx(2, 1)));
    }

    #[test]
    fn queen_graph_is_vertex_transitive_under_board_symmetry() {
        // The 180-degree rotation of the board is an automorphism.
        let g = queens(5, 5);
        let perm: Vec<usize> = (0..25).map(|v| 24 - v).collect();
        assert!(g.is_automorphism(&perm));
    }

    #[test]
    fn one_by_one_board() {
        let g = queens(1, 1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}

//! Register-allocation interference graphs — analogues of `mulsol`/`zeroin`.

use super::{adjust_to_edge_count, checked_graph, seeded_rng};
use crate::Graph;
use rand::Rng;

/// Builds a synthetic analogue of a DIMACS *register allocation* graph
/// (`mulsol.i.*`, `zeroin.i.*`: interference graphs of real programs):
/// `n` vertices, exactly `m` edges, containing
///
/// 1. a protected clique of size `clique` — mirroring the large simultaneous
///    live set that gives the real instances chromatic numbers of 30–49
///    (> 20, which is what makes them UNSAT at the paper's K = 20), and
/// 2. an *interval graph* body: random live ranges `[start, end)` over a
///    virtual program of `4n` points, with overlap edges — the classic
///    structure of interference graphs of straight-line code.
///
/// # Panics
///
/// Panics if `clique > n` or `m` is infeasible for the clique size.
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::register_allocation_graph;
/// let g = register_allocation_graph(188, 3885, 31, 0x3017); // mulsol.i.2-like
/// assert_eq!((g.num_vertices(), g.num_edges()), (188, 3885));
/// ```
pub fn register_allocation_graph(n: usize, m: usize, clique: usize, seed: u64) -> Graph {
    assert!(clique <= n, "clique larger than the vertex count");
    let mut rng = seeded_rng(seed);
    let program_len = 4 * n;

    // The clique members are live across one shared program point.
    let hot_point = program_len / 2;
    let mut protected = Vec::new();
    for a in 0..clique {
        for b in a + 1..clique {
            protected.push((a, b));
        }
    }
    assert!(m >= protected.len(), "m smaller than the embedded clique");

    // Live ranges: clique vertices span the hot point; the rest are short
    // random ranges. Average range length is tuned towards the edge target.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(n);
    for i in 0..clique {
        let start = hot_point.saturating_sub(1 + rng.gen_range(0..program_len / 4));
        let end = hot_point + 1 + rng.gen_range(0..program_len / 4);
        let _ = i;
        ranges.push((start, end.min(program_len)));
    }
    // Rough calibration: with L = mean range length, expected overlap edges
    // scale like n^2 * L / program_len; solve for L against the remaining
    // edge target.
    let remaining = m.saturating_sub(protected.len());
    let mean_len =
        ((2.0 * remaining as f64 * program_len as f64) / ((n * n) as f64)).max(2.0) as usize;
    for _ in clique..n {
        let len = 1 + rng.gen_range(0..mean_len.max(2) * 2);
        let start = rng.gen_range(0..program_len);
        ranges.push((start, (start + len).min(program_len)));
    }
    let mut edges = protected.clone();
    for a in 0..n {
        for b in a + 1..n {
            if ranges[a].0 < ranges[b].1 && ranges[b].0 < ranges[a].1 {
                edges.push((a, b));
            }
        }
    }
    let edges = adjust_to_edge_count(n, edges, &protected, m, &mut rng);
    checked_graph(n, edges, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::greedy_clique;

    #[test]
    fn matches_requested_sizes() {
        for (n, m, q, seed) in [(188, 3885, 31, 1u64), (211, 4100, 49, 2), (206, 3540, 30, 3)] {
            let g = register_allocation_graph(n, m, q, seed);
            assert_eq!((g.num_vertices(), g.num_edges()), (n, m));
        }
    }

    #[test]
    fn clique_pins_chromatic_number_above_20() {
        let g = register_allocation_graph(188, 3885, 31, 0x3017);
        for a in 0..31 {
            for b in a + 1..31 {
                assert!(g.has_edge(a, b));
            }
        }
        // χ ≥ ω ≥ 31 > 20: the instance is UNSAT at the paper's K = 20.
        assert!(greedy_clique(&g).len() >= 31);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            register_allocation_graph(100, 800, 25, 9),
            register_allocation_graph(100, 800, 25, 9)
        );
    }
}

//! Random geometric graphs — analogue of the `miles*` mileage instances.

use super::{adjust_to_edge_count, checked_graph, seeded_rng};
use crate::Graph;
use rand::Rng;

/// Builds a synthetic analogue of a DIMACS *mileage graph* (`miles250`
/// etc., where cities are adjacent when within a road-distance threshold):
/// `n` points placed uniformly in the unit square, edges between pairs
/// closer than a radius calibrated by bisection to produce approximately
/// `m` edges, then trimmed/padded to exactly `m`.
///
/// Geometric adjacency reproduces the defining property of the mileage
/// family: edges are transitive-ish and cluster geographically, keeping the
/// chromatic number small relative to size, like the original `miles250`
/// (χ = 8 at 128 vertices).
///
/// # Panics
///
/// Panics if `m > n*(n-1)/2`.
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::geometric_graph;
/// let g = geometric_graph(128, 387, 0x2501); // miles250-like
/// assert_eq!((g.num_vertices(), g.num_edges()), (128, 387));
/// ```
pub fn geometric_graph(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = seeded_rng(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let edges_at = |r: f64| -> Vec<(usize, usize)> {
        let r2 = r * r;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                let dx = points[a].0 - points[b].0;
                let dy = points[a].1 - points[b].1;
                if dx * dx + dy * dy <= r2 {
                    edges.push((a, b));
                }
            }
        }
        edges
    };
    // Bisect the radius to land near m edges.
    let (mut lo, mut hi) = (0.0f64, std::f64::consts::SQRT_2);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if edges_at(mid).len() < m {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let edges = adjust_to_edge_count(n, edges_at(hi), &[], m, &mut rng);
    checked_graph(n, edges, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dsatur;

    #[test]
    fn matches_requested_sizes() {
        let g = geometric_graph(128, 387, 1);
        assert_eq!((g.num_vertices(), g.num_edges()), (128, 387));
    }

    #[test]
    fn deterministic() {
        assert_eq!(geometric_graph(64, 100, 5), geometric_graph(64, 100, 5));
    }

    #[test]
    fn chromatic_number_stays_small() {
        // miles250 has χ = 8 at n = 128, m = 387; a geometric analogue
        // should be colorable with a comparable handful of colors.
        let g = geometric_graph(128, 387, 0x2501);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert!(c.num_colors() <= 12, "used {}", c.num_colors());
    }

    #[test]
    fn zero_edges() {
        let g = geometric_graph(10, 0, 3);
        assert_eq!(g.num_edges(), 0);
    }
}

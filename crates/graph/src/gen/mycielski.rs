//! Mycielski graphs — exact construction of the `myciel*` instances.

use crate::Graph;

/// Builds the `myciel<k>` instance: the Mycielski transformation
/// (Mycielski 1955) applied repeatedly starting from a single edge `K2`.
///
/// `myciel2 = C5`... more precisely, the DIMACS numbering starts from
/// `K2` (2 vertices, χ = 2); each application of the transformation adds
/// one to the chromatic number while keeping the graph triangle-free:
///
/// * `mycielski(3)` — 11 vertices, 20 edges, χ = 4 (the Grötzsch graph)
/// * `mycielski(4)` — 23 vertices, 71 edges, χ = 5
/// * `mycielski(5)` — 47 vertices, 236 edges, χ = 6
///
/// matching the paper's Table 1 exactly.
///
/// # Panics
///
/// Panics if `k < 2`.
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::mycielski;
/// let g = mycielski(3);
/// assert_eq!((g.num_vertices(), g.num_edges()), (11, 20));
/// ```
pub fn mycielski(k: usize) -> Graph {
    assert!(k >= 2, "myciel index starts at 2 (a single edge)");
    let mut g = Graph::from_edges(2, [(0, 1)]);
    for _ in 1..k {
        g = mycielski_step(&g);
    }
    g
}

/// One application of the Mycielski transformation: given `G` on vertices
/// `0..n`, produce `M(G)` on `2n + 1` vertices — a shadow `u_i = n + i` of
/// each vertex connected to the neighbors of `v_i`, plus an apex `w = 2n`
/// adjacent to every shadow. `χ(M(G)) = χ(G) + 1` and `M(G)` is
/// triangle-free whenever `G` is.
pub fn mycielski_step(g: &Graph) -> Graph {
    let n = g.num_vertices();
    let w = 2 * n;
    let mut edges: Vec<(usize, usize)> = g.edges().collect();
    for (a, b) in g.edges() {
        edges.push((n + a, b));
        edges.push((a, n + b));
    }
    for i in 0..n {
        edges.push((n + i, w));
    }
    Graph::from_edges(2 * n + 1, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{dsatur, greedy_clique};

    #[test]
    fn paper_instances_have_expected_sizes() {
        for (k, v, m) in [(3, 11, 20), (4, 23, 71), (5, 47, 236)] {
            let g = mycielski(k);
            assert_eq!((g.num_vertices(), g.num_edges()), (v, m), "myciel{k}");
        }
    }

    #[test]
    fn myciel2_is_c5() {
        let g = mycielski(2);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5);
        assert!((0..5).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn triangle_free() {
        let g = mycielski(4);
        // Clique number of a triangle-free graph with an edge is 2.
        assert_eq!(greedy_clique(&g).len(), 2);
        for (a, b) in g.edges() {
            for &c in g.neighbors(a) {
                if c as usize != b {
                    assert!(!g.has_edge(c as usize, b), "triangle {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn chromatic_number_grows() {
        // DSATUR happens to color Mycielski graphs optimally for small k.
        assert_eq!(dsatur(&mycielski(3)).num_colors(), 4);
        assert_eq!(dsatur(&mycielski(4)).num_colors(), 5);
    }
}

//! Classic parameterized families from the coloring literature, useful for
//! tests and ablations beyond the DIMACS suite.

use crate::Graph;

/// The complete multipartite (Turán-type) graph with the given part sizes:
/// edges between every pair of vertices in *different* parts. Its chromatic
/// number is the number of non-empty parts.
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::complete_multipartite;
/// let g = complete_multipartite(&[2, 2, 2]); // K_{2,2,2}, the octahedron
/// assert_eq!(g.num_vertices(), 6);
/// assert_eq!(g.num_edges(), 12);
/// ```
pub fn complete_multipartite(part_sizes: &[usize]) -> Graph {
    let n: usize = part_sizes.iter().sum();
    let mut part_of = Vec::with_capacity(n);
    for (p, &size) in part_sizes.iter().enumerate() {
        part_of.extend(std::iter::repeat_n(p, size));
    }
    let edges = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|&(a, b)| part_of[a] != part_of[b]);
    Graph::from_edges(n, edges)
}

/// The crown graph `S_n^0`: the complete bipartite graph `K_{n,n}` minus a
/// perfect matching — bipartite (χ = 2) but DSATUR-hostile, and rich in
/// automorphisms (useful for symmetry tests).
///
/// Vertex `i` on one side pairs with vertex `n + i` on the other; the
/// missing matching is `(i, n + i)`.
///
/// # Panics
///
/// Panics if `n < 2` (smaller crowns are edgeless or empty).
pub fn crown(n: usize) -> Graph {
    assert!(n >= 2, "crown graphs need n >= 2");
    let edges = (0..n).flat_map(|a| (0..n).filter(move |&b| b != a).map(move |b| (a, n + b)));
    Graph::from_edges(2 * n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{dsatur, greedy_clique};

    #[test]
    fn multipartite_sizes_and_clique() {
        let g = complete_multipartite(&[3, 2, 1]);
        assert_eq!(g.num_vertices(), 6);
        // Edges: 3*2 + 3*1 + 2*1 = 11.
        assert_eq!(g.num_edges(), 11);
        // One vertex per part forms a triangle.
        assert_eq!(greedy_clique(&g).len(), 3);
        // Vertices within a part are non-adjacent.
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn multipartite_chromatic_number_is_part_count() {
        let g = complete_multipartite(&[4, 3, 2, 1]);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 4);
    }

    #[test]
    fn multipartite_empty_parts_ignored() {
        let g = complete_multipartite(&[2, 0, 2]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn crown_structure() {
        let g = crown(3);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6); // 3*3 - 3 matching edges
        assert!(!g.has_edge(0, 3), "matched pair must not be adjacent");
        assert!(g.has_edge(0, 4));
        // Bipartite: 2-colorable.
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn crown_has_rich_automorphisms() {
        // Swapping the two sides and permuting pairs are automorphisms;
        // spot-check the side swap.
        let g = crown(4);
        let swap: Vec<usize> = (0..8).map(|v| (v + 4) % 8).collect();
        assert!(g.is_automorphism(&swap));
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn tiny_crown_rejected() {
        let _ = crown(1);
    }
}

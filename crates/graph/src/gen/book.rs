//! Book (character-interaction) graph analogues — anna, david, huck, jean.

use super::{adjust_to_edge_count, checked_graph, seeded_rng};
use crate::Graph;
use rand::distributions::WeightedIndex;
use rand::prelude::Distribution;

/// Builds a synthetic analogue of a DIMACS *book graph* (edges represent
/// character co-occurrence in a novel): `n` vertices, exactly `m` edges,
/// an embedded clique of `core` "protagonists" (which pins the clique
/// number, the known chromatic number of these instances), and a
/// heavy-tailed degree distribution produced by preferential attachment.
///
/// The real anna/david/huck/jean files cannot be redistributed; this
/// generator matches their size and their structural signature (a small
/// dense core of protagonists plus many low-degree minor characters).
///
/// # Panics
///
/// Panics if the parameters are infeasible (`core > n`, or `m` smaller than
/// the core clique / larger than the complete graph).
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::book_graph;
/// let g = book_graph(138, 493, 11, 0xA11A); // anna-like
/// assert_eq!((g.num_vertices(), g.num_edges()), (138, 493));
/// ```
pub fn book_graph(n: usize, m: usize, core: usize, seed: u64) -> Graph {
    assert!(core <= n, "core larger than the vertex count");
    let mut rng = seeded_rng(seed);
    // Protagonist core: a clique on vertices 0..core.
    let mut protected = Vec::new();
    for a in 0..core {
        for b in a + 1..core {
            protected.push((a, b));
        }
    }
    assert!(m >= protected.len(), "m smaller than the protagonist clique");
    let mut edges = protected.clone();
    // Preferential attachment: every later character interacts with a few
    // existing ones, chosen with probability proportional to degree + 1.
    let mut degree = vec![0usize; n];
    for &(a, b) in &protected {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mean_extra = (m.saturating_sub(protected.len())) as f64 / (n - core).max(1) as f64;
    for v in core..n {
        let attach = 1 + (mean_extra.round() as usize).min(v);
        let weights: Vec<f64> = (0..v).map(|u| degree[u] as f64 + 1.0).collect();
        let dist = WeightedIndex::new(&weights).expect("non-empty weights");
        for _ in 0..attach {
            let u = dist.sample(&mut rng);
            edges.push((u, v));
            degree[u] += 1;
            degree[v] += 1;
        }
    }
    let edges = adjust_to_edge_count(n, edges, &protected, m, &mut rng);
    checked_graph(n, edges, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::greedy_clique;

    #[test]
    fn matches_requested_sizes() {
        for (n, m, core, seed) in
            [(138, 493, 11, 1u64), (87, 406, 11, 2), (74, 301, 11, 3), (80, 254, 10, 4)]
        {
            let g = book_graph(n, m, core, seed);
            assert_eq!((g.num_vertices(), g.num_edges()), (n, m));
        }
    }

    #[test]
    fn clique_core_is_preserved() {
        let g = book_graph(74, 301, 11, 99);
        for a in 0..11 {
            for b in a + 1..11 {
                assert!(g.has_edge(a, b), "core edge ({a},{b}) missing");
            }
        }
        assert!(greedy_clique(&g).len() >= 11);
    }

    #[test]
    fn deterministic() {
        assert_eq!(book_graph(80, 254, 10, 7), book_graph(80, 254, 10, 7));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = book_graph(138, 493, 11, 11);
        let max = g.max_degree();
        let mean = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max as f64 > 2.5 * mean, "max degree {max} vs mean {mean}");
    }
}

//! Erdős–Rényi random graphs — analogues of the `DSJC` instances.

use super::seeded_rng;
use crate::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Builds a uniform random graph with exactly `n` vertices and `m` edges
/// (the G(n, m) model), deterministically from `seed`.
///
/// The paper's `DSJC125.1` / `DSJC125.9` random benchmarks are G(n, p)
/// graphs with p = 0.1 / 0.9; we reproduce them as G(n, m) with the
/// published edge counts so sizes match exactly.
///
/// # Panics
///
/// Panics if `m > n*(n-1)/2`.
///
/// # Example
///
/// ```
/// use sbgc_graph::gen::gnm;
/// let g = gnm(125, 736, 7);
/// assert_eq!((g.num_vertices(), g.num_edges()), (125, 736));
/// ```
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "m={m} exceeds the {max_edges} possible edges");
    let mut rng = seeded_rng(seed);
    // For dense targets, sample by shuffling the full edge list; for sparse
    // targets, rejection-sample.
    if m * 3 >= max_edges {
        let mut all: Vec<(usize, usize)> =
            (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).collect();
        all.shuffle(&mut rng);
        all.truncate(m);
        Graph::from_edges(n, all)
    } else {
        let mut set = std::collections::BTreeSet::new();
        while set.len() < m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                set.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
        Graph::from_edges(n, set)
    }
}

/// Builds a G(n, p) Bernoulli random graph deterministically from `seed`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = seeded_rng(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_counts_sparse_and_dense() {
        let sparse = gnm(50, 30, 1);
        assert_eq!((sparse.num_vertices(), sparse.num_edges()), (50, 30));
        let dense = gnm(20, 170, 2); // max 190
        assert_eq!(dense.num_edges(), 170);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm(30, 100, 9), gnm(30, 100, 9));
        assert_ne!(gnm(30, 100, 9), gnm(30, 100, 10));
    }

    #[test]
    fn gnm_complete_when_m_max() {
        let g = gnm(6, 15, 3);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.degree(0), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_too_many_edges() {
        let _ = gnm(4, 7, 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_density_roughly_matches_p() {
        let g = gnp(100, 0.3, 5);
        let d = g.density();
        assert!((0.25..0.35).contains(&d), "density {d}");
    }
}

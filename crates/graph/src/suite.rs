//! The 20-instance DIMACS benchmark suite of the paper's Table 1,
//! reconstructed instance by instance.
//!
//! `queen*` and `myciel*` are exact mathematical constructions; the
//! remaining families are calibrated synthetic analogues (see the module
//! docs of [`crate::gen`] and `DESIGN.md`). Every instance matches the
//! original's vertex count and simple-edge count. Note that several of the
//! original `.col` files (and hence the paper's Table 1) list each edge in
//! both directions; [`InstanceMeta::paper_edge_lines`] records the Table 1
//! figure, [`InstanceMeta::edges`] the simple count our graphs have.

use crate::gen;
use crate::Graph;
use std::fmt;

/// The family an instance belongs to (Section 4.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// Random graphs (`DSJC*`).
    Random,
    /// Book character-interaction graphs (anna, david, huck, jean).
    Book,
    /// Mileage graphs (`miles*`).
    Mileage,
    /// College football schedule graphs (`games*`).
    Games,
    /// n-queens attack graphs (`queen*`).
    Queens,
    /// Register-allocation interference graphs (`mulsol*`, `zeroin*`).
    RegisterAllocation,
    /// Mycielski triangle-free graphs (`myciel*`).
    Mycielski,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Random => "random",
            Family::Book => "book",
            Family::Mileage => "mileage",
            Family::Games => "games",
            Family::Queens => "queens",
            Family::RegisterAllocation => "register-allocation",
            Family::Mycielski => "mycielski",
        };
        f.write_str(s)
    }
}

/// Static metadata for one Table 1 instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InstanceMeta {
    /// Instance name as it appears in the paper (e.g. `"queen6_6"`).
    pub name: &'static str,
    /// Benchmark family.
    pub family: Family,
    /// Number of vertices (Table 1 `#V`).
    pub vertices: usize,
    /// Number of simple undirected edges in our reconstruction.
    pub edges: usize,
    /// The `#E` figure printed in Table 1 (edge *lines* in the original
    /// file; twice [`InstanceMeta::edges`] for families whose files list
    /// both directions).
    pub paper_edge_lines: usize,
    /// Chromatic number reported in Table 1; `None` for instances marked
    /// `> 20`.
    pub paper_chromatic: Option<usize>,
    /// `true` when our reconstruction is the exact mathematical object
    /// (queens, Mycielski), `false` for calibrated synthetic analogues.
    pub exact_construction: bool,
}

/// A built suite instance: metadata plus the graph itself.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Static metadata (Table 1 row).
    pub meta: InstanceMeta,
    /// The reconstructed graph.
    pub graph: Graph,
}

/// Metadata for the full 20-instance suite, in Table 1 order.
pub const SUITE: [InstanceMeta; 20] = [
    InstanceMeta {
        name: "anna",
        family: Family::Book,
        vertices: 138,
        edges: 493,
        paper_edge_lines: 986,
        paper_chromatic: Some(11),
        exact_construction: false,
    },
    InstanceMeta {
        name: "david",
        family: Family::Book,
        vertices: 87,
        edges: 406,
        paper_edge_lines: 812,
        paper_chromatic: Some(11),
        exact_construction: false,
    },
    InstanceMeta {
        name: "DSJC125.1",
        family: Family::Random,
        vertices: 125,
        edges: 736,
        paper_edge_lines: 1472,
        paper_chromatic: Some(5),
        exact_construction: false,
    },
    InstanceMeta {
        name: "DSJC125.9",
        family: Family::Random,
        vertices: 125,
        edges: 6961,
        paper_edge_lines: 13922,
        paper_chromatic: None,
        exact_construction: false,
    },
    InstanceMeta {
        name: "games120",
        family: Family::Games,
        vertices: 120,
        edges: 638,
        paper_edge_lines: 1276,
        paper_chromatic: Some(9),
        exact_construction: false,
    },
    InstanceMeta {
        name: "huck",
        family: Family::Book,
        vertices: 74,
        edges: 301,
        paper_edge_lines: 602,
        paper_chromatic: Some(11),
        exact_construction: false,
    },
    InstanceMeta {
        name: "jean",
        family: Family::Book,
        vertices: 80,
        edges: 254,
        paper_edge_lines: 508,
        paper_chromatic: Some(10),
        exact_construction: false,
    },
    InstanceMeta {
        name: "miles250",
        family: Family::Mileage,
        vertices: 128,
        edges: 387,
        paper_edge_lines: 774,
        paper_chromatic: Some(8),
        exact_construction: false,
    },
    InstanceMeta {
        name: "mulsol.i.2",
        family: Family::RegisterAllocation,
        vertices: 188,
        edges: 3885,
        paper_edge_lines: 3885,
        paper_chromatic: None,
        exact_construction: false,
    },
    InstanceMeta {
        name: "mulsol.i.4",
        family: Family::RegisterAllocation,
        vertices: 185,
        edges: 3946,
        paper_edge_lines: 3946,
        paper_chromatic: None,
        exact_construction: false,
    },
    InstanceMeta {
        name: "myciel3",
        family: Family::Mycielski,
        vertices: 11,
        edges: 20,
        paper_edge_lines: 20,
        paper_chromatic: Some(4),
        exact_construction: true,
    },
    InstanceMeta {
        name: "myciel4",
        family: Family::Mycielski,
        vertices: 23,
        edges: 71,
        paper_edge_lines: 71,
        paper_chromatic: Some(5),
        exact_construction: true,
    },
    InstanceMeta {
        name: "myciel5",
        family: Family::Mycielski,
        vertices: 47,
        edges: 236,
        paper_edge_lines: 236,
        paper_chromatic: Some(6),
        exact_construction: true,
    },
    InstanceMeta {
        name: "queen5_5",
        family: Family::Queens,
        vertices: 25,
        edges: 160,
        paper_edge_lines: 320,
        paper_chromatic: Some(5),
        exact_construction: true,
    },
    InstanceMeta {
        name: "queen6_6",
        family: Family::Queens,
        vertices: 36,
        edges: 290,
        paper_edge_lines: 580,
        paper_chromatic: Some(7),
        exact_construction: true,
    },
    InstanceMeta {
        name: "queen7_7",
        family: Family::Queens,
        vertices: 49,
        edges: 476,
        paper_edge_lines: 952,
        paper_chromatic: Some(7),
        exact_construction: true,
    },
    InstanceMeta {
        name: "queen8_12",
        family: Family::Queens,
        vertices: 96,
        edges: 1368,
        paper_edge_lines: 2736,
        paper_chromatic: Some(12),
        exact_construction: true,
    },
    InstanceMeta {
        name: "zeroin.i.1",
        family: Family::RegisterAllocation,
        vertices: 211,
        edges: 4100,
        paper_edge_lines: 4100,
        paper_chromatic: None,
        exact_construction: false,
    },
    InstanceMeta {
        name: "zeroin.i.2",
        family: Family::RegisterAllocation,
        vertices: 211,
        edges: 3541,
        paper_edge_lines: 3541,
        paper_chromatic: None,
        exact_construction: false,
    },
    InstanceMeta {
        name: "zeroin.i.3",
        family: Family::RegisterAllocation,
        vertices: 206,
        edges: 3540,
        paper_edge_lines: 3540,
        paper_chromatic: None,
        exact_construction: false,
    },
];

/// Builds one suite instance by name.
///
/// # Panics
///
/// Panics if `name` is not one of the 20 suite instance names.
///
/// # Example
///
/// ```
/// let inst = sbgc_graph::suite::build("queen5_5");
/// assert_eq!(inst.graph.num_vertices(), 25);
/// ```
pub fn build(name: &str) -> Instance {
    let meta = *SUITE
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown suite instance `{name}`"));
    let graph = match meta.name {
        "anna" => gen::book_graph(138, 493, 11, 0xA22A_0001),
        "david" => gen::book_graph(87, 406, 11, 0xDA71_0002),
        "DSJC125.1" => gen::gnm(125, 736, 0xD51C_0001),
        "DSJC125.9" => gen::gnm(125, 6961, 0xD51C_0009),
        "games120" => gen::games_graph(120, 638, 12, 10, 0x6A3E_0120),
        "huck" => gen::book_graph(74, 301, 11, 0x4C6B_0003),
        "jean" => gen::book_graph(80, 254, 10, 0x7EA8_0004),
        "miles250" => gen::geometric_graph(128, 387, 0x317E_0250),
        "mulsol.i.2" => gen::register_allocation_graph(188, 3885, 31, 0x3017_0002),
        "mulsol.i.4" => gen::register_allocation_graph(185, 3946, 31, 0x3017_0004),
        "myciel3" => gen::mycielski(3),
        "myciel4" => gen::mycielski(4),
        "myciel5" => gen::mycielski(5),
        "queen5_5" => gen::queens(5, 5),
        "queen6_6" => gen::queens(6, 6),
        "queen7_7" => gen::queens(7, 7),
        "queen8_12" => gen::queens(8, 12),
        "zeroin.i.1" => gen::register_allocation_graph(211, 4100, 49, 0x2E80_0001),
        "zeroin.i.2" => gen::register_allocation_graph(211, 3541, 30, 0x2E80_0002),
        "zeroin.i.3" => gen::register_allocation_graph(206, 3540, 30, 0x2E80_0003),
        other => unreachable!("unhandled suite instance `{other}`"),
    };
    Instance { meta, graph }
}

/// Builds the full 20-instance suite in Table 1 order.
pub fn build_all() -> Vec<Instance> {
    SUITE.iter().map(|m| build(m.name)).collect()
}

/// Names of the queens-family instances used in the Appendix (Table 5).
pub const QUEENS_NAMES: [&str; 4] = ["queen5_5", "queen6_6", "queen7_7", "queen8_12"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instance_matches_its_metadata() {
        for inst in build_all() {
            assert_eq!(inst.graph.num_vertices(), inst.meta.vertices, "{}", inst.meta.name);
            assert_eq!(inst.graph.num_edges(), inst.meta.edges, "{}", inst.meta.name);
        }
    }

    #[test]
    fn suite_has_twenty_instances() {
        assert_eq!(SUITE.len(), 20);
        let mut names: Vec<&str> = SUITE.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "duplicate instance names");
    }

    #[test]
    fn exact_instances_are_flagged() {
        for m in SUITE.iter() {
            let expected = matches!(m.family, Family::Queens | Family::Mycielski);
            assert_eq!(m.exact_construction, expected, "{}", m.name);
        }
    }

    #[test]
    fn chromatic_gt_20_instances_embed_big_cliques() {
        use crate::algo::greedy_clique;
        for name in ["mulsol.i.2", "zeroin.i.1", "zeroin.i.2"] {
            let inst = build(name);
            assert!(greedy_clique(&inst.graph).len() > 20, "{name} should have clique > 20");
        }
    }

    #[test]
    #[should_panic(expected = "unknown suite instance")]
    fn unknown_name_panics() {
        let _ = build("nosuch");
    }

    #[test]
    fn builds_are_reproducible() {
        let a = build("anna");
        let b = build("anna");
        assert_eq!(a.graph, b.graph);
    }
}
